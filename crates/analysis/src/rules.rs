//! The rule catalog and the engine that applies it.
//!
//! Rules are *data*: each one names the invariant it protects, the token
//! pattern (or analysis) that detects violations, where it applies, and
//! whether `#[cfg(test)]` code is exempt. Adding a rule means adding one
//! entry to [`ALL`] — the engine, suppression handling, and CLI pick it
//! up automatically.
//!
//! Suppressions: `// rl-lint: allow(rule-id)` (comma-separate several
//! ids) suppresses findings of those rules on the comment's own line and
//! on the line directly below it — so both trailing comments and
//! a-justification-line-above work. Suppressions should carry a reason in
//! the rest of the comment.

use crate::lexer::{is_ident_char, LexedFile};
use crate::lockorder;

/// One diagnostic: `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A sequence of literal fragments that must appear in order in the
/// masked source, separated by nothing but whitespace. The first
/// fragment is word-bounded on the left (so `sleep(` does not match
/// `nanosleep(`).
pub struct CodePattern {
    pub parts: &'static [&'static str],
    pub message: &'static str,
}

/// What a rule matches on.
pub enum RuleKind {
    /// Token patterns over the masked (comment- and literal-free) source.
    Code(&'static [CodePattern]),
    /// Substring patterns over string-literal contents. `.0` matches
    /// normal literals (escapes as written), `.1` matches raw literals.
    Strings {
        escaped: &'static [&'static str],
        raw: &'static [&'static str],
        message: &'static str,
    },
    /// The static nested-lock graph: see [`crate::lockorder`].
    LockOrder,
}

/// One lint rule.
pub struct Rule {
    pub id: &'static str,
    /// The invariant this protects, shown by `--list-rules`.
    pub rationale: &'static str,
    pub kind: RuleKind,
    /// Workspace-relative path fragments where the rule does not apply
    /// (matched with [`path_matches`]).
    pub exempt: &'static [&'static str],
    /// Whether `#[cfg(test)]` modules are exempt.
    pub skip_test_code: bool,
}

/// The rule catalog. Order is the report order.
pub static ALL: &[Rule] = &[
    Rule {
        id: "lock-poison",
        rationale: "a panic while a Mutex is held must not cascade: use the \
                    poison-recovering rl_fdb::sync::lock()/lock_ranked() helpers \
                    instead of .lock().unwrap()/.expect()",
        kind: RuleKind::Code(&[
            CodePattern {
                parts: &[".lock()", ".unwrap()"],
                message: "bare `.lock().unwrap()` — use `rl_fdb::sync::lock()` \
                          (poison-recovering) instead",
            },
            CodePattern {
                parts: &[".lock()", ".expect("],
                message: "bare `.lock().expect(…)` — use `rl_fdb::sync::lock()` \
                          (poison-recovering) instead",
            },
        ]),
        exempt: &[],
        skip_test_code: false,
    },
    Rule {
        id: "lock-order",
        rationale: "nested lock acquisitions must follow one global order; a \
                    cycle in the static lock graph is a latent deadlock the \
                    parallel-simulator work would hit",
        kind: RuleKind::LockOrder,
        exempt: &[],
        skip_test_code: false,
    },
    Rule {
        id: "wall-clock",
        rationale: "library crates must stay deterministic (FDB-style simulation \
                    testing): wall-clock reads belong in rl_obs and the \
                    bench/harness timing paths only",
        kind: RuleKind::Code(&[
            CodePattern {
                parts: &["Instant::now"],
                message: "`Instant::now` in a library crate — route timing through \
                          rl_obs or the logical clock (Database::advance_clock)",
            },
            CodePattern {
                parts: &["SystemTime::now"],
                message: "`SystemTime::now` in a library crate — route timing through \
                          rl_obs or the logical clock (Database::advance_clock)",
            },
        ]),
        exempt: &[
            "crates/obs/",
            "crates/bench/",
            "crates/harness/",
            "tests/",
            "benches/",
            "examples/",
        ],
        skip_test_code: true,
    },
    Rule {
        id: "no-sleep-in-lib",
        rationale: "library code never sleeps: the simulator's logical clock \
                    (advance_clock) is the only way time passes, so tests stay \
                    fast and deterministic",
        kind: RuleKind::Code(&[CodePattern {
            parts: &["thread::sleep"],
            message: "`thread::sleep` in a library crate — advance the logical \
                      clock instead",
        }]),
        exempt: &[
            "crates/bench/",
            "crates/harness/",
            "tests/",
            "benches/",
            "examples/",
        ],
        skip_test_code: true,
    },
    Rule {
        id: "json-via-builder",
        rationale: "BENCH_*.json must stay schema-stable and parseable: emit \
                    through rl_bench::json::Json, not hand-concatenated format! \
                    strings",
        kind: RuleKind::Strings {
            escaped: &["{\\\""],
            raw: &["{\""],
            message: "hand-concatenated JSON in a string literal — build a \
                      `rl_bench::json::Json` tree instead",
        },
        exempt: &["crates/analysis/"],
        skip_test_code: true,
    },
    Rule {
        id: "no-todo-panic",
        rationale: "todo!/unimplemented! in non-test code is a runtime landmine; \
                    return an Error or finish the path",
        kind: RuleKind::Code(&[
            CodePattern {
                parts: &["todo!"],
                message: "`todo!` in non-test code",
            },
            CodePattern {
                parts: &["unimplemented!"],
                message: "`unimplemented!` in non-test code",
            },
        ]),
        exempt: &["tests/", "benches/"],
        skip_test_code: true,
    },
];

/// Look a rule up by id.
pub fn by_id(id: &str) -> Option<&'static Rule> {
    ALL.iter().find(|r| r.id == id)
}

/// True when `rel_path` (forward slashes) is covered by exemption
/// fragment `frag`: either the path starts with it or contains it at a
/// directory boundary.
fn path_matches(rel_path: &str, frag: &str) -> bool {
    rel_path.starts_with(frag) || rel_path.contains(&format!("/{frag}"))
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
fn test_line_ranges(masked: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = masked.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut ranges = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if chars[i..].starts_with(&needle) {
            let start_line = line;
            // Find the opening brace of the annotated item, then its
            // matching close.
            let mut j = i + needle.len();
            let mut l = line;
            while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
                if chars[j] == '\n' {
                    l += 1;
                }
                j += 1;
            }
            if j < chars.len() && chars[j] == '{' {
                let mut depth = 0i32;
                while j < chars.len() {
                    match chars[j] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        '\n' => l += 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            ranges.push((start_line, l));
            line = l;
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    ranges
}

fn in_ranges(line: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parse suppression comments into the set of (line, rule-id) pairs they
/// cover. A suppression covers its own line and the next line.
fn suppressions(lexed: &LexedFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("rl-lint:") else {
            continue;
        };
        let rest = &c.text[pos + "rl-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        // Count lines the comment itself spans up to the allow(): block
        // comments may be multi-line.
        let line = c.line + c.text[..pos].chars().filter(|&ch| ch == '\n').count();
        for id in rest[open + "allow(".len()..open + close].split(',') {
            let id = id.trim().to_string();
            if !id.is_empty() {
                out.push((line, id.clone()));
                out.push((line + 1, id));
            }
        }
    }
    out
}

fn is_suppressed(supp: &[(usize, String)], line: usize, rule: &str) -> bool {
    supp.iter().any(|(l, id)| *l == line && id == rule)
}

/// 1-based line of char index `at` in `s`.
fn line_of(s: &str, at: usize) -> usize {
    s.chars().take(at).filter(|&c| c == '\n').count() + 1
}

/// Match `pattern` (fragments separated by optional whitespace) in the
/// masked source, returning the char indices where matches begin.
fn match_pattern(masked: &[char], pattern: &CodePattern) -> Vec<usize> {
    let mut found = Vec::new();
    let first: Vec<char> = pattern.parts[0].chars().collect();
    let mut i = 0usize;
    'outer: while i + first.len() <= masked.len() {
        if !masked[i..].starts_with(&first) {
            i += 1;
            continue;
        }
        // Word boundary on the left for identifier-starting patterns
        // (so `thread::sleep` won't match an identifier ending in
        // "thread", but `std::thread::sleep` still does).
        if (first[0].is_alphanumeric() || first[0] == '_') && i > 0 && is_ident_char(masked[i - 1])
        {
            i += 1;
            continue;
        }
        let mut j = i + first.len();
        for part in &pattern.parts[1..] {
            while j < masked.len() && masked[j].is_whitespace() {
                j += 1;
            }
            let frag: Vec<char> = part.chars().collect();
            if !masked[j..].starts_with(&frag) {
                i += 1;
                continue 'outer;
            }
            j += frag.len();
        }
        found.push(i);
        i = j.max(i + 1);
    }
    found
}

/// Apply every rule in `rules` to one file. `rel_path` uses forward
/// slashes and is relative to the workspace root.
pub fn lint_file(rel_path: &str, src: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(src);
    let masked_chars: Vec<char> = lexed.masked.chars().collect();
    let supp = suppressions(&lexed);
    let test_ranges = test_line_ranges(&lexed.masked);
    let in_tests_dir = |frag: &str| path_matches(rel_path, frag);
    let mut out = Vec::new();

    for rule in rules {
        if rule.exempt.iter().any(|f| in_tests_dir(f)) {
            continue;
        }
        let mut push = |line: usize, message: String| {
            if rule.skip_test_code && in_ranges(line, &test_ranges) {
                return;
            }
            if is_suppressed(&supp, line, rule.id) {
                return;
            }
            out.push(Diagnostic {
                file: rel_path.to_string(),
                line,
                rule: rule.id,
                message,
            });
        };
        match &rule.kind {
            RuleKind::Code(patterns) => {
                for p in *patterns {
                    for at in match_pattern(&masked_chars, p) {
                        push(line_of(&lexed.masked, at), p.message.to_string());
                    }
                }
            }
            RuleKind::Strings {
                escaped,
                raw,
                message,
            } => {
                for s in &lexed.strings {
                    let patterns = if s.raw { raw } else { escaped };
                    if patterns.iter().any(|p| s.content.contains(p)) {
                        push(s.line, message.to_string());
                    }
                }
            }
            RuleKind::LockOrder => {
                // Acquisition sites are collected per file here; the graph
                // is assembled and checked globally by the caller
                // (`lint_tree`), because cycles span files.
            }
        }
    }
    out
}

/// Lint a set of files as one unit: per-file rules plus the global
/// lock-order graph. Input is `(rel_path, source)` pairs.
pub fn lint_files(files: &[(String, String)], rules: &[Rule]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (rel, src) in files {
        out.extend(lint_file(rel, src, rules));
    }
    if let Some(rule) = rules.iter().find(|r| matches!(r.kind, RuleKind::LockOrder)) {
        let mut graph = lockorder::LockGraph::default();
        let mut supp_by_file: Vec<(String, Vec<(usize, String)>)> = Vec::new();
        for (rel, src) in files {
            if rule.exempt.iter().any(|f| path_matches(rel, f)) {
                continue;
            }
            let lexed = crate::lexer::lex(src);
            graph.add_file(rel, &lexed.masked);
            supp_by_file.push((rel.clone(), suppressions(&lexed)));
        }
        for d in graph.check(rule.id) {
            let suppressed = supp_by_file
                .iter()
                .find(|(f, _)| *f == d.file)
                .is_some_and(|(_, s)| is_suppressed(s, d.line, rule.id));
            if !suppressed {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}
