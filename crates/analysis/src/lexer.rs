//! A hand-rolled Rust lexer, just deep enough to be *safe*: it separates
//! code from comments and literals so that rule patterns never fire on
//! text inside a string, a raw string, a char/byte literal, or a comment.
//!
//! The output is a *masked* copy of the source — same length in chars,
//! same line structure, with every comment and literal replaced by spaces
//! — plus the comments and string literals themselves (with line numbers)
//! for the rules that want to look *inside* them: suppression comments
//! (`// rl-lint: allow(rule-id)`) and the hand-built-JSON detector.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings `r"…"`/`r#"…"#` with any
//! number of hashes, byte and C variants (`b"…"`, `br#"…"#`, `c"…"`,
//! `cr#"…"#`), char and byte-char literals (`'a'`, `b'\n'`, `'\u{1F600}'`)
//! — and, crucially, lifetimes (`'a`), which look like unterminated char
//! literals and must *not* swallow the rest of the file.

/// A string literal (normal or raw, possibly byte/C prefixed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Contents between the quotes, escapes left as written (`\"` stays
    /// a backslash followed by a quote).
    pub content: String,
    /// Raw literals do not process escapes; the JSON rule matches them
    /// with unescaped patterns.
    pub raw: bool,
}

/// A comment (line or block), with the delimiters included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The source with every comment and literal blanked to spaces
    /// (newlines preserved), so code patterns can be matched without
    /// false positives from literal or comment text.
    pub masked: String,
    pub comments: Vec<Comment>,
    pub strings: Vec<StringLit>,
}

/// True if `c` can appear in an identifier (used to keep the `r` of a raw
/// string distinct from the `r` of `for`, and to word-bound rule patterns).
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into masked code, comments, and string literals.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut masked: Vec<char> = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `n` chars starting at `i` as blanks (newlines preserved),
    // advancing the line counter.
    macro_rules! blank {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if chars[k] == '\n' {
                    masked.push('\n');
                    line += 1;
                } else {
                    masked.push(' ');
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // ---- comments -------------------------------------------------
        if c == '/' && next == Some('/') {
            let start = i;
            let start_line = line;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i].iter().collect(),
            });
            blank!(start, i);
            continue;
        }
        if c == '/' && next == Some('*') {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i].iter().collect(),
            });
            blank!(start, i);
            continue;
        }

        // ---- raw / byte / C string prefixes ---------------------------
        // Only when not glued to a preceding identifier (`for"x"` is not
        // a prefix, and neither is the `r` inside `var"`).
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        if !prev_is_ident && (c == 'r' || c == 'b' || c == 'c') {
            // Longest prefix of [bc]?r#*" or b" / c" starting here.
            let mut j = i;
            let mut saw_r = false;
            if (chars[j] == 'b' || chars[j] == 'c') && chars.get(j + 1) == Some(&'r') {
                saw_r = true;
                j += 2;
            } else if chars[j] == 'r' {
                saw_r = true;
                j += 1;
            } else {
                // b"…" / c"…" (non-raw byte/C string) or b'…' byte char.
                j += 1;
            }
            let mut hashes = 0usize;
            if saw_r {
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
            }
            if chars.get(j) == Some(&'"') && (saw_r || j == i + 1) {
                let open = j;
                let start_line = line;
                let (content, end) = if saw_r {
                    scan_raw_string(&chars, open + 1, hashes)
                } else {
                    scan_string(&chars, open + 1)
                };
                out.strings.push(StringLit {
                    line: start_line,
                    content,
                    raw: saw_r,
                });
                blank!(i, end);
                i = end;
                continue;
            }
            if chars[i] == 'b' && chars.get(i + 1) == Some(&'\'') {
                // Byte char literal b'…'.
                let end = scan_char(&chars, i + 2);
                blank!(i, end);
                i = end;
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        // ---- string literal -------------------------------------------
        if c == '"' {
            let start_line = line;
            let (content, end) = scan_string(&chars, i + 1);
            out.strings.push(StringLit {
                line: start_line,
                content,
                raw: false,
            });
            blank!(i, end);
            i = end;
            continue;
        }

        // ---- char literal vs lifetime ---------------------------------
        if c == '\'' {
            let is_char_lit = match next {
                // '\…' is always an escape inside a char literal.
                Some('\\') => true,
                // 'x' is a char literal only if a closing quote follows
                // the (single, possibly multi-byte) char; otherwise it is
                // a lifetime like 'a or a loop label like 'outer:.
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_lit {
                let end = scan_char(&chars, i + 1);
                blank!(i, end);
                i = end;
                continue;
            }
            // Lifetime / label: keep as code.
        }

        masked.push(c);
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }

    out.masked = masked.into_iter().collect();
    out
}

/// Scan a normal (escape-processing) string body starting just past the
/// opening quote; returns (raw contents, index one past the closing quote).
fn scan_string(chars: &[char], mut i: usize) -> (String, usize) {
    let start = i;
    while i < chars.len() {
        match chars[i] {
            '\\' => i = (i + 2).min(chars.len()),
            '"' => return (chars[start..i].iter().collect(), i + 1),
            _ => i += 1,
        }
    }
    (chars[start..i].iter().collect(), i) // unterminated: EOF closes
}

/// Scan a raw string body (`hashes` trailing `#`s) starting just past the
/// opening quote; returns (contents, index one past the final hash).
fn scan_raw_string(chars: &[char], mut i: usize, hashes: usize) -> (String, usize) {
    let start = i;
    while i < chars.len() {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (chars[start..i].iter().collect(), i + 1 + hashes);
        }
        i += 1;
    }
    (chars[start..i].iter().collect(), i)
}

/// Scan a char/byte-char literal body starting just past the opening
/// quote; returns the index one past the closing quote.
fn scan_char(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i = (i + 2).min(chars.len()),
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let f = lex("let a = 1; // .lock().unwrap()\n/* todo!() */ let b = 2;\n");
        assert!(!f.masked.contains("lock"));
        assert!(!f.masked.contains("todo"));
        assert!(f.masked.contains("let a = 1;"));
        assert!(f.masked.contains("let b = 2;"));
        assert_eq!(f.comments.len(), 2);
        assert_eq!(f.comments[0].line, 1);
        assert_eq!(f.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comment_terminates_at_outer_close() {
        let f = lex("/* a /* b */ c */ code()\n");
        assert!(f.masked.contains("code()"));
        assert!(!f.masked.contains('a'));
    }

    #[test]
    fn masks_strings_and_records_contents() {
        let f = lex(r#"let s = "x.lock().unwrap()"; f(s);"#);
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("f(s);"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].content, "x.lock().unwrap()");
        assert!(!f.strings[0].raw);
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let f = lex(r#"let s = "a\"b.lock().unwrap()"; g();"#);
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("g();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex(r###"let s = r#"Instant::now() " still inside"#; h();"###);
        assert!(!f.masked.contains("Instant"));
        assert!(f.masked.contains("h();"));
        assert_eq!(f.strings[0].content, r#"Instant::now() " still inside"#);
        assert!(f.strings[0].raw);
    }

    #[test]
    fn byte_and_c_strings() {
        let f = lex(r##"let a = b"todo!()"; let b = c"todo!()"; let c = br#"todo!()"#; k();"##);
        assert!(!f.masked.contains("todo"));
        assert!(f.masked.contains("k();"));
        assert_eq!(f.strings.len(), 3);
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let f = lex("fn f<'a>(x: &'a u32) -> char { '\\'' }\nlet q = 'q'; let n = '\\n'; let e = '\u{1F600}';");
        assert!(f.masked.contains("fn f<'a>(x: &'a u32)"));
        assert!(!f.masked.contains('q') || !f.masked.contains("'q'"));
        assert!(!f.masked.contains("\u{1F600}"));
    }

    #[test]
    fn loop_labels_are_not_char_literals() {
        let f = lex("'outer: loop { break 'outer; }\ncode();");
        assert!(f.masked.contains("'outer: loop"));
        assert!(f.masked.contains("code();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string_prefix() {
        let f = lex(r#"let var = upper"x"; "#);
        // `upper"x"` — `r` glued to an identifier must not open r"…".
        assert!(f.masked.contains("upper"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].content, "x");
    }

    #[test]
    fn masked_preserves_line_structure() {
        let src = "a\n\"multi\nline\nstring\"\nb /* c\nd */ e\n";
        let f = lex(src);
        assert_eq!(
            f.masked.chars().filter(|&c| c == '\n').count(),
            src.chars().filter(|&c| c == '\n').count()
        );
    }
}
