//! # rl_analysis — static analysis over the workspace's own source
//!
//! A zero-dependency lint engine (binary: `rl_lint`) protecting the
//! invariants the ROADMAP's concurrency work depends on:
//!
//! * **lock hygiene** — every `Mutex` acquisition goes through the
//!   poison-recovering `rl_fdb::sync` helpers ([`rules`]: `lock-poison`),
//! * **lock ordering** — the static nested-lock graph is acyclic
//!   (`lock-order`; [`lockorder`]), the compile-time half of the
//!   runtime lock-rank tracker in `rl_fdb::sync`,
//! * **determinism** — no wall-clock reads or sleeps in library crates
//!   (`wall-clock`, `no-sleep-in-lib`), so FDB-style deterministic
//!   simulation stays possible,
//! * **report hygiene** — benchmark JSON goes through
//!   `rl_bench::json::Json`, not `format!` (`json-via-builder`), and no
//!   `todo!`/`unimplemented!` ships in non-test code (`no-todo-panic`).
//!
//! The [`lexer`] is deliberately conservative: rule patterns only ever
//! match *code*, never text inside comments, strings, raw strings, or
//! char literals (property-tested in `tests/`). Findings are suppressed
//! inline with `// rl-lint: allow(rule-id) — reason`.

pub mod lexer;
pub mod lockorder;
pub mod rules;

pub use rules::{lint_file, lint_files, Diagnostic, Rule, ALL};

use std::path::{Path, PathBuf};

/// Directories never linted.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Collect every `.rs` file under `root` (skipping build output),
/// returning `(workspace-relative path, contents)` pairs sorted by path.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((rel, std::fs::read_to_string(&path)?));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Lint the whole tree under `root` with the full rule catalog.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(rules::lint_files(&collect_sources(root)?, rules::ALL))
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (the one with a `[workspace]` section).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
