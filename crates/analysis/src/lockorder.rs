//! The static nested-lock graph.
//!
//! Scans masked source for mutex acquisitions over *named fields* —
//! `lock(&self.inner)`, `lock_ranked(&self.state, …)`, `self.state.lock()`
//! — and tracks, with brace-depth scoping, which locks are held when
//! another is acquired. Every such nesting adds a directed edge
//! `held → acquired` to a workspace-global graph; a cycle in that graph
//! is a potential deadlock (two threads taking the same pair of locks in
//! opposite orders), which is exactly the bug class the sharded-MVCC /
//! parallel-commit work will otherwise invite.
//!
//! Scoping heuristics (documented limitations, by design — this is a
//! lexical pass, not a type checker):
//!
//! * An acquisition bound by a `let` statement (`let g = lock(&…);`)
//!   holds until the end of its enclosing brace scope — unless the lock
//!   expression is dereferenced in place (`let v = *lock(&…);`), which
//!   copies through a temporary guard dropped at the statement's end.
//! * Any other acquisition (chained or discarded) is a temporary,
//!   dropped at the next `;` at the same depth.
//! * Mutex identity is `file_stem::field` — nesting that spans a call
//!   into another file is invisible here; the runtime lock-rank tracker
//!   in `rl_fdb::sync` covers that case.

use crate::lexer::is_ident_char;
use crate::rules::Diagnostic;

/// One `held → acquired` edge, anchored at the inner acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
}

/// The workspace-global nested-lock graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: Vec<Edge>,
}

/// An acquisition site found while scanning one file.
struct Acquisition {
    /// Mutex node id (`file_stem::field`).
    name: String,
    /// Char index where the acquisition expression starts.
    at: usize,
    /// Char index just past the acquisition call.
    end: usize,
}

/// One lock currently held during the scan.
struct Held {
    name: String,
    depth: i32,
    /// Temporaries drop at the next `;` at their depth; `let`-bound
    /// guards drop when their scope closes.
    stmt_scoped: bool,
}

impl LockGraph {
    /// Scan one file's masked source and merge its nestings into the graph.
    pub fn add_file(&mut self, rel_path: &str, masked: &str) {
        let stem = rel_path
            .rsplit('/')
            .next()
            .unwrap_or(rel_path)
            .trim_end_matches(".rs");
        let chars: Vec<char> = masked.chars().collect();
        let mut acquisitions = find_acquisitions(&chars, stem);
        acquisitions.sort_by_key(|a| a.at);
        let mut next_acq = 0usize;

        let mut depth = 0i32;
        let mut line = 1usize;
        let mut held: Vec<Held> = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            // Acquisitions the scan jumped past (overlapping spans) are
            // skipped rather than stalling the queue.
            while next_acq < acquisitions.len() && acquisitions[next_acq].at < i {
                next_acq += 1;
            }
            if next_acq < acquisitions.len() && acquisitions[next_acq].at == i {
                let acq = &acquisitions[next_acq];
                next_acq += 1;
                for h in &held {
                    self.edges.push(Edge {
                        from: h.name.clone(),
                        to: acq.name.clone(),
                        file: rel_path.to_string(),
                        line,
                    });
                }
                held.push(Held {
                    name: acq.name.clone(),
                    depth,
                    stmt_scoped: !is_let_bound(&chars, acq.at, acq.end),
                });
                // Skip past the call so `lock(` inside it can't re-match.
                while i < acq.end {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '\n' => line += 1,
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                ';' => held.retain(|h| !(h.stmt_scoped && h.depth == depth)),
                _ => {}
            }
            i += 1;
        }
    }

    /// Report re-entrant acquisitions and cycles. `rule_id` names the
    /// rule these diagnostics belong to.
    pub fn check(&self, rule_id: &'static str) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // Self-loops: the same mutex acquired while already held.
        let mut seen_self: Vec<&str> = Vec::new();
        for e in &self.edges {
            if e.from == e.to && !seen_self.contains(&e.from.as_str()) {
                seen_self.push(&e.from);
                out.push(Diagnostic {
                    file: e.file.clone(),
                    line: e.line,
                    rule: rule_id,
                    message: format!(
                        "mutex `{}` re-locked while already held (self-deadlock)",
                        e.to
                    ),
                });
            }
        }

        // Cycles across distinct mutexes: DFS from every node.
        let mut nodes: Vec<&str> = Vec::new();
        for e in &self.edges {
            if !nodes.contains(&e.from.as_str()) {
                nodes.push(&e.from);
            }
            if !nodes.contains(&e.to.as_str()) {
                nodes.push(&e.to);
            }
        }
        let mut reported: Vec<Vec<&str>> = Vec::new();
        for &start in &nodes {
            let mut stack = vec![start];
            self.dfs_cycles(start, start, &mut stack, &mut reported, &mut out, rule_id);
        }
        out
    }

    fn dfs_cycles<'a>(
        &'a self,
        start: &'a str,
        at: &'a str,
        stack: &mut Vec<&'a str>,
        reported: &mut Vec<Vec<&'a str>>,
        out: &mut Vec<Diagnostic>,
        rule_id: &'static str,
    ) {
        for e in &self.edges {
            if e.from != at || e.from == e.to {
                continue;
            }
            if e.to == start && stack.len() > 1 {
                // Canonical form: sorted node set, to report each cycle once.
                let mut key: Vec<&str> = stack.clone();
                key.sort_unstable();
                if !reported.contains(&key) {
                    reported.push(key);
                    let chain = stack.join(" -> ");
                    out.push(Diagnostic {
                        file: e.file.clone(),
                        line: e.line,
                        rule: rule_id,
                        message: format!(
                            "lock-order cycle: {chain} -> {start} (two threads taking \
                             these in opposite orders can deadlock)"
                        ),
                    });
                }
                continue;
            }
            if !stack.contains(&e.to.as_str()) {
                stack.push(&e.to);
                self.dfs_cycles(start, &e.to, stack, reported, out, rule_id);
                stack.pop();
            }
        }
    }
}

/// The helper-call acquisition shapes, longest-prefix first so
/// `lock_ranked_indexed(&…` is never half-matched as `lock_ranked(&…`.
/// `read_ranked`/`write_ranked` are the shared/exclusive `RwLock` helpers:
/// shared acquisition is interchangeable with exclusive for
/// deadlock-ordering purposes, so both feed the same graph node.
const CALL_NEEDLES: [&str; 5] = [
    "lock_ranked_indexed(&",
    "lock_ranked(&",
    "read_ranked(&",
    "write_ranked(&",
    "lock(&",
];

/// Find mutex acquisitions in masked source. Recognized shapes:
/// `lock(&EXPR)`, `lock_ranked(&EXPR, …)`, `lock_ranked_indexed(&EXPR, …)`,
/// `read_ranked(&EXPR, …)`, `write_ranked(&EXPR, …)`, and `EXPR.lock()`.
fn find_acquisitions(chars: &[char], stem: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        // helper-call form: lock(&…) / lock_ranked(&… / read_ranked(&… / …
        if let Some(needle) = CALL_NEEDLES.iter().find(|n| ident_at(chars, i, n)) {
            let open = i + needle.len();
            if let Some((field, _end)) = path_field(chars, open) {
                let call_end = matching_close(chars, open);
                out.push(Acquisition {
                    name: format!("{stem}::{field}"),
                    at: i,
                    end: call_end,
                });
                i = call_end.max(i + 1);
                continue;
            }
        }
        // method form: EXPR.lock()
        if chars[i..].starts_with(&['.', 'l', 'o', 'c', 'k', '(', ')']) {
            if let Some((field, start)) = field_before(chars, i) {
                out.push(Acquisition {
                    name: format!("{stem}::{field}"),
                    at: start,
                    end: i + ".lock()".len(),
                });
            }
            i += ".lock()".len();
            continue;
        }
        i += 1;
    }
    out
}

/// Does `needle` start at `i`, with `i` at an identifier boundary?
fn ident_at(chars: &[char], i: usize, needle: &str) -> bool {
    let n: Vec<char> = needle.chars().collect();
    chars[i..].starts_with(&n) && (i == 0 || !is_ident_char(chars[i - 1]))
}

/// Parse a field path (`self.state`, `db.inner`, `GLOBAL`) starting at
/// `i`; return (last segment, index of the char ending the path).
fn path_field(chars: &[char], mut i: usize) -> Option<(String, usize)> {
    let start = i;
    while i < chars.len() && (is_ident_char(chars[i]) || chars[i] == '.' || chars[i] == ':') {
        i += 1;
    }
    if i == start {
        return None;
    }
    let path: String = chars[start..i].iter().collect();
    let field = path.rsplit(['.', ':']).next().filter(|s| !s.is_empty())?;
    Some((field.to_string(), i))
}

/// Walk back from the `.` of `.lock()` over one path segment chain to
/// find the field name and the start of the receiver expression.
/// Gives up (returns None) on receivers ending in `)` or `]` — computed
/// receivers like `slots[slot]` still yield their field name.
fn field_before(chars: &[char], dot: usize) -> Option<(String, usize)> {
    let mut i = dot;
    // Skip a trailing index expression: slots[slot].lock()
    if i > 0 && chars[i - 1] == ']' {
        let mut depth = 0i32;
        while i > 0 {
            i -= 1;
            match chars[i] {
                ']' => depth += 1,
                '[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let seg_end = i;
    let mut seg_start = i;
    while seg_start > 0 && is_ident_char(chars[seg_start - 1]) {
        seg_start -= 1;
    }
    if seg_start == seg_end {
        return None;
    }
    let field: String = chars[seg_start..seg_end].iter().collect();
    // Extend left over `self.` / `foo.` / `Path::` qualifiers so the
    // reported span covers the whole receiver.
    let mut start = seg_start;
    while start > 0
        && (is_ident_char(chars[start - 1]) || chars[start - 1] == '.' || chars[start - 1] == ':')
    {
        start -= 1;
    }
    Some((field, start))
}

/// Index just past the `)` matching the paren opened before `open`
/// (where `open` is inside the argument list).
fn matching_close(chars: &[char], open: usize) -> usize {
    let mut depth = 1i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Is the acquisition at `[at, end)` bound by a plain `let` (guard lives
/// to end of scope), as opposed to a temporary?
fn is_let_bound(chars: &[char], at: usize, end: usize) -> bool {
    // A deref in place (`*lock(&…)`) copies through a temporary.
    let mut k = at;
    while k > 0 && chars[k - 1].is_whitespace() {
        k -= 1;
    }
    if k > 0 && chars[k - 1] == '*' {
        return false;
    }
    // Chained method access after the call (`….lock().unwrap_or_else(…)`
    // keeps the guard; `lock(&x).field` / `lock(&x).method()` uses it as
    // a temporary — conservatively treat any chain as a temporary unless
    // it is the poison-recovery chain itself).
    let mut j = end;
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    if chars.get(j) == Some(&'.')
        && !chars[j..].starts_with(&".unwrap_or_else".chars().collect::<Vec<_>>()[..])
    {
        return false;
    }
    // Statement must start with `let`.
    let mut s = at;
    while s > 0 && !matches!(chars[s - 1], ';' | '{' | '}') {
        s -= 1;
    }
    let stmt: String = chars[s..at].iter().collect();
    let stmt = stmt.trim_start();
    stmt.starts_with("let ") || stmt.starts_with("let\t")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> LockGraph {
        let mut g = LockGraph::default();
        for (path, src) in files {
            g.add_file(path, &lex(src).masked);
        }
        g
    }

    #[test]
    fn two_mutex_inversion_is_a_cycle() {
        let src = r#"
            fn ab(&self) {
                let a = lock(&self.alpha);
                let b = lock(&self.beta);
                drop(b); drop(a);
            }
            fn ba(&self) {
                let b = lock(&self.beta);
                let a = lock(&self.alpha);
                drop(a); drop(b);
            }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
        assert!(diags[0].message.contains("alpha") && diags[0].message.contains("beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
            fn ab(&self) {
                let a = lock(&self.alpha);
                let b = lock(&self.beta);
            }
            fn ab2(&self) {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }
        "#;
        assert!(graph_of(&[("x.rs", src)]).check("lock-order").is_empty());
    }

    #[test]
    fn temporary_guard_does_not_hold_across_statements() {
        // `*lock(&…)` copies out through a temporary — no nesting with
        // the next acquisition.
        let src = r#"
            fn f(&self) {
                let v = *lock(&self.alpha);
                let b = lock(&self.beta);
            }
            fn g(&self) {
                let b = lock(&self.beta);
                let v = *lock(&self.alpha);
            }
        "#;
        // f: no alpha held at beta. g: beta held at alpha — edge beta->alpha
        // only; no cycle without the reverse edge.
        assert!(graph_of(&[("x.rs", src)]).check("lock-order").is_empty());
    }

    #[test]
    fn scope_end_releases_guard() {
        let src = r#"
            fn f(&self) {
                { let a = lock(&self.alpha); }
                let b = lock(&self.beta);
            }
            fn g(&self) {
                { let b = lock(&self.beta); }
                let a = lock(&self.alpha);
            }
        "#;
        assert!(graph_of(&[("x.rs", src)]).check("lock-order").is_empty());
    }

    #[test]
    fn reentrant_lock_is_flagged() {
        let src = r#"
            fn f(&self) {
                let a = lock(&self.alpha);
                let again = lock(&self.alpha);
            }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("re-locked"));
    }

    #[test]
    fn method_form_and_ranked_form_are_recognized() {
        let src = r#"
            fn ab(&self) {
                let a = lock_ranked(&self.alpha, LockRank::A);
                let b = self.beta.lock();
            }
            fn ba(&self) {
                let b = self.beta.lock();
                let a = lock_ranked(&self.alpha, LockRank::A);
            }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn same_field_name_in_different_files_is_distinct() {
        // `state` in a.rs and `state` in b.rs are different mutexes; a
        // nesting in each direction across files must NOT report a cycle.
        let a = "fn f(&self) { let s = lock(&self.state); let i = lock(&self.inner); }";
        let b = "fn g(&self) { let i = lock(&self.inner); let s = lock(&self.state); }";
        assert!(graph_of(&[("a.rs", a), ("b.rs", b)])
            .check("lock-order")
            .is_empty());
    }

    #[test]
    fn indexed_and_rwlock_forms_are_recognized() {
        // The parallel-commit pipeline's shapes: an indexed shard
        // acquisition, the commit-batch queue, the version core, and the
        // store RwLock, nested in the declared order — clean graph.
        let src = r#"
            fn commit(&self) {
                let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
                let st = lock_ranked(&self.batcher.state, LockRank::CommitBatch);
                let core = lock_ranked(&self.core, LockRank::VersionCore);
                let store = write_ranked(&self.store, LockRank::DatabaseStore);
            }
            fn read(&self) {
                let core = lock_ranked(&self.core, LockRank::VersionCore);
                let store = read_ranked(&self.store, LockRank::DatabaseStore);
            }
        "#;
        assert!(graph_of(&[("x.rs", src)]).check("lock-order").is_empty());
    }

    #[test]
    fn shard_versus_version_core_inversion_is_a_cycle() {
        // One path takes shard → core (the commit path), another core →
        // shard (a buggy compaction sweep): classic inversion.
        let src = r#"
            fn commit(&self) {
                let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
                let core = lock_ranked(&self.core, LockRank::VersionCore);
            }
            fn sweep(&self) {
                let core = lock_ranked(&self.core, LockRank::VersionCore);
                let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
            }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
        assert!(diags[0].message.contains("shards") && diags[0].message.contains("core"));
    }

    #[test]
    fn rwlock_read_then_write_same_field_is_a_self_loop() {
        // A shared read guard held across an exclusive re-acquisition of
        // the same RwLock deadlocks for real; the graph sees it as a
        // self-loop because both feed the same node.
        let src = r#"
            fn f(&self) {
                let shared = read_ranked(&self.store, LockRank::DatabaseStore);
                let exclusive = write_ranked(&self.store, LockRank::DatabaseStore);
            }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("re-locked"));
    }

    #[test]
    fn three_cycle_reported_once() {
        let src = r#"
            fn f(&self) { let a = lock(&self.a); let b = lock(&self.b); }
            fn g(&self) { let b = lock(&self.b); let c = lock(&self.c); }
            fn h(&self) { let c = lock(&self.c); let a = lock(&self.a); }
        "#;
        let diags = graph_of(&[("x.rs", src)]).check("lock-order");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("cycle"));
    }
}
