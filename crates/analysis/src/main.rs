//! `rl_lint` — run the workspace lints.
//!
//! ```text
//! rl_lint [--root=PATH] [--rule=id[,id…]] [--deny-all] [--list-rules]
//! ```
//!
//! With no `--root`, lints the enclosing Cargo workspace of the current
//! directory. Exit codes: 0 clean (or advisory mode), 1 usage/I-O error,
//! 2 findings under `--deny-all` (the CI mode).

use rl_analysis::{collect_sources, find_workspace_root, rules};

fn usage() -> ! {
    eprintln!(
        "usage:\n  rl_lint [--root=PATH] [--rule=id[,id…]] [--deny-all]\n  rl_lint --list-rules"
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<String> = None;
    let mut deny_all = false;
    let mut only_rules: Option<Vec<String>> = None;

    for arg in &args {
        if let Some(value) = arg.strip_prefix("--root=") {
            root = Some(value.to_string());
        } else if let Some(value) = arg.strip_prefix("--rule=") {
            only_rules = Some(value.split(',').map(str::trim).map(String::from).collect());
        } else if arg == "--deny-all" {
            deny_all = true;
        } else if arg == "--list-rules" {
            println!("{:<18} invariant", "rule");
            for rule in rules::ALL {
                let rationale: String = rule
                    .rationale
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ");
                println!("{:<18} {}", rule.id, rationale);
            }
            println!("\nsuppress inline with: // rl-lint: allow(rule-id) — reason");
            return;
        } else {
            eprintln!("unknown argument: {arg}");
            usage();
        }
    }

    let root = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                eprintln!("rl_lint: cannot determine current directory: {e}");
                std::process::exit(1);
            });
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let sources = collect_sources(&root).unwrap_or_else(|e| {
        eprintln!("rl_lint: reading {}: {e}", root.display());
        std::process::exit(1);
    });

    let selected: Vec<&rules::Rule> = match &only_rules {
        None => rules::ALL.iter().collect(),
        Some(ids) => {
            let mut picked = Vec::new();
            for id in ids {
                match rules::by_id(id) {
                    Some(r) => picked.push(r),
                    None => {
                        eprintln!("rl_lint: unknown rule `{id}` (try --list-rules)");
                        std::process::exit(1);
                    }
                }
            }
            picked
        }
    };
    let diags = if selected.len() == rules::ALL.len() {
        rules::lint_files(&sources, rules::ALL)
    } else {
        let ids: Vec<&str> = selected.iter().map(|r| r.id).collect();
        rules::lint_files(&sources, rules::ALL)
            .into_iter()
            .filter(|d| ids.contains(&d.rule))
            .collect()
    };

    for d in &diags {
        println!("{d}");
    }
    let n = diags.len();
    if n > 0 {
        eprintln!(
            "rl_lint: {n} finding{} in {} files",
            if n == 1 { "" } else { "s" },
            sources.len()
        );
        if deny_all {
            std::process::exit(2);
        }
    } else {
        eprintln!("rl_lint: clean ({} files)", sources.len());
    }
}
