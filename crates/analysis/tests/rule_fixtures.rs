//! Known-bad fixtures: every rule in the catalog must trip on its
//! canonical violation, stay quiet on the blessed alternative, and
//! honor suppression comments and exemptions.
//!
//! Fixture sources are raw string literals, so the workspace self-test
//! (which lints this very file) sees them as masked-out literals.

use rl_analysis::rules::{lint_file, lint_files, ALL};

/// Lint a snippet as if it lived at a library-crate path no rule exempts.
fn lint(src: &str) -> Vec<String> {
    lint_file("crates/core/src/fixture.rs", src, ALL)
        .into_iter()
        .map(|d| d.to_string())
        .collect()
}

fn rules_hit(src: &str) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = lint_file("crates/core/src/fixture.rs", src, ALL)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    ids.dedup();
    ids
}

#[test]
fn lock_poison_trips_on_unwrap_and_expect() {
    assert_eq!(
        rules_hit(r#"fn f(m: &M) { let g = m.lock().unwrap(); }"#),
        ["lock-poison"]
    );
    assert_eq!(
        rules_hit(r#"fn f(m: &M) { let g = m.lock().expect("poisoned"); }"#),
        ["lock-poison"]
    );
    // Whitespace between the calls must not hide the pattern.
    assert_eq!(
        rules_hit("fn f(m: &M) {\n    let g = m.lock()\n        .unwrap();\n}"),
        ["lock-poison"]
    );
}

#[test]
fn lock_poison_accepts_the_recovering_helpers() {
    assert!(lint(r#"fn f(m: &M) { let g = lock(m); }"#).is_empty());
    assert!(lint(
        r#"fn f(m: &Mutex<T>) { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }"#
    )
    .is_empty());
}

#[test]
fn wall_clock_trips_in_lib_but_not_in_exempt_paths_or_tests() {
    let src = r#"fn f() { let t = std::time::Instant::now(); }"#;
    assert_eq!(rules_hit(src), ["wall-clock"]);
    assert_eq!(
        rules_hit(r#"fn f() { let t = SystemTime::now(); }"#),
        ["wall-clock"]
    );
    // rl_obs and the bench/harness timing paths are allowed wall time.
    assert!(lint_file("crates/obs/src/fixture.rs", src, ALL).is_empty());
    assert!(lint_file("crates/bench/src/fixture.rs", src, ALL).is_empty());
    // #[cfg(test)] modules are exempt.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}";
    assert!(lint(in_test).is_empty());
}

#[test]
fn no_sleep_in_lib_trips() {
    assert_eq!(
        rules_hit(r#"fn f() { std::thread::sleep(Duration::from_millis(5)); }"#),
        ["no-sleep-in-lib"]
    );
    // Word boundary: an identifier merely ending in "thread" is not a match.
    assert!(lint(r#"fn f() { my_thread::sleeper(); }"#).is_empty());
}

#[test]
fn json_via_builder_trips_on_escaped_and_raw_literals() {
    assert_eq!(
        rules_hit(r#"fn f() -> String { format!("{{\"count\": {}}}", 1) }"#),
        ["json-via-builder"]
    );
    assert_eq!(
        rules_hit(r##"fn f() -> &'static str { r#"{"count": 1}"# }"##),
        ["json-via-builder"]
    );
    // A brace-only format string is not JSON.
    assert!(lint(r#"fn f() -> String { format!("{{{}}}", 1) }"#).is_empty());
}

#[test]
fn no_todo_panic_trips_outside_tests() {
    assert_eq!(rules_hit(r#"fn f() { todo!() }"#), ["no-todo-panic"]);
    assert_eq!(
        rules_hit(r#"fn f() { unimplemented!("later") }"#),
        ["no-todo-panic"]
    );
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { todo!() }\n}";
    assert!(lint(in_test).is_empty());
}

#[test]
fn lock_order_reports_a_two_mutex_inversion() {
    // The synthetic inversion from the issue: alpha→beta in one path,
    // beta→alpha in another. Uses the blessed lock() helper so the only
    // finding is the cycle itself.
    let src = r#"
        fn ab(&self) {
            let a = lock(&self.alpha);
            let b = lock(&self.beta);
            drop(b);
            drop(a);
        }
        fn ba(&self) {
            let b = lock(&self.beta);
            let a = lock(&self.alpha);
            drop(a);
            drop(b);
        }
    "#;
    let diags = lint_files(
        &[("crates/core/src/fixture.rs".to_string(), src.to_string())],
        ALL,
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
    assert!(
        diags[0].message.contains("alpha") && diags[0].message.contains("beta"),
        "{}",
        diags[0].message
    );
}

#[test]
fn lock_order_sees_the_parallel_commit_pipeline_nodes() {
    // The sharded-MVCC pipeline's acquisition shapes all register:
    // indexed shard locks, the commit-batch queue, the version core, and
    // the store RwLock, nested in the declared rank order — clean graph.
    let src = r#"
        fn commit(&self) {
            let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
            let st = lock_ranked(&self.batcher.queue_state, LockRank::CommitBatch);
            let core = lock_ranked(&self.core, LockRank::VersionCore);
            let store = write_ranked(&self.store, LockRank::DatabaseStore);
        }
        fn snapshot_read(&self) {
            let store = read_ranked(&self.store, LockRank::DatabaseStore);
        }
    "#;
    let diags = lint_files(
        &[("crates/core/src/fixture.rs".to_string(), src.to_string())],
        ALL,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_reports_a_shard_version_core_inversion() {
    // A commit path takes a conflict shard then the version core; a buggy
    // maintenance sweep takes the core then a shard. Two threads running
    // these concurrently deadlock — the graph must report the cycle.
    let src = r#"
        fn commit(&self) {
            let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
            let core = lock_ranked(&self.core, LockRank::VersionCore);
        }
        fn sweep(&self) {
            let core = lock_ranked(&self.core, LockRank::VersionCore);
            let shard = lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx);
        }
    "#;
    let diags = lint_files(
        &[("crates/core/src/fixture.rs".to_string(), src.to_string())],
        ALL,
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
    assert!(
        diags[0].message.contains("shards") && diags[0].message.contains("core"),
        "{}",
        diags[0].message
    );
}

#[test]
fn lock_order_consistent_nesting_is_clean() {
    let src = r#"
        fn ab(&self) {
            let a = lock(&self.alpha);
            let b = lock(&self.beta);
        }
        fn ab_again(&self) {
            let a = lock(&self.alpha);
            let b = lock(&self.beta);
        }
    "#;
    let diags = lint_files(
        &[("crates/core/src/fixture.rs".to_string(), src.to_string())],
        ALL,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn suppression_on_the_same_line() {
    let src =
        r#"fn f(m: &M) { let g = m.lock().unwrap(); } // rl-lint: allow(lock-poison) — fixture"#;
    assert!(lint(src).is_empty());
}

#[test]
fn suppression_on_the_line_above() {
    let src =
        "// rl-lint: allow(lock-poison) — fixture\nfn f(m: &M) { let g = m.lock().unwrap(); }";
    assert!(lint(src).is_empty());
}

#[test]
fn suppression_lists_several_rules() {
    let src = "// rl-lint: allow(lock-poison, wall-clock) — fixture\n\
               fn f(m: &M) { let g = m.lock().unwrap(); let t = Instant::now(); }";
    assert!(lint(src).is_empty());
}

#[test]
fn suppression_of_the_wrong_rule_does_not_apply() {
    let src =
        "// rl-lint: allow(wall-clock) — wrong id\nfn f(m: &M) { let g = m.lock().unwrap(); }";
    assert_eq!(rules_hit(src), ["lock-poison"]);
}

#[test]
fn suppression_two_lines_up_is_out_of_range() {
    let src = "// rl-lint: allow(lock-poison)\n\nfn f(m: &M) { let g = m.lock().unwrap(); }";
    assert_eq!(rules_hit(src), ["lock-poison"]);
}

#[test]
fn diagnostics_render_as_file_line_rule_message() {
    let diags = lint(r#"fn f() { todo!() }"#);
    assert_eq!(diags.len(), 1);
    assert!(
        diags[0].starts_with("crates/core/src/fixture.rs:1: no-todo-panic: "),
        "{}",
        diags[0]
    );
}

#[test]
fn diagnostics_are_sorted_by_file_then_line() {
    let files = vec![
        (
            "crates/core/src/b.rs".to_string(),
            "fn f(m: &M) { let g = m.lock().unwrap(); }".to_string(),
        ),
        (
            "crates/core/src/a.rs".to_string(),
            "fn f() { todo!() }\nfn g(m: &M) { let h = m.lock().unwrap(); }".to_string(),
        ),
    ];
    let diags = lint_files(&files, ALL);
    let keys: Vec<(String, usize)> = diags.iter().map(|d| (d.file.clone(), d.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(diags[0].file, "crates/core/src/a.rs");
}
