//! Property tests for the lexer's masking guarantee: rule-trigger text
//! placed inside comments, strings, raw strings, or char literals must
//! never produce a finding, no matter how the contexts are mixed.
//!
//! Uses a tiny xorshift PRNG (no dev-dependencies allowed) with a fixed
//! seed, so failures are reproducible: the assertion prints the full
//! generated source.

use rl_analysis::rules::{lint_file, ALL};

/// xorshift64* — deterministic, seedable, good enough for fuzzing text.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

/// Trigger fragments for every code-pattern rule. None contain `"` or
/// `\`, so they embed verbatim in any literal kind.
const CODE_TRIGGERS: &[&str] = &[
    ".lock().unwrap()",
    ".lock() .unwrap()",
    "Instant::now()",
    "std::time::SystemTime::now()",
    "thread::sleep(d)",
    "std::thread::sleep(d)",
    "todo!()",
    "unimplemented!()",
    "lock(&self.alpha); lock(&self.beta)",
];

/// Triggers for the string-content rule — only safe inside comments
/// (inside a string literal they would be a *real* violation).
const COMMENT_ONLY_TRIGGERS: &[&str] = &["{\"count\": 1}", "{\\\"sum\\\": 2}"];

/// Wrap `t` in a randomly chosen context where it must be invisible.
fn embed(rng: &mut Rng, t: &str, n: usize) -> String {
    match rng.next() % 6 {
        0 => format!("    // {t}\n"),
        1 => format!("    /* {t} */\n"),
        2 => format!("    /* outer /* {t} */ still comment */\n"),
        3 => format!("    let s{n} = \"{t}\";\n"),
        4 => format!("    let s{n} = r#\"{t}\"#;\n"),
        _ => format!("    let s{n} = br\"{t}\";\n"),
    }
}

fn generate(rng: &mut Rng) -> String {
    let mut src = String::from("fn generated() {\n");
    let parts = 3 + (rng.next() % 6) as usize;
    for n in 0..parts {
        if rng.next().is_multiple_of(4) {
            let t = rng.pick(COMMENT_ONLY_TRIGGERS);
            // Comments only: in a string these would be real findings.
            if rng.next().is_multiple_of(2) {
                src.push_str(&format!("    // {t}\n"));
            } else {
                src.push_str(&format!("    /* {t} */\n"));
            }
        } else {
            let t = rng.pick(CODE_TRIGGERS);
            src.push_str(&embed(rng, t, n));
        }
        // Interleave innocent real code and char literals as chaff.
        match rng.next() % 4 {
            0 => src.push_str("    let c = 'a';\n"),
            1 => src.push_str("    let q = '\\'';\n"),
            2 => src.push_str("    let v: Vec<u8> = Vec::new();\n"),
            _ => {}
        }
    }
    src.push_str("}\n");
    src
}

#[test]
fn triggers_inside_literals_and_comments_never_fire() {
    let mut rng = Rng(0x5EED_CAFE_F00D_2026);
    for round in 0..500 {
        let src = generate(&mut rng);
        let diags = lint_file("crates/core/src/generated.rs", &src, ALL);
        assert!(
            diags.is_empty(),
            "round {round}: false positives {diags:?}\n--- source ---\n{src}"
        );
    }
}

#[test]
fn the_same_trigger_as_real_code_does_fire() {
    // Sanity check that the property test could fail: append one real
    // violation to a generated file and the linter must see exactly it.
    let mut rng = Rng(0xDEAD_BEEF_0BAD_F00D);
    for _ in 0..50 {
        let mut src = generate(&mut rng);
        src.push_str("fn real(m: &M) { let g = m.lock().unwrap(); }\n");
        let diags = lint_file("crates/core/src/generated.rs", &src, ALL);
        assert_eq!(diags.len(), 1, "{diags:?}\n--- source ---\n{src}");
        assert_eq!(diags[0].rule, "lock-poison");
    }
}

#[test]
fn multiline_raw_strings_swallow_whole_functions() {
    let src = "fn doc() -> &'static str {\n    r##\"\n\
               fn f(m: &M) { m.lock().unwrap(); }\n\
               fn g() { std::thread::sleep(d); todo!() }\n\
               \"##\n}\n";
    let diags = lint_file("crates/core/src/doc.rs", src, ALL);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn line_numbers_survive_masking() {
    // The violation sits on line 5; everything above is comment/literal
    // noise that must not shift the reported line.
    let src = "// header comment\n\
               /* block\n   spanning lines */\n\
               fn noise() -> &'static str { \"multi\" }\n\
               fn f(m: &M) { let g = m.lock().unwrap(); }\n";
    let diags = lint_file("crates/core/src/lines.rs", src, ALL);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 5);
}
