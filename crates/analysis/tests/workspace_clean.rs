//! The self-test: `cargo test` runs the full rule catalog over the real
//! workspace and fails on any finding, so a violation can't land even if
//! the CI lint leg is skipped.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = rl_analysis::find_workspace_root(here)
        .expect("workspace root with [workspace] above crates/analysis");
    let diags = rl_analysis::lint_tree(&root).expect("read workspace sources");
    assert!(
        diags.is_empty(),
        "the workspace must be rl_lint-clean; run `cargo run -p rl_analysis --bin rl_lint` \
         and fix or `// rl-lint: allow(rule-id) — reason` each finding:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_has_a_nontrivial_source_set() {
    // Guard against the walker silently skipping everything (which would
    // make the clean self-test vacuous).
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = rl_analysis::find_workspace_root(here).unwrap();
    let files = rl_analysis::collect_sources(&root).unwrap();
    assert!(files.len() >= 50, "only {} .rs files found", files.len());
    assert!(files
        .iter()
        .any(|(p, _)| p == "crates/fdb/src/transaction.rs"));
    assert!(files
        .iter()
        .any(|(p, _)| p == "crates/analysis/src/lexer.rs"));
}
