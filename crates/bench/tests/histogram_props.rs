//! Property tests for the `rl_obs` log-bucketed histogram, driven by the
//! bench crate's deterministic RNG: randomized value streams across the
//! full dynamic range, checked against exact order statistics.

use rl_bench::rng::Rng;
use rl_obs::{Histogram, HistogramSnapshot};

/// Sub-buckets per power-of-two range in the histogram layout; the
/// documented relative error of a quantile estimate is one part in this.
const SUB: u64 = 32;

/// A log-uniform sample: uniform exponent, then uniform within the range,
/// so every power-of-two block of the histogram gets exercised.
fn log_uniform(rng: &mut rl_bench::rng::XorShift64, max_bits: u32) -> u64 {
    let bits = rng.gen_range(0..=max_bits);
    if bits == 0 {
        return rng.gen_range(0u64..2);
    }
    rng.gen_range((1u64 << (bits - 1))..(1u64 << bits))
}

/// The exact rank the histogram's `quantile` documents: the
/// `⌈q·count⌉`-th smallest recorded value (1-indexed, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_rank_error_is_bounded_on_random_streams() {
    let mut rng = rl_bench::rng(0x0b5e_aab1e);
    for round in 0..20 {
        let n = rng.gen_range(1usize..4000);
        let max_bits = rng.gen_range(1u32..48);
        let h = Histogram::new();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let v = log_uniform(&mut rng, max_bits);
            h.record(v);
            values.push(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count() as usize, n);
        assert_eq!(s.min(), values[0]);
        assert_eq!(s.max(), *values.last().unwrap());

        for _ in 0..50 {
            let q = rng.gen_range(0.0f64..1.0);
            let exact = exact_quantile(&values, q);
            let est = s.quantile(q);
            // The estimate is an upper bound on the exact order statistic,
            // within one sub-bucket's width (≤ 1/32 relative, +1 for the
            // integer bucket edge).
            assert!(
                est >= exact,
                "round {round}: q={q}: estimate {est} below exact {exact}"
            );
            assert!(
                est - exact <= exact / SUB + 1,
                "round {round}: q={q}: estimate {est} too far above exact {exact} (n={n})"
            );
        }
    }
}

#[test]
fn merge_is_equivalent_to_recording_the_concatenated_stream() {
    let mut rng = rl_bench::rng(0xc0a1e5ce);
    for round in 0..10 {
        let a = Histogram::new();
        let b = Histogram::new();
        let concat = Histogram::new();
        let n = rng.gen_range(0usize..3000);
        let max_bits = rng.gen_range(1u32..60);
        for _ in 0..n {
            let v = log_uniform(&mut rng, max_bits);
            // Random, uneven split between the two shards.
            if rng.gen_range(0u64..10) < 3 {
                a.record(v);
            } else {
                b.record(v);
            }
            concat.record(v);
        }

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let expected = concat.snapshot();
        // Snapshot equality is bucket-for-bucket, so every quantile and
        // statistic agrees with a histogram that saw the whole stream.
        assert_eq!(merged, expected, "round {round} (n={n})");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile(q),
                expected.quantile(q),
                "round {round} q={q}"
            );
        }
    }
}

#[test]
fn merge_order_does_not_matter() {
    let mut rng = rl_bench::rng(7);
    let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    for _ in 0..2000 {
        let v = log_uniform(&mut rng, 40);
        shards[rng.gen_range(0usize..4)].record(v);
    }
    let snaps: Vec<HistogramSnapshot> = shards.iter().map(|h| h.snapshot()).collect();

    let mut forward = snaps[0].clone();
    for s in &snaps[1..] {
        forward.merge(s);
    }
    let mut backward = snaps[3].clone();
    for s in snaps[..3].iter().rev() {
        backward.merge(s);
    }
    assert_eq!(forward, backward);
}
