//! OVH — the §8.2 in-text overhead numbers.
//!
//! The paper reports, for common CloudKit operations, the median number of
//! FoundationDB keys read or written and how many of those are overhead
//! rather than record/index payload:
//!
//! * query: ≈38.3 keys read, of which ≈6.2 are overhead (≈15%),
//! * single-record read: ≈13.3 keys read, ≈7.7 overhead,
//! * save: ≈8.5 records and ≈34.5 index-key writes per transaction
//!   (≈4 index writes per record).
//!
//! We reproduce the *shape*: a query's overhead is a small fraction of its
//! reads, single-record gets are proportionally expensive, and save cost is
//! dominated by index maintenance proportional to the number of indexes.

use cloudkit_sim::{CloudKit, CloudKitConfig, RecordData};
use rl_fdb::Database;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        0.0
    } else {
        xs[xs.len() / 2]
    }
}

fn main() {
    let db = Database::new();
    let config = CloudKitConfig {
        indexed_fields: vec!["field0".into(), "field1".into(), "field2".into()],
        quota_index: true,
    };
    let ck = CloudKit::new(&db, &config);

    // Seed a store with a realistic spread of records.
    record_layer::run(&db, |tx| {
        for i in 0..300i64 {
            ck.save(
                tx,
                1,
                "app",
                &RecordData::new("zone", format!("rec{i:04}"))
                    .string_field("field0", format!("group{}", i % 10))
                    .string_field("field1", format!("v{i}"))
                    .string_field("field2", "constant"),
            )?;
        }
        Ok(())
    })
    .unwrap();

    let metrics = db.metrics();

    // ---- Query operation: all records matching field0 = groupK ----------
    let mut query_keys = Vec::new();
    let mut query_results = Vec::new();
    for g in 0..10 {
        let before = metrics.snapshot();
        let n = record_layer::run(&db, |tx| {
            let store = ck.open_store(tx, 1, "app")?;
            let planner = record_layer::plan::RecordQueryPlanner::new(ck.metadata());
            let query = record_layer::query::RecordQuery::new()
                .record_type(cloudkit_sim::service::RECORD_TYPE)
                .filter(record_layer::query::QueryComponent::and(vec![
                    record_layer::query::QueryComponent::field(
                        "zone",
                        record_layer::query::Comparison::Equals("zone".into()),
                    ),
                    record_layer::query::QueryComponent::field(
                        "field0",
                        record_layer::query::Comparison::Equals(format!("group{g}").into()),
                    ),
                ]));
            Ok(planner.plan(&query)?.execute_all(&store)?.len())
        })
        .unwrap();
        let delta = metrics.snapshot().delta(&before);
        query_keys.push(delta.keys_read as f64);
        query_results.push(n as f64);
    }

    // ---- Single-record read ---------------------------------------------
    let mut get_keys = Vec::new();
    for i in 0..30i64 {
        let before = metrics.snapshot();
        record_layer::run(&db, |tx| {
            let rec = ck.load(tx, 1, "app", "zone", &format!("rec{:04}", i * 7 % 300))?;
            assert!(rec.is_some());
            Ok(())
        })
        .unwrap();
        let delta = metrics.snapshot().delta(&before);
        get_keys.push(delta.keys_read as f64);
    }

    // ---- Record save ------------------------------------------------------
    let mut save_written = Vec::new();
    for batch in 0..20i64 {
        let before = metrics.snapshot();
        record_layer::run(&db, |tx| {
            // The paper's average transaction writes ~8.5 records.
            for j in 0..8i64 {
                ck.save(
                    tx,
                    1,
                    "app",
                    &RecordData::new("zone", format!("save{batch}-{j}"))
                        .string_field("field0", format!("group{}", j % 10))
                        .string_field("field1", "x")
                        .string_field("field2", "y"),
                )?;
            }
            Ok(())
        })
        .unwrap();
        let delta = metrics.snapshot().delta(&before);
        save_written.push(delta.keys_written as f64);
    }

    let q_keys = median(query_keys.clone());
    let q_results = median(query_results);
    // Overhead = keys read that are not records or index entries: here the
    // store header + index-state keys + version splits read per open.
    // Result rows cost ~3 keys each (index entry + version split + record
    // payload); everything else is overhead.
    let q_payload = q_results * 3.0;
    let q_overhead = (q_keys - q_payload).max(0.0);

    let g_keys = median(get_keys);
    let g_payload = 2.0; // record payload + version split
    let g_overhead = g_keys - g_payload;

    let s_written = median(save_written);
    let records_per_tx = 8.0;
    // Each record writes payload + version = 2 keys; the rest is index
    // maintenance (3 user VALUE indexes + quota COUNT + sync VERSION).
    let s_index_writes = s_written - records_per_tx * 2.0;

    println!("# OVH: keys read/written per operation (medians), §8.2");
    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "operation", "keys", "payload", "overhead"
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>12.1}   (paper: 38.3 total, 6.2 overhead ≈ 15%)",
        "query (reads)", q_keys, q_payload, q_overhead
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>12.1}   (paper: 13.3 total, 7.7 overhead)",
        "single-record get (reads)", g_keys, g_payload, g_overhead
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>12.1}   (paper: ~8.5 records, ~34.5 index writes ≈ 4/record)",
        "save 8 records (writes)",
        s_written,
        records_per_tx * 2.0,
        s_index_writes
    );
    println!();
    println!(
        "query overhead fraction:   {:.1}%   (paper ≈ 15%)",
        q_overhead / q_keys * 100.0
    );
    println!(
        "get overhead fraction:     {:.1}%   (paper ≈ 58%)",
        g_overhead / g_keys * 100.0
    );
    println!(
        "index writes per record:   {:.1}    (paper ≈ 4)",
        s_index_writes / records_per_tx
    );
    println!();
    println!("# shape check: queries amortize overhead over results; point reads are");
    println!("# proportionally expensive; save cost is dominated by index maintenance.");

    assert!(
        q_overhead / q_keys < 0.5,
        "query overhead should be a minority of reads"
    );
    assert!(
        g_overhead / g_keys > 0.3,
        "point reads are proportionally expensive"
    );
    assert!(
        s_index_writes / records_per_tx >= 2.0,
        "index maintenance dominates save writes"
    );
}
