//! OVH — the §8.2 overhead table on the new observability layer.
//!
//! The paper reports, for common CloudKit operations, the number of
//! FoundationDB keys read and written and how many of those are overhead
//! rather than record/index payload (e.g. a query reads ≈38.3 keys of
//! which ≈6.2 are overhead ≈ 15%). This experiment reproduces the *shape*
//! of that table per operation — save / query / covering query / rank
//! update — with every iteration's key reads and writes split into
//! payload vs. overhead, each distributed as p50/p95/p99 through
//! `rl_obs::Histogram` rather than a single median.
//!
//! Per-operation attribution comes from the per-transaction trace
//! (`Transaction::trace`) added by the observability layer: each
//! iteration runs in its own manual transaction, so its key traffic is
//! read off the transaction itself instead of diffing global counters.
//!
//! Emits `BENCH_overhead.json`: the per-op key distributions plus the
//! process latency histograms (`Recorder::to_json`) collected while the
//! workload ran.

use record_layer::plan::RecordQueryPlanner;
use record_layer::query::{Comparison, QueryComponent, RecordQuery};
use record_layer::store::RecordStore;
use rl_bench::item_metadata;
use rl_bench::json::Json;
use rl_fdb::{Database, Subspace, Transaction};
use rl_obs::Histogram;

/// Records seeded (`RL_BENCH_N`) and iterations per operation
/// (`RL_BENCH_ITERS`); CI smoke-runs shrink both.
fn env_or(name: &str, default: i64) -> i64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

const RECORDS_PER_SAVE: i64 = 8;
const RECORDS_PER_RANK_UPDATE: i64 = 4;
/// Keys a fetched result row costs: index entry + record payload + version.
const KEYS_PER_FETCHED_ROW: u64 = 3;
/// Keys a covered result row costs: the index entry alone.
const KEYS_PER_COVERED_ROW: u64 = 1;
/// Payload keys written per record: the record payload + its version key.
const KEYS_PER_RECORD_WRITE: u64 = 2;

/// The key reads and writes of one operation, each split payload vs.
/// overhead and distributed over iterations.
struct OpHists {
    name: &'static str,
    reads_total: Histogram,
    reads_payload: Histogram,
    reads_overhead: Histogram,
    writes_total: Histogram,
    writes_payload: Histogram,
    writes_overhead: Histogram,
}

impl OpHists {
    fn new(name: &'static str) -> OpHists {
        OpHists {
            name,
            reads_total: Histogram::new(),
            reads_payload: Histogram::new(),
            reads_overhead: Histogram::new(),
            writes_total: Histogram::new(),
            writes_payload: Histogram::new(),
            writes_overhead: Histogram::new(),
        }
    }

    /// Record one iteration: the transaction's trace plus how many of its
    /// keys were payload (results / records, the rest being overhead).
    fn record(&self, tx: &Transaction, read_payload: u64, write_payload: u64) {
        let t = tx.trace();
        self.reads_total.record(t.keys_read);
        self.reads_payload.record(read_payload.min(t.keys_read));
        self.reads_overhead
            .record(t.keys_read.saturating_sub(read_payload));
        self.writes_total.record(t.keys_written);
        self.writes_payload
            .record(write_payload.min(t.keys_written));
        self.writes_overhead
            .record(t.keys_written.saturating_sub(write_payload));
    }

    fn print(&self) {
        for (dir, total, payload, overhead) in [
            (
                "reads",
                &self.reads_total,
                &self.reads_payload,
                &self.reads_overhead,
            ),
            (
                "writes",
                &self.writes_total,
                &self.writes_payload,
                &self.writes_overhead,
            ),
        ] {
            let t = total.snapshot();
            if t.max() == 0 {
                continue;
            }
            println!(
                "{:<22} {:<7} {:>7} {:>9} {:>10} {:>7} {:>7}",
                self.name,
                dir,
                t.quantile(0.5),
                payload.snapshot().quantile(0.5),
                overhead.snapshot().quantile(0.5),
                t.quantile(0.95),
                t.quantile(0.99),
            );
        }
    }

    fn json(&self) -> Json {
        Json::obj()
            .with("reads_total", Json::hist(&self.reads_total.snapshot()))
            .with("reads_payload", Json::hist(&self.reads_payload.snapshot()))
            .with(
                "reads_overhead",
                Json::hist(&self.reads_overhead.snapshot()),
            )
            .with("writes_total", Json::hist(&self.writes_total.snapshot()))
            .with(
                "writes_payload",
                Json::hist(&self.writes_payload.snapshot()),
            )
            .with(
                "writes_overhead",
                Json::hist(&self.writes_overhead.snapshot()),
            )
    }
}

fn main() {
    // Collect latency histograms and per-transaction traces while the
    // workload runs (traces also need the flag, via Transaction::trace
    // being cheap but the spans being gated).
    rl_obs::set_enabled(true);

    let n_records = env_or("RL_BENCH_N", 300);
    let iters = env_or("RL_BENCH_ITERS", 20);
    let groups = 10i64;

    let db = Database::new();
    // group + group_score value indexes, sum/count atomics, score rank.
    let md = item_metadata(false, true);
    let sub = Subspace::from_bytes(b"ovh".to_vec());

    // Seed the store with the base population (not measured).
    for chunk in (0..n_records).collect::<Vec<_>>().chunks(50) {
        record_layer::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            for &i in chunk {
                save_item(&store, i, format!("g{}", i % groups), i % 100)?;
            }
            Ok(())
        })
        .unwrap();
    }

    let planner = RecordQueryPlanner::new(&md);
    let group_query = |g: i64, covering: bool| {
        let q = RecordQuery::new()
            .record_type("Item")
            .filter(QueryComponent::field(
                "group",
                Comparison::Equals(format!("g{g}").into()),
            ));
        if covering {
            q.require_fields(&["id", "group", "score"])
        } else {
            q
        }
    };
    let fetching_plan = planner.plan(&group_query(0, false)).unwrap();
    assert!(
        !fetching_plan.describe().starts_with("Covering("),
        "unexpected covering plan {}",
        fetching_plan.describe()
    );
    let covering_plan = planner.plan(&group_query(0, true)).unwrap();
    assert!(
        covering_plan.describe().starts_with("Covering("),
        "expected a covering plan, got {}",
        covering_plan.describe()
    );

    let save = OpHists::new("save");
    let query = OpHists::new("query");
    let covering = OpHists::new("covering_query");
    let rank_update = OpHists::new("rank_update");
    let mut next_id = n_records;

    for it in 0..iters {
        // ---- save: a fresh transaction writing 8 new records ------------
        let tx = db.create_transaction();
        tx.set_tag("ovh:save");
        {
            let store = RecordStore::open_or_create(&tx, &sub, &md).unwrap();
            for _ in 0..RECORDS_PER_SAVE {
                save_item(
                    &store,
                    next_id,
                    format!("g{}", next_id % groups),
                    next_id % 100,
                )
                .unwrap();
                next_id += 1;
            }
        }
        tx.commit().unwrap();
        save.record(&tx, 0, RECORDS_PER_SAVE as u64 * KEYS_PER_RECORD_WRITE);

        // ---- query: fetching index scan over one group -------------------
        let g = it % groups;
        let tx = db.create_transaction();
        tx.set_tag("ovh:query");
        let rows = {
            let store = RecordStore::open_or_create(&tx, &sub, &md).unwrap();
            let plan = planner.plan(&group_query(g, false)).unwrap();
            plan.execute_all(&store).unwrap().len() as u64
        };
        tx.commit().unwrap();
        query.record(&tx, rows * KEYS_PER_FETCHED_ROW, 0);

        // ---- covering query: same filter served from index entries -------
        let tx = db.create_transaction();
        tx.set_tag("ovh:covering");
        let cov_rows = {
            let store = RecordStore::open_or_create(&tx, &sub, &md).unwrap();
            let plan = planner.plan(&group_query(g, true)).unwrap();
            plan.execute_all(&store).unwrap().len() as u64
        };
        tx.commit().unwrap();
        assert_eq!(rows, cov_rows, "projection must not change rows");
        covering.record(&tx, cov_rows * KEYS_PER_COVERED_ROW, 0);

        // ---- rank update: re-save existing records with new scores -------
        let tx = db.create_transaction();
        tx.set_tag("ovh:rank");
        {
            let store = RecordStore::open_or_create(&tx, &sub, &md).unwrap();
            for j in 0..RECORDS_PER_RANK_UPDATE {
                let id = (it * 13 + j * 7) % n_records;
                save_item(&store, id, format!("g{}", id % groups), (id + it + 1) % 100).unwrap();
            }
        }
        tx.commit().unwrap();
        rank_update.record(
            &tx,
            0,
            RECORDS_PER_RANK_UPDATE as u64 * KEYS_PER_RECORD_WRITE,
        );
    }

    let ops = [&save, &query, &covering, &rank_update];

    println!("# OVH: keys per operation, payload vs. overhead (per-txn traces), §8.2");
    println!("# n={n_records} records, {iters} iterations per op");
    println!();
    println!(
        "{:<22} {:<7} {:>7} {:>9} {:>10} {:>7} {:>7}",
        "operation", "dir", "p50", "payload", "overhead", "p95", "p99"
    );
    for op in ops {
        op.print();
    }

    let q_total = query.reads_total.snapshot().quantile(0.5);
    let q_overhead = query.reads_overhead.snapshot().quantile(0.5);
    let c_total = covering.reads_total.snapshot().quantile(0.5);
    let s_index = save.writes_overhead.snapshot().quantile(0.5);
    println!();
    println!(
        "query overhead fraction:  {:.1}%   (paper ≈ 15%)",
        q_overhead as f64 / q_total as f64 * 100.0
    );
    println!(
        "covering vs fetching:     {c_total} vs {q_total} keys read (covering skips the fetch)"
    );
    println!(
        "index writes per record:  {:.1}   (paper ≈ 4)",
        s_index as f64 / RECORDS_PER_SAVE as f64
    );

    // Shape checks, mirroring the paper's table.
    assert!(
        q_overhead * 2 < q_total,
        "query overhead should be a minority of reads ({q_overhead} of {q_total})"
    );
    assert!(
        c_total < q_total,
        "covering queries must read fewer keys ({c_total} vs {q_total})"
    );
    assert!(
        s_index >= RECORDS_PER_SAVE as u64 * 2,
        "index maintenance dominates save writes ({s_index} index writes)"
    );

    let mut ops_json = Json::obj();
    for op in ops {
        ops_json.set(op.name, op.json());
    }
    let report = Json::obj()
        .with("n_records", n_records)
        .with("iterations", iters)
        .with("ops", ops_json)
        .with(
            "latency_us",
            Json::parse(&rl_obs::Recorder::global().to_json()).expect("recorder JSON"),
        );
    std::fs::write("BENCH_overhead.json", report.to_pretty()).expect("write BENCH_overhead.json");
    println!("\nwrote BENCH_overhead.json");
}

fn save_item(
    store: &RecordStore<'_>,
    id: i64,
    group: String,
    score: i64,
) -> record_layer::error::Result<()> {
    let mut item = store.new_record("Item")?;
    item.set("id", id).unwrap();
    item.set("group", group).unwrap();
    item.set("score", score).unwrap();
    item.set("body", format!("body {id}")).unwrap();
    store.save_record(item)?;
    Ok(())
}
