//! TAB2 — Table 2: TEXT index space savings from the bunched map.
//!
//! The paper's worked example: 233 ~5 kB documents (Moby Dick), whitespace
//! tokenization, ~431.8 unique tokens per document of average length ~7.8
//! and frequency ~2.1; a 10-byte subspace prefix. Without bunching every
//! posting is its own key (~25.8 B/entry, ~11.1 kB/document); with bunch
//! size 20 the prefix+token cost is amortized (~2.6 kB/document ideal). In
//! practice the paper measured ~4.9 kB/document because bunches average
//! only ~4.7 entries.
//!
//! We substitute a synthetic Zipfian corpus matched to those statistics
//! (the tokenizer, index layout, and bunching algorithm are the real ones)
//! and reproduce both the worked calculation and the measured sizes.

use record_layer::expr::KeyExpression;
use record_layer::index::text::{token_positions, WhitespaceTokenizer};
use record_layer::metadata::{Index, IndexOptions, RecordMetaDataBuilder};
use record_layer::store::RecordStore;
use rl_bench::{document, rng, vocabulary, Zipf};
use rl_fdb::{Database, Subspace};
use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

const DOCS: usize = 233;
const DOC_BYTES: usize = 5000;

fn doc_pool() -> DescriptorPool {
    let mut pool = DescriptorPool::new();
    pool.add_message(
        MessageDescriptor::new(
            "Doc",
            vec![
                FieldDescriptor::optional("id", 1, FieldType::Int64),
                FieldDescriptor::optional("body", 2, FieldType::String),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    pool
}

fn build_index(docs: &[String], bunch_size: usize) -> (usize, usize, f64) {
    let metadata = RecordMetaDataBuilder::new(doc_pool())
        .record_type("Doc", KeyExpression::field("id"))
        .index(
            "Doc",
            Index::text("body_text", KeyExpression::field("body")).with_options(IndexOptions {
                text_bunch_size: bunch_size,
                ..Default::default()
            }),
        )
        .store_record_versions(false)
        .build()
        .unwrap();
    let db = Database::new();
    let sub = Subspace::from_bytes(b"t2".to_vec());
    for (i, body) in docs.iter().enumerate() {
        record_layer::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
            let mut msg = store.new_record("Doc")?;
            msg.set("id", i as i64).unwrap();
            msg.set("body", body.as_str()).unwrap();
            store.save_record(msg)?;
            Ok(())
        })
        .unwrap();
    }
    record_layer::run(&db, |tx| {
        let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
        let stats = store.text_index_stats("body_text")?;
        Ok((
            stats.index_keys,
            stats.total_bytes(),
            stats.average_bunch_size(),
        ))
    })
    .unwrap()
}

fn main() {
    let mut r = rng(7);
    // Vocabulary sized so each 5 kB document holds ~430 unique tokens with
    // mean frequency ~2.1 — a few thousand Zipfian words.
    let vocab = vocabulary(&mut r, 6000);
    let zipf = Zipf::new(vocab.len(), 0.9);
    let docs: Vec<String> = (0..DOCS)
        .map(|_| document(&mut r, &vocab, &zipf, DOC_BYTES))
        .collect();

    // Corpus statistics (compare with the paper's Moby Dick numbers).
    let mut unique_per_doc = 0usize;
    let mut token_len_sum = 0usize;
    let mut token_count = 0usize;
    let mut freq_sum = 0usize;
    for d in &docs {
        let positions = token_positions(&WhitespaceTokenizer, d);
        unique_per_doc += positions.len();
        for (tok, offs) in &positions {
            token_len_sum += tok.len();
            token_count += 1;
            freq_sum += offs.len();
        }
    }
    let avg_unique = unique_per_doc as f64 / DOCS as f64;
    let avg_len = token_len_sum as f64 / token_count as f64;
    let avg_freq = freq_sum as f64 / token_count as f64;

    println!("# TAB2: TEXT index bunching — {DOCS} docs x ~{DOC_BYTES} B");
    println!();
    println!("corpus statistics               ours      paper (Moby Dick)");
    println!("unique tokens / doc          {avg_unique:>7.1}      431.8");
    println!("avg token length             {avg_len:>7.1}      7.8");
    println!("avg occurrences / token      {avg_freq:>7.1}      2.1");
    println!();

    // Worked example (paper's Table 2 arithmetic with our statistics).
    let prefix = 10.0;
    let key_size = prefix + avg_len + 3.0 + 2.0;
    let no_bunch_entry = key_size + 3.0;
    let bunch20_entry = key_size + 3.0f64.mul_add(19.0, 2.0 * 20.0);
    println!("worked example (per document)        no bunch    bunch=20");
    println!("key size (prefix+token+pk+enc)       {key_size:>8.1} B  {key_size:>8.1} B");
    println!(
        "total size / doc                     {:>8.1} kB {:>8.1} kB   (paper: 11.1 / 2.6 kB)",
        no_bunch_entry * avg_unique / 1000.0,
        bunch20_entry * (avg_unique / 20.0) / 1000.0
    );
    println!();

    // Measured: build the real index both ways.
    let (keys1, bytes1, fill1) = build_index(&docs, 1);
    let (keys20, bytes20, fill20) = build_index(&docs, 20);
    println!("measured                             no bunch    bunch=20");
    println!("index keys                           {keys1:>10} {keys20:>10}");
    println!(
        "index bytes / doc                    {:>8.2} kB {:>8.2} kB   (paper measured: ~4.9 kB w/ bunching)",
        bytes1 as f64 / DOCS as f64 / 1000.0,
        bytes20 as f64 / DOCS as f64 / 1000.0
    );
    println!("avg bunch fill                       {fill1:>10.2} {fill20:>10.2}   (paper: ~4.7 of max 20)");
    println!(
        "space saving from bunching:          {:.1}x fewer keys, {:.1}% fewer bytes",
        keys1 as f64 / keys20 as f64,
        (1.0 - bytes20 as f64 / bytes1 as f64) * 100.0
    );

    assert!(keys20 < keys1, "bunching must reduce key count");
    assert!(bytes20 < bytes1, "bunching must reduce total bytes");
    assert!(
        fill20 > 1.5,
        "bunches should hold multiple postings on average"
    );
}
