//! FIG1 — Figure 1: the distribution of record store sizes.
//!
//! The paper samples 0.1% of CloudKit-managed private record stores and
//! shows (top) the fraction of record stores by size and (bottom) the
//! fraction of *bytes* by store size: the vast majority of stores are under
//! 1 kB, while most stored bytes live in large stores.
//!
//! We do not have the production trace, so we create real record stores in
//! the simulator with sizes drawn from a heavy-tailed log-normal fit to the
//! figure's shape, then regenerate both panels from the stores' actual
//! on-disk sizes (primary record data only, matching the figure's note).

use rl_bench::rng::{Distribution, Rng};

use record_layer::expr::KeyExpression;
use record_layer::metadata::RecordMetaDataBuilder;
use record_layer::store::RecordStoreBuilder;
use rl_bench::{rng, Log2Histogram, LogNormal};
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};
use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

const TENANTS: usize = 4000;
const RECORD_OVERHEAD: usize = 64;

fn main() {
    let mut r = rng(42);
    // Log-normal fit: median a few hundred bytes, sigma wide enough that
    // the tail dominates total bytes (as in the paper's bottom panel).
    let dist = LogNormal {
        mu: 5.2,
        sigma: 2.6,
    };

    let mut pool = DescriptorPool::new();
    pool.add_message(
        MessageDescriptor::new(
            "Blob",
            vec![
                FieldDescriptor::optional("id", 1, FieldType::Int64),
                FieldDescriptor::optional("data", 2, FieldType::Bytes),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let metadata = RecordMetaDataBuilder::new(pool)
        .record_type("Blob", KeyExpression::field("id"))
        .store_record_versions(false)
        .build()
        .unwrap();

    let db = Database::new();
    let mut store_sizes: Vec<u64> = Vec::with_capacity(TENANTS);

    for tenant in 0..TENANTS {
        // Cap the sampled size to keep the simulation tractable; the cap
        // truncates the extreme tail (the paper's public-database TB-scale
        // stores are excluded from its figure too).
        let target = (dist.sample(&mut r) as usize).clamp(16, 2_000_000);
        let sub = Subspace::from_tuple(&Tuple::new().push("fig1").push(tenant as i64));
        let mut written = 0usize;
        let mut id = 0i64;
        while written < target {
            let chunk = (target - written).clamp(1, 8_192);
            let payload: Vec<u8> = (0..chunk).map(|_| r.gen_u8()).collect();
            record_layer::run(&db, |tx| {
                let store = RecordStoreBuilder::new().open_or_create(tx, &sub, &metadata)?;
                let mut msg = store.new_record("Blob")?;
                msg.set("id", id).unwrap();
                msg.set("data", payload.clone()).unwrap();
                store.save_record(msg)?;
                Ok(())
            })
            .unwrap();
            id += 1;
            written += chunk + RECORD_OVERHEAD;
        }
        // Measure the store's actual primary record data size.
        let records_sub = sub.child(1i64);
        let (begin, end) = records_sub.range_inclusive();
        let size: u64 = record_layer::run(&db, |tx| {
            Ok(tx
                .get_range(&begin, &end, rl_fdb::RangeOptions::default())
                .map_err(record_layer::Error::Fdb)?
                .iter()
                .map(|kv| (kv.key.len() + kv.value.len()) as u64)
                .sum())
        })
        .unwrap();
        store_sizes.push(size);
    }

    // Panel 1: fraction of record stores per size bucket (+ CDF).
    let mut stores_hist = Log2Histogram::new(32);
    let mut bytes_hist: Vec<u64> = vec![0; 33];
    for &s in &store_sizes {
        stores_hist.add(s);
        let b = (64 - s.max(1).leading_zeros() as usize).min(32);
        bytes_hist[b] += s;
    }
    let total_stores = stores_hist.total() as f64;
    let total_bytes: u64 = store_sizes.iter().sum();

    println!("# FIG1: record store size distribution ({TENANTS} synthetic tenants)");
    println!("# paper: majority of stores < 1 kB; most bytes in large stores");
    println!(
        "{:>16} {:>14} {:>10} {:>14} {:>10}",
        "size_bucket", "frac_stores", "cdf", "frac_bytes", "cdf"
    );
    let mut cdf_stores = 0.0;
    let mut cdf_bytes = 0.0;
    for (b, &bucket_bytes) in bytes_hist.iter().enumerate() {
        let fs = stores_hist.buckets[b] as f64 / total_stores;
        let fb = bucket_bytes as f64 / total_bytes as f64;
        if fs == 0.0 && fb == 0.0 {
            continue;
        }
        cdf_stores += fs;
        cdf_bytes += fb;
        println!(
            "{:>16} {:>14.4} {:>10.4} {:>14.4} {:>10.4}",
            format!("<{}B", 1u64 << b),
            fs,
            cdf_stores,
            fb,
            cdf_bytes
        );
    }

    let under_1k = store_sizes.iter().filter(|&&s| s < 1024).count() as f64 / total_stores;
    let mut sorted = store_sizes.clone();
    sorted.sort_unstable();
    let mut acc = 0u64;
    let mut bytes_in_top_decile = 0u64;
    let cutoff = sorted[sorted.len() * 9 / 10];
    for &s in &store_sizes {
        acc += s;
        if s >= cutoff {
            bytes_in_top_decile += s;
        }
    }
    println!();
    println!(
        "stores under 1 kB:                 {:.1}%  (paper: 'substantial majority')",
        under_1k * 100.0
    );
    println!(
        "bytes held by largest 10% of stores: {:.1}%  (paper: most bytes in large stores)",
        bytes_in_top_decile as f64 / acc as f64 * 100.0
    );
}
