//! FIG_STORAGE — disk-backed storage engine experiments.
//!
//! Three measurements over the paged engine (buffer pool + CoW B-tree +
//! WAL), with the in-memory engine as the speed-of-light baseline:
//!
//! 1. **Cold vs warm full scans.** A freshly opened engine pulls every
//!    page from disk; the second scan runs out of the buffer pool (when
//!    it fits).
//! 2. **Zipfian point-get throughput** per eviction policy (LRU, Clock,
//!    SIEVE) at several pool sizes, reporting ops/s.
//! 3. **Buffer-pool hit rate** for the same runs — the figure that
//!    separates the policies once the pool is smaller than the hot set.
//!
//! Emits `BENCH_storage.json` and prints a table.

use std::path::PathBuf;
use std::time::Instant;

use rl_bench::json::Json;
use rl_bench::rng::XorShift64;
use rl_bench::Zipf;
use rl_storage::{
    EvictionPolicy, IoCounters, MemoryEngine, PagedEngine, SharedIoCounters, StorageEngine,
};

const N_KEYS: usize = 20_000;
const VALUE_BYTES: usize = 100;
const POINT_GETS: usize = 30_000;
const ZIPF_S: f64 = 1.1;
const POOL_SIZES: [usize; 3] = [64, 256, 4096];
const VERSION: u64 = 10;

fn key(i: usize) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    let mut v = format!("value-{i:06}-").into_bytes();
    v.resize(VALUE_BYTES, b'x');
    v
}

/// Populate an engine with the benchmark dataset in committed batches.
fn load(engine: &mut dyn StorageEngine) {
    for chunk in (0..N_KEYS).collect::<Vec<_>>().chunks(500) {
        for &i in chunk {
            engine.write(key(i), Some(value(i)), VERSION);
        }
        engine.commit_batch();
    }
    engine.flush();
}

fn full_scan(engine: &mut dyn StorageEngine) -> (usize, f64) {
    let start = Instant::now();
    let rows = engine.range(b"", &[0xFF], VERSION, false).len();
    (rows, start.elapsed().as_secs_f64() * 1e3)
}

/// Zipfian point gets; returns (ops/s, buffer-pool hit rate).
fn point_gets(engine: &mut dyn StorageEngine, io: &SharedIoCounters) -> (f64, f64) {
    let zipf = Zipf::new(N_KEYS, ZIPF_S);
    let mut rng = XorShift64::seed_from_u64(0xF165_0000 ^ 0x5707_A6E5);
    // Warm-up pass so the pool reflects the steady-state working set.
    for _ in 0..POINT_GETS / 4 {
        let i = zipf.sample(&mut rng) - 1;
        assert!(engine.get(&key(i), VERSION).is_some());
    }
    let before = io.snapshot();
    let start = Instant::now();
    for _ in 0..POINT_GETS {
        let i = zipf.sample(&mut rng) - 1;
        assert!(engine.get(&key(i), VERSION).is_some());
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delta = io.snapshot().delta(&before);
    (POINT_GETS as f64 / elapsed, delta.hit_rate())
}

struct PagedRun {
    policy: &'static str,
    pool_pages: usize,
    cold_scan_ms: f64,
    warm_scan_ms: f64,
    gets_per_s: f64,
    hit_rate: f64,
    file_pages: u32,
}

fn bench_paged(dir: &PathBuf, pool_pages: usize, policy: EvictionPolicy) -> PagedRun {
    let _ = std::fs::remove_dir_all(dir);
    let io = IoCounters::new_shared();
    {
        let mut engine = PagedEngine::open(dir, pool_pages, policy, io.clone()).unwrap();
        load(&mut engine);
    } // drop checkpoints; reopening below starts with an empty (cold) pool

    let mut engine = PagedEngine::open(dir, pool_pages, policy, io.clone()).unwrap();
    let (rows, cold_scan_ms) = full_scan(&mut engine);
    assert_eq!(rows, N_KEYS);
    let (rows, warm_scan_ms) = full_scan(&mut engine);
    assert_eq!(rows, N_KEYS);
    let (gets_per_s, hit_rate) = point_gets(&mut engine, &io);
    let file_pages = {
        // `describe()` is the diagnostic surface; parse the page count out.
        let desc = engine.describe();
        desc.split("file_pages=")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    drop(engine);
    let _ = std::fs::remove_dir_all(dir);
    PagedRun {
        policy: policy.name(),
        pool_pages,
        cold_scan_ms,
        warm_scan_ms,
        gets_per_s,
        hit_rate,
        file_pages,
    }
}

fn main() {
    let base = std::env::temp_dir().join(format!("rl-bench-storage-{}", std::process::id()));

    // Baseline: the in-memory engine on the same workload.
    let mut memory = MemoryEngine::new();
    load(&mut memory);
    let io_mem = IoCounters::new_shared();
    let (_, mem_scan_ms) = full_scan(&mut memory);
    let (mem_gets_per_s, _) = point_gets(&mut memory, &io_mem);

    let mut runs: Vec<PagedRun> = Vec::new();
    for policy in EvictionPolicy::ALL {
        for pool_pages in POOL_SIZES {
            let dir = base.join(format!("{}-{pool_pages}", policy.name()));
            runs.push(bench_paged(&dir, pool_pages, policy));
        }
    }
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "# FIG_STORAGE: {N_KEYS} keys x {VALUE_BYTES} B, zipf(s={ZIPF_S}) x {POINT_GETS} gets"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>13} {:>13} {:>12} {:>10}",
        "policy",
        "pool_pages",
        "cold_scan_ms",
        "warm_scan_ms",
        "gets_per_s",
        "hit_rate",
        "file_pages"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>13} {:>13.0} {:>12} {:>10}",
        "memory",
        "-",
        "-",
        format!("{mem_scan_ms:.1}"),
        mem_gets_per_s,
        "-",
        "-"
    );
    for r in &runs {
        println!(
            "{:>8} {:>10} {:>12.1} {:>13.1} {:>13.0} {:>12.4} {:>10}",
            r.policy,
            r.pool_pages,
            r.cold_scan_ms,
            r.warm_scan_ms,
            r.gets_per_s,
            r.hit_rate,
            r.file_pages
        );
    }

    let round2 = |v: f64| (v * 100.0).round() / 100.0;
    let round4 = |v: f64| (v * 10_000.0).round() / 10_000.0;
    let paged: Vec<Json> = runs
        .iter()
        .map(|r| {
            Json::obj()
                .with("policy", r.policy)
                .with("pool_pages", r.pool_pages)
                .with("cold_scan_ms", round2(r.cold_scan_ms))
                .with("warm_scan_ms", round2(r.warm_scan_ms))
                .with("gets_per_s", r.gets_per_s.round())
                .with("hit_rate", round4(r.hit_rate))
                .with("file_pages", r.file_pages)
        })
        .collect();
    let report = Json::obj()
        .with("n_keys", N_KEYS)
        .with("value_bytes", VALUE_BYTES)
        .with("point_gets", POINT_GETS)
        .with("zipf_s", ZIPF_S)
        .with(
            "memory",
            Json::obj()
                .with("scan_ms", round2(mem_scan_ms))
                .with("gets_per_s", mem_gets_per_s.round()),
        )
        .with("paged", paged);
    std::fs::write("BENCH_storage.json", report.to_pretty()).expect("write BENCH_storage.json");
    println!("\nwrote BENCH_storage.json");
}
