//! TAB1 — Table 1: CloudKit on Cassandra vs. on the Record Layer.
//!
//! The table's rows are semantic, so we demonstrate each with a measured
//! experiment on the same substrate:
//!
//! * **Concurrency** (zone-level vs record-level): N concurrent writers
//!   update *different* records in one zone. The Cassandra-style baseline
//!   serializes them through the per-zone update counter (CAS conflicts);
//!   the Record Layer path only conflicts on true record collisions.
//! * **Transactions** (within zone vs within cluster): a Record Layer
//!   transaction atomically updates records in two different zones — the
//!   baseline cannot (its atomic unit is one zone batch).
//! * **Index consistency** (eventual vs transactional): query-after-write
//!   miss rate under the async (Solr-style) indexer vs the Record Layer's
//!   transactional indexes.

use cloudkit_sim::baseline::AsyncIndexer;
use cloudkit_sim::{CloudKit, CloudKitConfig, RecordData};
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};

const WRITERS: usize = 8;
const ROUNDS: usize = 50;

/// Each round, all `WRITERS` requests are in flight simultaneously: every
/// transaction takes its read snapshot before any of them commits — the
/// service-under-load situation §8.1 describes. Writers touch DIFFERENT
/// records; failed commits retry in later rounds.
fn baseline_zone_concurrency() -> (u64, u64) {
    let db = Database::new();
    let sub = Subspace::from_bytes(b"cas".to_vec());
    let counter_key = sub.pack(&Tuple::new().push("ctr").push("zone"));
    let mut attempts = 0u64;
    let mut commits = 0u64;
    let mut pending: Vec<usize> = (0..WRITERS * ROUNDS).collect();
    while !pending.is_empty() {
        // One round: up to WRITERS concurrent requests.
        let in_flight: Vec<usize> = pending.drain(..pending.len().min(WRITERS)).collect();
        let txs: Vec<_> = in_flight
            .iter()
            .map(|&i| {
                let tx = db.create_transaction();
                // The zone-serializing CAS read of the update counter.
                let current = tx
                    .get(&counter_key)
                    .unwrap()
                    .map(|v| i64::from_le_bytes(v[..8].try_into().unwrap()))
                    .unwrap_or(0);
                tx.set(&counter_key, &(current + 1).to_le_bytes());
                tx.set(
                    &sub.pack(&Tuple::new().push("rec").push(i as i64)),
                    b"payload",
                );
                tx.set(
                    &sub.pack(&Tuple::new().push("sync").push(current + 1).push(i as i64)),
                    b"",
                );
                (i, tx)
            })
            .collect();
        for (i, tx) in txs {
            attempts += 1;
            match tx.commit() {
                Ok(()) => commits += 1,
                Err(_) => pending.push(i), // conflict on the counter: retry
            }
        }
    }
    (commits, attempts)
}

/// The Record Layer path under the same in-flight concurrency: different
/// records in one zone; the quota COUNT index and sync VERSION index are
/// maintained with atomic/versionstamped mutations, so nothing conflicts.
fn record_layer_zone_concurrency() -> (u64, u64) {
    let db = Database::new();
    let ck = CloudKit::new(&db, &CloudKitConfig::default());
    record_layer::run(&db, |tx| {
        ck.open_store(tx, 1, "app")?;
        Ok(())
    })
    .unwrap();
    let mut attempts = 0u64;
    let mut commits = 0u64;
    let mut pending: Vec<usize> = (0..WRITERS * ROUNDS).collect();
    while !pending.is_empty() {
        let in_flight: Vec<usize> = pending.drain(..pending.len().min(WRITERS)).collect();
        let txs: Vec<_> = in_flight
            .iter()
            .map(|&i| {
                let tx = db.create_transaction();
                ck.save(&tx, 1, "app", &RecordData::new("zone", format!("r{i}")))
                    .unwrap();
                (i, tx)
            })
            .collect();
        for (i, tx) in txs {
            attempts += 1;
            match tx.commit() {
                Ok(()) => commits += 1,
                Err(_) => pending.push(i),
            }
        }
    }
    (commits, attempts)
}

fn cross_zone_transaction() -> bool {
    // Record Layer: one transaction updating two zones commits atomically.
    let db = Database::new();
    let ck = CloudKit::new(&db, &CloudKitConfig::default());
    record_layer::run(&db, |tx| {
        ck.save(tx, 1, "app", &RecordData::new("zoneA", "a"))?;
        ck.save(tx, 1, "app", &RecordData::new("zoneB", "b"))?;
        Ok(())
    })
    .is_ok()
}

fn index_consistency_miss_rates() -> (f64, f64) {
    // Async (Solr-style) baseline: indexer lags by a batch.
    let idx = AsyncIndexer::new();
    let mut misses = 0;
    const N: usize = 200;
    for i in 0..N {
        idx.enqueue_put("tag", &format!("rec{i}"));
        // Query immediately after the write (before the background job).
        if !idx.query("tag").iter().any(|r| r == &format!("rec{i}")) {
            misses += 1;
        }
        // The background indexer applies the backlog every 10 writes.
        if i % 10 == 9 {
            idx.apply_pending(100);
        }
    }
    let async_miss = misses as f64 / N as f64;

    // Record Layer: index maintained in the same transaction — query in
    // the next transaction always sees the write.
    let db = Database::new();
    let ck = CloudKit::new(
        &db,
        &CloudKitConfig {
            indexed_fields: vec!["field0".into()],
            ..Default::default()
        },
    );
    let mut rl_misses = 0;
    for i in 0..N {
        record_layer::run(&db, |tx| {
            ck.save(
                tx,
                1,
                "app",
                &RecordData::new("z", format!("rec{i}")).string_field("field0", "tag"),
            )?;
            Ok(())
        })
        .unwrap();
        let found = record_layer::run(&db, |tx| {
            let store = ck.open_store(tx, 1, "app")?;
            let planner = record_layer::plan::RecordQueryPlanner::new(ck.metadata());
            let query = record_layer::query::RecordQuery::new()
                .record_type(cloudkit_sim::service::RECORD_TYPE)
                .filter(record_layer::query::QueryComponent::and(vec![
                    record_layer::query::QueryComponent::field(
                        "zone",
                        record_layer::query::Comparison::Equals("z".into()),
                    ),
                    record_layer::query::QueryComponent::field(
                        "field0",
                        record_layer::query::Comparison::Equals("tag".into()),
                    ),
                ]));
            let results = planner.plan(&query)?.execute_all(&store)?;
            Ok(results
                .iter()
                .any(|r| r.primary_key.get(1).and_then(|e| e.as_str()) == Some(&format!("rec{i}"))))
        })
        .unwrap();
        if !found {
            rl_misses += 1;
        }
    }
    (async_miss, rl_misses as f64 / N as f64)
}

fn main() {
    println!("# TAB1: CloudKit on Cassandra vs. the Record Layer");
    println!();

    let (b_commits, b_attempts) = baseline_zone_concurrency();
    let (r_commits, r_attempts) = record_layer_zone_concurrency();
    let b_conflict_rate = (b_attempts - b_commits) as f64 / b_attempts as f64;
    let r_conflict_rate = (r_attempts - r_commits) as f64 / r_attempts as f64;
    println!("## Concurrency: {WRITERS} in-flight writers x {ROUNDS} rounds, DIFFERENT records, ONE zone");
    println!(
        "{:<34} {:>10} {:>10} {:>14}",
        "system", "commits", "attempts", "conflict rate"
    );
    println!(
        "{:<34} {:>10} {:>10} {:>13.1}%",
        "Cassandra-style (zone CAS)",
        b_commits,
        b_attempts,
        b_conflict_rate * 100.0
    );
    println!(
        "{:<34} {:>10} {:>10} {:>13.1}%",
        "Record Layer (record-level OCC)",
        r_commits,
        r_attempts,
        r_conflict_rate * 100.0
    );
    println!("# paper: 'no concurrency within a zone' vs 'record level' -> baseline must retry, RL should not");
    println!();

    println!("## Transactions: atomic update across two zones in one transaction");
    println!("Cassandra-style: impossible (atomic unit = single-zone batch; partition-bound)");
    println!(
        "Record Layer:    {}",
        if cross_zone_transaction() {
            "committed atomically (scope = cluster)"
        } else {
            "FAILED"
        }
    );
    println!();

    let (async_miss, rl_miss) = index_consistency_miss_rates();
    println!("## Index consistency: query-after-write miss rate");
    println!("{:<34} {:>12}", "system", "miss rate");
    println!(
        "{:<34} {:>11.1}%",
        "Solr-style (async indexer)",
        async_miss * 100.0
    );
    println!(
        "{:<34} {:>11.1}%",
        "Record Layer (transactional)",
        rl_miss * 100.0
    );
    println!("# paper: eventual vs transactional index consistency");
    println!();

    println!("## Summary (Table 1)");
    println!("{:<22} {:<26} {:<26}", "", "Cassandra", "Record Layer");
    println!(
        "{:<22} {:<26} {:<26}",
        "Transactions", "Within Zone", "Within Cluster"
    );
    println!(
        "{:<22} {:<26} {:<26}",
        "Concurrency",
        format!("Zone level ({:.0}% conflicts)", b_conflict_rate * 100.0),
        format!("Record level ({:.0}% conflicts)", r_conflict_rate * 100.0)
    );
    println!(
        "{:<22} {:<26} {:<26}",
        "Zone size limit", "Partition size (GBs)", "Cluster size"
    );
    println!(
        "{:<22} {:<26} {:<26}",
        "Index consistency",
        format!("Eventual ({:.0}% stale)", async_miss * 100.0),
        format!("Transactional ({:.0}% stale)", rl_miss * 100.0)
    );
    println!(
        "{:<22} {:<26} {:<26}",
        "Indexes stored in", "Solr", "FoundationDB"
    );

    assert!(b_conflict_rate > 0.1, "baseline should conflict heavily");
    assert!(
        r_conflict_rate < 0.05,
        "record layer should be near conflict-free"
    );
    assert!(async_miss > 0.5 && rl_miss == 0.0);
}
