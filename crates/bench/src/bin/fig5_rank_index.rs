//! FIG5 — Figure 5: the RANK index skip list.
//!
//! Part 1 replays the figure's worked example: six elements a–f, where the
//! rank of `e` is 4, computed by the level-descending walk.
//!
//! Part 2 measures the scaling claim behind the structure: finding the
//! k-th element via the skip list reads O(log n) keys, while the naïve
//! alternative — linearly scanning the index until the k-th entry — reads
//! O(k). We report keys read per operation as the store grows, showing
//! the crossover the RANK index exists for (leaderboards, scrollbars).

use record_layer::store::{RecordStore, TupleRange};
use rl_bench::rng::Rng;
use rl_bench::{item_metadata, rng};
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};

fn main() {
    // ---- Part 1: the six-element worked example -------------------------
    let db = Database::new();
    let tx = db.create_transaction();
    let set =
        record_layer::index::rank::RankedSet::new(&tx, Subspace::from_bytes(b"fig5".to_vec()), 3);
    for s in ["a", "b", "c", "d", "e", "f"] {
        set.insert(&Tuple::from((s,))).unwrap();
    }
    println!("# FIG5 part 1: worked example (6 elements a..f)");
    for s in ["a", "b", "c", "d", "e", "f"] {
        let r = set.rank(&Tuple::from((s,))).unwrap().unwrap();
        println!("rank({s}) = {r}");
    }
    assert_eq!(
        set.rank(&Tuple::from(("e",))).unwrap(),
        Some(4),
        "paper: rank of e is 4"
    );
    println!("paper check: rank(e) == 4 ✔");
    println!();

    // ---- Part 2: rank/select vs linear scan ------------------------------
    println!("# FIG5 part 2: keys read to find the k-th element (k = n/2)");
    println!(
        "{:>8} {:>18} {:>18} {:>10}",
        "n", "skiplist_keys", "linear_scan_keys", "speedup"
    );
    for n in [100i64, 400, 1600, 6400] {
        let db = Database::new();
        let metadata = item_metadata(false, true);
        let sub = Subspace::from_bytes(b"lb".to_vec());
        let mut r = rng(n as u64);
        // Populate a leaderboard with unique scores.
        let mut scores: Vec<i64> = (0..n).collect();
        for i in (1..scores.len()).rev() {
            scores.swap(i, r.gen_range(0..=i));
        }
        for (i, score) in scores.iter().enumerate() {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                let mut msg = store.new_record("Item")?;
                msg.set("id", i as i64).unwrap();
                msg.set("score", *score * 100).unwrap();
                msg.set("group", "g").unwrap();
                store.save_record(msg)?;
                Ok(())
            })
            .unwrap();
        }
        let k = n / 2;
        let metrics = db.metrics();

        let before = metrics.snapshot();
        let via_rank = record_layer::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
            store.entry_at_rank("score_rank", k)
        })
        .unwrap()
        .unwrap();
        let skip_keys = metrics.snapshot().delta(&before).keys_read;

        let before = metrics.snapshot();
        let via_scan = record_layer::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
            let entries = store.scan_rank_entries("score_rank", &TupleRange::all())?;
            Ok(entries.into_iter().nth(k as usize))
        })
        .unwrap()
        .unwrap();
        let scan_keys = metrics.snapshot().delta(&before).keys_read;

        assert_eq!(
            via_rank, via_scan,
            "both strategies must agree on the k-th entry"
        );
        println!(
            "{:>8} {:>18} {:>18} {:>9.1}x",
            n,
            skip_keys,
            scan_keys,
            scan_keys as f64 / skip_keys as f64
        );
    }
    println!();
    println!("# shape check: skip-list key reads grow ~logarithmically; the linear");
    println!("# scan grows with k, so the gap widens with store size (paper: RANK");
    println!("# exists to avoid 'linearly scanning until the k-th result').");
}
