//! FIG_PLANNER — cost-based planner experiments.
//!
//! Two comparisons seeded by the planner rewrite:
//!
//! 1. **Covered vs fetching index scan.** A query whose required fields
//!    are covered by the index key plus the primary key synthesizes
//!    records straight from index entries (zero record-subspace reads);
//!    the same filter without a projection performs the primary fetch per
//!    entry.
//! 2. **Buffered vs streaming intersection.** The pre-rewrite executor
//!    buffered all-but-one branch of an intersection into a set (and
//!    could not resume across scan limits); the streaming executor
//!    merge-joins branches ordered by primary key.
//!
//! Emits `BENCH_planner.json` with latency percentiles and prints the
//! cost-annotated plans (`explain_with` against live statistics).

use std::collections::BTreeSet;
use std::time::Instant;

use record_layer::cursor::{Continuation, CursorResult, ExecuteProperties, RecordCursor};
use record_layer::expr::KeyExpression;
use record_layer::metadata::{Index, RecordMetaData, RecordMetaDataBuilder};
use record_layer::plan::{
    BoxedCursorExt, CostModel, RecordQueryPlan, RecordQueryPlanner, ScanBounds,
};
use record_layer::query::{Comparison, QueryComponent, RecordQuery};
use record_layer::store::{RecordStore, TupleRange};
use rl_bench::json::Json;
use rl_bench::{experiment_pool, percentile};
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};

/// Record count (`RL_BENCH_N`) and iteration count (`RL_BENCH_ITERS`)
/// default to full experiment sizes; CI smoke-runs shrink them.
fn n_records() -> i64 {
    env_or("RL_BENCH_N", 4000)
}

fn iters() -> usize {
    env_or("RL_BENCH_ITERS", 40) as usize
}

fn env_or(name: &str, default: i64) -> i64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn metadata() -> RecordMetaData {
    RecordMetaDataBuilder::new(experiment_pool())
        .record_type("Item", KeyExpression::field("id"))
        .index(
            "Item",
            Index::value("by_group", KeyExpression::field("group")),
        )
        .index(
            "Item",
            Index::value("by_score", KeyExpression::field("score")),
        )
        .index(
            "Item",
            Index::value(
                "by_group_score",
                KeyExpression::concat_fields("group", "score"),
            ),
        )
        .store_record_versions(false)
        .build()
        .unwrap()
}

fn seed(db: &Database, md: &RecordMetaData, sub: &Subspace) {
    for chunk in (0..n_records()).collect::<Vec<_>>().chunks(200) {
        record_layer::run(db, |tx| {
            let store = RecordStore::open_or_create(tx, sub, md)?;
            for &i in chunk {
                let mut item = store.new_record("Item")?;
                item.set("id", i).unwrap();
                item.set("group", format!("g{}", i % 20)).unwrap();
                item.set("score", i % 100).unwrap();
                item.set("body", format!("payload body {i}")).unwrap();
                store.save_record(item)?;
            }
            Ok(())
        })
        .unwrap();
    }
}

/// Run one plan to completion in a fresh transaction, returning (rows, µs).
fn time_plan(
    db: &Database,
    md: &RecordMetaData,
    sub: &Subspace,
    plan: &RecordQueryPlan,
) -> (usize, f64) {
    let start = Instant::now();
    let rows = record_layer::run(db, |tx| {
        let store = RecordStore::open_or_create(tx, sub, md)?;
        Ok(plan.execute_all(&store)?.len())
    })
    .unwrap();
    (rows, start.elapsed().as_secs_f64() * 1e6)
}

/// The pre-rewrite intersection strategy, reproduced for comparison:
/// buffer every branch but the last into a primary-key set, then stream
/// the last branch filtered by membership.
fn time_buffered_intersection(
    db: &Database,
    md: &RecordMetaData,
    sub: &Subspace,
    children: &[RecordQueryPlan],
) -> (usize, f64) {
    let start = Instant::now();
    let rows = record_layer::run(db, |tx| {
        let store = RecordStore::open_or_create(tx, sub, md)?;
        let props = ExecuteProperties::new();
        let mut pk_sets: Vec<BTreeSet<Vec<u8>>> = Vec::new();
        for child in &children[..children.len() - 1] {
            let mut cursor = child.execute(&store, &Continuation::Start, &props)?;
            let (records, _, _) = cursor.collect_remaining_boxed()?;
            pk_sets.push(records.iter().map(|r| r.primary_key.pack()).collect());
        }
        let mut cursor = children
            .last()
            .unwrap()
            .execute(&store, &Continuation::Start, &props)?;
        let mut rows = 0usize;
        while let CursorResult::Next { value, .. } = cursor.next()? {
            let pk = value.primary_key.pack();
            if pk_sets.iter().all(|s| s.contains(&pk)) {
                rows += 1;
            }
        }
        Ok(rows)
    })
    .unwrap();
    (rows, start.elapsed().as_secs_f64() * 1e6)
}

fn stats(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (percentile(&samples, 0.5), percentile(&samples, 0.95))
}

fn main() {
    let db = Database::new();
    let md = metadata();
    let sub = Subspace::from_bytes(b"figP".to_vec());
    seed(&db, &md, &sub);

    let planner = RecordQueryPlanner::new(&md);
    let covered_query = RecordQuery::new()
        .record_type("Item")
        .filter(QueryComponent::field(
            "group",
            Comparison::Equals("g7".into()),
        ))
        .require_fields(&["id", "group", "score"]);
    let covered_plan = planner.plan(&covered_query).unwrap();
    assert!(
        covered_plan.describe().starts_with("Covering("),
        "expected a covering plan, got {}",
        covered_plan.describe()
    );
    let fetching_query = RecordQuery::new()
        .record_type("Item")
        .filter(QueryComponent::field(
            "group",
            Comparison::Equals("g7".into()),
        ));
    let fetching_plan = planner.plan(&fetching_query).unwrap();
    assert!(
        !fetching_plan.describe().starts_with("Covering("),
        "unexpected covering plan {}",
        fetching_plan.describe()
    );

    // The intersection is an executor benchmark, so build the IR directly
    // (the cost-based planner would rightly pick by_group_score here).
    let types: BTreeSet<String> = ["Item".to_string()].into_iter().collect();
    let eq_child =
        |index_name: &str, value: rl_fdb::tuple::TupleElement| RecordQueryPlan::IndexScan {
            index_name: index_name.to_string(),
            bounds: ScanBounds::Range(TupleRange::prefix(Tuple::new().push(value))),
            reverse: false,
            record_types: Some(types.clone()),
            residual: None,
        };
    // group g7 ∩ score 47: ids ≡ 47 (mod 100), and 47 % 20 == 7.
    let children = vec![
        eq_child("by_group", "g7".into()),
        eq_child("by_score", 47i64.into()),
    ];
    let streaming_plan = RecordQueryPlan::Intersection {
        children: children.clone(),
    };

    record_layer::run(&db, |tx| {
        let store = RecordStore::open_or_create(tx, &sub, &md)?;
        let model = CostModel::with_statistics(&store);
        println!("# cost-annotated plans (live statistics)");
        println!("covered:\n{}", covered_plan.explain_with(&model));
        println!("fetching:\n{}", fetching_plan.explain_with(&model));
        println!("intersection:\n{}", streaming_plan.explain_with(&model));
        Ok(())
    })
    .unwrap();

    let mut covered_us = Vec::new();
    let mut fetching_us = Vec::new();
    let mut streaming_us = Vec::new();
    let mut buffered_us = Vec::new();
    let mut covered_rows = 0;
    let mut fetching_rows = 0;
    let mut streaming_rows = 0;
    let mut buffered_rows = 0;
    for _ in 0..iters() {
        let (r, us) = time_plan(&db, &md, &sub, &covered_plan);
        covered_rows = r;
        covered_us.push(us);
        let (r, us) = time_plan(&db, &md, &sub, &fetching_plan);
        fetching_rows = r;
        fetching_us.push(us);
        let (r, us) = time_plan(&db, &md, &sub, &streaming_plan);
        streaming_rows = r;
        streaming_us.push(us);
        let (r, us) = time_buffered_intersection(&db, &md, &sub, &children);
        buffered_rows = r;
        buffered_us.push(us);
    }
    assert_eq!(
        covered_rows, fetching_rows,
        "projection must not change rows"
    );
    assert_eq!(
        streaming_rows, buffered_rows,
        "streaming and buffered intersections must agree"
    );

    let (cov_p50, cov_p95) = stats(covered_us);
    let (fet_p50, fet_p95) = stats(fetching_us);
    let (str_p50, str_p95) = stats(streaming_us);
    let (buf_p50, buf_p95) = stats(buffered_us);

    println!(
        "# FIG_PLANNER: n={} records, {} iterations",
        n_records(),
        iters()
    );
    println!(
        "{:>28} {:>8} {:>12} {:>12}",
        "experiment", "rows", "p50_us", "p95_us"
    );
    for (name, rows, p50, p95) in [
        ("covered_index_scan", covered_rows, cov_p50, cov_p95),
        ("fetching_index_scan", fetching_rows, fet_p50, fet_p95),
        ("streaming_intersection", streaming_rows, str_p50, str_p95),
        ("buffered_intersection", buffered_rows, buf_p50, buf_p95),
    ] {
        println!("{name:>28} {rows:>8} {p50:>12.1} {p95:>12.1}");
    }

    let experiment = |rows: usize, p50: f64, p95: f64| {
        Json::obj()
            .with("rows", rows)
            .with("p50_us", (p50 * 10.0).round() / 10.0)
            .with("p95_us", (p95 * 10.0).round() / 10.0)
    };
    let report = Json::obj()
        .with("n_records", n_records())
        .with("iterations", iters())
        .with(
            "covered_index_scan",
            experiment(covered_rows, cov_p50, cov_p95),
        )
        .with(
            "fetching_index_scan",
            experiment(fetching_rows, fet_p50, fet_p95),
        )
        .with(
            "streaming_intersection",
            experiment(streaming_rows, str_p50, str_p95),
        )
        .with(
            "buffered_intersection",
            experiment(buffered_rows, buf_p50, buf_p95),
        );
    std::fs::write("BENCH_planner.json", report.to_pretty()).expect("write BENCH_planner.json");
    println!("\nwrote BENCH_planner.json");
}
