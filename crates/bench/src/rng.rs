//! A small deterministic PRNG so the experiment harness (and the root
//! crate's randomized tests) need no external `rand` dependency — the
//! tier-1 build must succeed offline with an empty cargo registry.
//!
//! The API deliberately mirrors the subset of `rand` the repository uses
//! (`gen_range` over `Range`/`RangeInclusive`, a `Distribution` trait), so
//! call sites read the same as they would against the real crate.

use std::ops::{Range, RangeInclusive};

/// Uniform random source. Implemented by [`XorShift64`]; generators only
/// need to provide `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `u8`.
    fn gen_u8(&mut self) -> u8
    where
        Self: Sized,
    {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Range types `gen_range` accepts, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply-shift.
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// A sampling distribution over `T`, mirroring `rand::distributions::Distribution`.
pub trait Distribution<T> {
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// xorshift64* — 64 bits of state, passes SmallCrush; plenty for workload
/// generation and property tests. Seeded through SplitMix64 so that
/// consecutive small seeds give uncorrelated streams.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }
}

impl Rng for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift64::seed_from_u64(7);
        let mut b = XorShift64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift64::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let v = r.gen_range(0..=5usize);
            assert!(v <= 5);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let n = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = XorShift64::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
