//! A small deterministic PRNG so the experiment harness (and the root
//! crate's randomized tests) need no external `rand` dependency — the
//! tier-1 build must succeed offline with an empty cargo registry.
//!
//! The API deliberately mirrors the subset of `rand` the repository uses
//! (`gen_range` over `Range`/`RangeInclusive`, a `Distribution` trait), so
//! call sites read the same as they would against the real crate.

use std::ops::{Range, RangeInclusive};

/// Uniform random source. Implemented by [`XorShift64`]; generators only
/// need to provide `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `u8`.
    fn gen_u8(&mut self) -> u8
    where
        Self: Sized,
    {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Range types `gen_range` accepts, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply-shift.
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// A sampling distribution over `T`, mirroring `rand::distributions::Distribution`.
pub trait Distribution<T> {
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// xorshift64* — 64 bits of state, passes SmallCrush; plenty for workload
/// generation and property tests. Seeded through SplitMix64 so that
/// consecutive small seeds give uncorrelated streams.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }
}

impl Rng for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Deterministically derive the seed for worker `stream` from a base
/// seed: one SplitMix64 finalization over `base + (stream+1)·φ64`. Each
/// worker thread of a multi-threaded run seeds its own [`XorShift64`]
/// from `derive_seed(scenario_seed, worker_index)`, so runs are
/// reproducible regardless of thread scheduling, and consecutive stream
/// indexes give uncorrelated generators.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf-distributed ranks in `1..=n` with exponent `s > 0`, sampled by
/// rejection-inversion (Hörmann & Derflinger, "Rejection-inversion to
/// generate variates from monotone discrete distributions", 1996 — the
/// same scheme as Apache Commons' `RejectionInversionZipfSampler`).
///
/// ## Accuracy bound
///
/// Unlike the previous implementation (a precomputed, renormalized CDF
/// whose per-rank probabilities carried O(n·ε) accumulated float error
/// and O(n) setup cost), rejection-inversion samples the *exact* Zipf
/// distribution: the envelope is inverted analytically and wrong
/// candidates are rejected, so the only deviation from the true
/// probability mass function is f64 rounding in `exp`/`ln` — relative
/// per-rank error is a few ULPs (< 1e-12), independent of `n`.
/// Construction is O(1) and each sample draws ~1.1 uniforms on average.
///
/// Valid for any `s > 0` including `s = 1` (the `expm1`/`ln_1p` helpers
/// keep `H` and its inverse stable as `1 - s → 0`).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// `H(1.5) - h(1)`: the left edge of the envelope's support.
    h_x1: f64,
    /// `H(n + 0.5)`: the right edge of the envelope's support.
    h_n: f64,
    /// Acceptance shortcut: candidates within this distance of the
    /// inverted point are accepted without evaluating `H`.
    accept_cut: f64,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let accept_cut = if n >= 2 {
            2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s)
        } else {
            // n == 1: every sample is rank 1; the cut is irrelevant.
            1.0
        };
        Zipf {
            n: nf,
            s,
            h_x1,
            h_n,
            accept_cut,
        }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        loop {
            // u uniform in (h_x1, h_n]: gen_f64() ∈ [0,1) maps 0 → h_n.
            let u = self.h_n + rng.gen_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            // Accept k when it is close enough to x that the envelope
            // cannot overshoot, or when u lands under h(k) directly.
            if k - x <= self.accept_cut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as usize;
            }
        }
    }
}

/// `H(x) = ∫ x^-s dx = (x^(1-s) - 1) / (1 - s)`, stable for `s ≈ 1`
/// (where it degenerates to `ln x`).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper1((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`]: `H⁻¹(y) = (1 + y(1-s))^(1/(1-s))`.
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    let mut t = y * (1.0 - s);
    if t < -1.0 {
        // Numerical round-off can push t below the pole; clamp so the
        // result stays within the distribution's support.
        t = -1.0;
    }
    (helper2(t) * y).exp()
}

/// `(e^x - 1) / x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + x * 0.25))
    }
}

/// `ln(1 + x) / x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * 0.5 * (1.0 - 2.0 * x / 3.0 * (1.0 - 0.75 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift64::seed_from_u64(7);
        let mut b = XorShift64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = XorShift64::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let v = r.gen_range(0..=5usize);
            assert!(v <= 5);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let n = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a = derive_seed(42, 0);
        assert_eq!(a, derive_seed(42, 0), "derivation is deterministic");
        let mut seen = std::collections::BTreeSet::new();
        for stream in 0..64 {
            assert!(seen.insert(derive_seed(42, stream)), "stream collision");
        }
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        // Streams must be uncorrelated, not just distinct: the generators
        // they seed should diverge immediately.
        let mut r0 = XorShift64::seed_from_u64(derive_seed(7, 0));
        let mut r1 = XorShift64::seed_from_u64(derive_seed(7, 1));
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    /// Exact Zipf pmf: `p(k) = k^-s / Σ_{j=1..n} j^-s`.
    fn zipf_pmf(n: usize, s: f64, k: usize) -> f64 {
        let total: f64 = (1..=n).map(|j| (j as f64).powf(-s)).sum();
        (k as f64).powf(-s) / total
    }

    #[test]
    fn zipf_matches_exact_pmf_across_exponents() {
        // Covers s < 1, the s = 1 special case, and s > 1. With 200k
        // samples the binomial standard error of p(1) is well under 1%
        // relative, so a 5% tolerance is a real distribution check.
        const N: usize = 1000;
        const SAMPLES: usize = 200_000;
        for (seed, s) in [(11u64, 0.9f64), (12, 1.0), (13, 1.2)] {
            let z = Zipf::new(N, s);
            let mut r = XorShift64::seed_from_u64(seed);
            let mut counts = vec![0u64; N + 1];
            for _ in 0..SAMPLES {
                let k = z.sample(&mut r);
                assert!((1..=N).contains(&k), "rank {k} out of range");
                counts[k] += 1;
            }
            for k in [1usize, 2, 5, 10] {
                let expected = zipf_pmf(N, s, k) * SAMPLES as f64;
                let got = counts[k] as f64;
                assert!(
                    (got - expected).abs() / expected < 0.05,
                    "s={s} rank {k}: got {got}, expected {expected:.0}"
                );
            }
        }
    }

    #[test]
    fn zipf_degenerate_and_deterministic() {
        let z = Zipf::new(1, 1.1);
        let mut r = XorShift64::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 1);
        }
        let z = Zipf::new(500, 1.1);
        let mut a = XorShift64::seed_from_u64(9);
        let mut b = XorShift64::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = XorShift64::seed_from_u64(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
