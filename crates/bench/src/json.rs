//! A minimal JSON value tree shared by the bench bins and the workload
//! harness (zero dependencies, like everything tier-1).
//!
//! Before this module every experiment binary hand-concatenated its
//! `BENCH_*.json` with `format!` — seven slightly different emitters, no
//! way to read one back. This provides the one implementation all of them
//! use: build a [`Json`] tree, pretty-print it ([`Json::to_pretty`]), and
//! parse it back ([`Json::parse`]) for the harness's `--compare` mode and
//! the round-trip tests.
//!
//! Objects preserve insertion order so emitted files are schema-stable
//! and diffable across runs.

use rl_obs::HistogramSnapshot;

/// A JSON value. Numbers are `f64` (every quantity the bins emit fits);
/// integral values print without a fractional part.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`] / [`Json::with`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert or replace `key` (objects only; panics otherwise — the
    /// builders are all static call sites).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key, value)),
        }
    }

    /// Chained [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `get` through a dotted path, e.g. `"totals.throughput_ops_s"`.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Object keys, in insertion order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// A histogram snapshot as the canonical
    /// `{count, sum, min, max, p50, p95, p99}` object every bench file
    /// uses for distributions.
    pub fn hist(snapshot: &HistogramSnapshot) -> Json {
        Json::obj()
            .with("count", snapshot.count())
            .with("sum", snapshot.sum())
            .with("min", snapshot.min())
            .with("max", snapshot.max())
            .with("p50", snapshot.quantile(0.50))
            .with("p95", snapshot.quantile(0.95))
            .with("p99", snapshot.quantile(0.99))
    }

    // ------------------------------------------------------------ writing

    /// Pretty-print with two-space indentation and a trailing newline
    /// (the `BENCH_*.json` house style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars inline; arrays of containers nest.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if scalar {
                        if i > 0 {
                            out.push(' ');
                        }
                    } else {
                        newline(out, indent + 1);
                    }
                    item.write(out, indent + 1);
                }
                if !scalar {
                    newline(out, indent);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    // ------------------------------------------------------------ parsing

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Num(v as f64)
            }
        }
    )*};
}

impl_from_num!(f64, f32, u64, i64, u32, i32, usize);

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Basic-plane only: the emitters never write
                            // surrogate pairs (non-ASCII passes through raw).
                            out.push(char::from_u32(code).ok_or("invalid \\u codepoint")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let v = Json::obj()
            .with("name", "bench")
            .with("count", 3u64)
            .with("nested", Json::obj().with("p50", 1.5))
            .with("list", vec![Json::from(1u64), Json::from(2u64)]);
        assert_eq!(v.get("name").unwrap().as_str(), Some("bench"));
        assert_eq!(v.get_path("nested.p50").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.keys(), vec!["name", "count", "nested", "list"]);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = Json::obj().with("a", 1u64).with("b", 2u64);
        v.set("a", 9u64);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(9.0));
        assert_eq!(v.keys(), vec!["a", "b"], "replacement keeps order");
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut out = String::new();
        write_num(&mut out, 42.0);
        assert_eq!(out, "42");
        out.clear();
        write_num(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn round_trips_through_text() {
        let v = Json::obj()
            .with("str", "a \"quoted\"\nline\tend\\")
            .with("int", 123u64)
            .with("neg", -7i64)
            .with("float", 0.125)
            .with("big", 1.5e300)
            .with("yes", true)
            .with("no", false)
            .with("nothing", Json::Null)
            .with("empty_obj", Json::obj())
            .with("empty_arr", Json::Arr(vec![]))
            .with(
                "mixed",
                vec![
                    Json::from(1u64),
                    Json::obj().with("k", "v"),
                    Json::Arr(vec![Json::Bool(true)]),
                ],
            );
        let text = v.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v, "parse(to_pretty(v)) == v\n{text}");
    }

    #[test]
    fn parses_foreign_json() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5e1 , "xA" ] , "b" : null } "#).unwrap();
        assert_eq!(
            v.get_path("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("xA")
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "tru", ""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hist_shape() {
        let h = rl_obs::Histogram::new();
        h.record(10);
        h.record(20);
        let j = Json::hist(&h.snapshot());
        assert_eq!(j.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            j.keys(),
            vec!["count", "sum", "min", "max", "p50", "p95", "p99"]
        );
    }
}
