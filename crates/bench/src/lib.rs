//! Shared workload generators and helpers for the experiment harness.
//!
//! Each table/figure of the paper has a dedicated binary under `src/bin`
//! (see DESIGN.md §3 for the experiment index); the Criterion benches under
//! `benches/` cover the shape-level performance claims.

pub mod json;
pub mod rng;

use crate::rng::{Distribution, Rng, XorShift64};

pub use crate::rng::{derive_seed, Zipf};

use record_layer::expr::KeyExpression;
use record_layer::metadata::{Index, RecordMetaData, RecordMetaDataBuilder};
use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

/// Deterministic RNG for reproducible experiments.
pub fn rng(seed: u64) -> XorShift64 {
    XorShift64::seed_from_u64(seed)
}

/// A log-normal sampler via Box–Muller (avoids extra dependencies).
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// A synthetic vocabulary with word lengths matched to the paper's Table 2
/// corpus statistics (mean token length ≈ 7.8 characters).
pub fn vocabulary(rng: &mut XorShift64, size: usize) -> Vec<String> {
    const SYLLABLES: &[&str] = &[
        "wha", "le", "ish", "ma", "el", "sea", "har", "poon", "ship", "cap", "tain", "oce", "an",
        "deep", "wave", "sail", "mast", "crew", "hunt", "tide",
    ];
    (0..size)
        .map(|i| {
            let syllables = 2 + (rng.gen_range(0..3));
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
            }
            // Suffix with the index so every vocabulary entry is distinct.
            w.push_str(&format!("{i:x}"));
            w
        })
        .collect()
}

/// Generate a document of roughly `target_bytes` with Zipfian token
/// frequencies over `vocab`.
pub fn document(
    rng: &mut XorShift64,
    vocab: &[String],
    zipf: &Zipf,
    target_bytes: usize,
) -> String {
    let mut doc = String::with_capacity(target_bytes + 16);
    while doc.len() < target_bytes {
        let word = &vocab[zipf.sample(rng) - 1];
        doc.push_str(word);
        doc.push(' ');
    }
    doc
}

/// The descriptor pool used by most experiments: a CloudKit-ish record
/// with an id, a couple of indexed scalars, and a text body.
pub fn experiment_pool() -> DescriptorPool {
    let mut pool = DescriptorPool::new();
    pool.add_message(
        MessageDescriptor::new(
            "Item",
            vec![
                FieldDescriptor::optional("id", 1, FieldType::Int64),
                FieldDescriptor::optional("group", 2, FieldType::String),
                FieldDescriptor::optional("score", 3, FieldType::Int64),
                FieldDescriptor::optional("body", 4, FieldType::String),
                FieldDescriptor::optional("payload", 5, FieldType::Bytes),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    pool
}

/// Metadata with a configurable number of VALUE indexes (for the index
/// maintenance cost sweeps).
pub fn metadata_with_value_indexes(n: usize) -> RecordMetaData {
    let mut pool = DescriptorPool::new();
    let mut fields = vec![FieldDescriptor::optional("id", 1, FieldType::Int64)];
    for i in 0..n.max(1) {
        fields.push(FieldDescriptor::optional(
            format!("f{i}"),
            2 + i as u32,
            FieldType::Int64,
        ));
    }
    pool.add_message(MessageDescriptor::new("Item", fields).unwrap())
        .unwrap();
    let mut builder =
        RecordMetaDataBuilder::new(pool).record_type("Item", KeyExpression::field("id"));
    for i in 0..n {
        builder = builder.index(
            "Item",
            Index::value(format!("by_f{i}"), KeyExpression::field(format!("f{i}"))),
        );
    }
    builder.build().unwrap()
}

/// Metadata for the Item record with group/score/body indexes.
pub fn item_metadata(with_text: bool, with_rank: bool) -> RecordMetaData {
    let mut builder = RecordMetaDataBuilder::new(experiment_pool())
        .record_type("Item", KeyExpression::field("id"))
        .index(
            "Item",
            Index::value("by_group", KeyExpression::field("group")),
        )
        .index(
            "Item",
            Index::value(
                "by_group_score",
                KeyExpression::concat_fields("group", "score"),
            ),
        )
        .index(
            "Item",
            Index::sum(
                "score_sum",
                KeyExpression::field("group"),
                KeyExpression::field("score"),
            ),
        )
        .index("Item", Index::count("item_count", KeyExpression::Empty));
    if with_text {
        builder = builder.index(
            "Item",
            Index::text("body_text", KeyExpression::field("body")),
        );
    }
    if with_rank {
        builder = builder.index(
            "Item",
            Index::rank("score_rank", KeyExpression::field("score")),
        );
    }
    builder.build().unwrap()
}

/// Simple fixed-bucket log2 histogram.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    pub buckets: Vec<u64>,
}

impl Log2Histogram {
    pub fn new(max_pow: usize) -> Self {
        Log2Histogram {
            buckets: vec![0; max_pow + 1],
        }
    }

    pub fn add(&mut self, value: u64) {
        let b = (64 - value.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[b] += 1;
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Percentile of a sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let mut r = rng(1);
        let dist = LogNormal {
            mu: 5.5,
            sigma: 2.0,
        };
        let samples: Vec<f64> = (0..5000).map(|_| dist.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > 2.0 * median,
            "heavy tail: mean {mean} vs median {median}"
        );
    }

    #[test]
    fn zipf_favours_low_ranks() {
        let mut r = rng(2);
        let z = Zipf::new(1000, 1.1);
        let samples: Vec<usize> = (0..5000).map(|_| z.sample(&mut r)).collect();
        let low = samples.iter().filter(|&&s| s <= 10).count();
        let high = samples.iter().filter(|&&s| s > 500).count();
        assert!(low > high * 2, "low {low} vs high {high}");
        assert!(samples.iter().all(|&s| (1..=1000).contains(&s)));
    }

    #[test]
    fn documents_hit_target_size() {
        let mut r = rng(3);
        let vocab = vocabulary(&mut r, 500);
        let zipf = Zipf::new(500, 1.05);
        let doc = document(&mut r, &vocab, &zipf, 5000);
        assert!(doc.len() >= 5000 && doc.len() < 5200);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Log2Histogram::new(12);
        h.add(1);
        h.add(1024);
        h.add(u64::MAX); // clamps to last bucket
        assert_eq!(h.total(), 3);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[11], 1); // 1024 has 11 significant bits
        assert_eq!(h.buckets[12], 1); // clamped
    }

    #[test]
    fn metadata_builders_are_valid() {
        let md = metadata_with_value_indexes(5);
        assert_eq!(md.indexes().count(), 5);
        let md = item_metadata(true, true);
        assert!(md.index("body_text").is_ok());
        assert!(md.index("score_rank").is_ok());
    }
}
