//! Atomic-mutation aggregates vs read-modify-write under concurrency (§7):
//! the SUM index is maintained with atomic ADD precisely because an RMW
//! implementation "would not scale, as any two concurrent record updates
//! would necessarily conflict".

use criterion::{criterion_group, criterion_main, Criterion};
use rl_fdb::atomic::MutationType;
use rl_fdb::Database;

/// Simulate `writers` interleaved increments where every transaction reads
/// before any commits (worst-case concurrency), then commit all, retrying
/// failures. Returns total attempts (RMW amplifies attempts via conflicts).
fn rmw_round(db: &Database, writers: usize) -> u64 {
    let mut attempts = 0u64;
    let mut pending: Vec<_> = (0..writers)
        .map(|_| {
            let tx = db.create_transaction();
            let cur = tx
                .get(b"ctr")
                .unwrap()
                .map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
            (tx, cur)
        })
        .collect();
    while let Some((tx, cur)) = pending.pop() {
        attempts += 1;
        tx.set(b"ctr", &(cur + 1).to_le_bytes());
        if tx.commit().is_err() {
            let tx = db.create_transaction();
            let cur = tx
                .get(b"ctr")
                .unwrap()
                .map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
            pending.push((tx, cur));
        }
    }
    attempts
}

fn atomic_round(db: &Database, writers: usize) -> u64 {
    let txs: Vec<_> = (0..writers).map(|_| db.create_transaction()).collect();
    for tx in &txs {
        tx.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes()).unwrap();
    }
    let mut attempts = 0;
    for tx in txs {
        attempts += 1;
        tx.commit().unwrap(); // never conflicts
    }
    attempts
}

fn bench_counter_strategies(c: &mut Criterion) {
    // Sanity-check the conflict amplification once, outside the timing loop.
    let db = Database::new();
    let rmw_attempts = rmw_round(&db, 16);
    let db = Database::new();
    let atomic_attempts = atomic_round(&db, 16);
    assert!(rmw_attempts > atomic_attempts);
    eprintln!(
        "16 interleaved increments: RMW {rmw_attempts} attempts vs atomic {atomic_attempts}"
    );

    let mut g = c.benchmark_group("concurrent_counter");
    g.sample_size(20);
    for writers in [4usize, 16] {
        g.bench_function(format!("rmw_{writers}_writers"), |b| {
            let db = Database::new();
            b.iter(|| rmw_round(&db, writers));
        });
        g.bench_function(format!("atomic_{writers}_writers"), |b| {
            let db = Database::new();
            b.iter(|| atomic_round(&db, writers));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_counter_strategies);
criterion_main!(benches);
