//! Read-version caching (§4): avoiding getReadVersion round-trips for
//! read-only transactions willing to accept bounded staleness.

use criterion::{criterion_group, criterion_main, Criterion};
use rl_fdb::database::ReadVersionCache;
use rl_fdb::Database;

fn bench_version_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("grv");
    g.sample_size(30);

    g.bench_function("fresh_grv_every_tx", |b| {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        b.iter(|| {
            let tx = db.create_transaction();
            tx.get(b"k").unwrap()
        });
    });

    g.bench_function("cached_read_version", |b| {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        let cache = ReadVersionCache::new();
        b.iter(|| {
            let tx = cache.create_transaction(&db, 1_000, 0).unwrap();
            tx.get(b"k").unwrap()
        });
    });

    // Report GRV call amplification once.
    let db = Database::new();
    let t = db.create_transaction();
    t.set(b"k", b"v");
    t.commit().unwrap();
    let cache = ReadVersionCache::new();
    let before = db.grv_call_count();
    for _ in 0..1000 {
        let tx = cache.create_transaction(&db, 1_000, 0).unwrap();
        let _ = tx.get(b"k").unwrap();
    }
    let cached_calls = db.grv_call_count() - before;
    let before = db.grv_call_count();
    for _ in 0..1000 {
        let tx = db.create_transaction();
        let _ = tx.get(b"k").unwrap();
    }
    let fresh_calls = db.grv_call_count() - before;
    eprintln!("GRV calls for 1000 read-only txs: cached={cached_calls} fresh={fresh_calls}");
    assert!(cached_calls <= 2 && fresh_calls == 1000);

    g.finish();
}

criterion_group!(benches, bench_version_cache);
criterion_main!(benches);
