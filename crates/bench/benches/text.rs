//! TEXT index throughput vs bunch size (Appendix B / Table 2): insertion
//! locality and token/prefix query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use record_layer::index::text::BunchedMap;
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};

fn bench_bunched_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("text_bunched_map");
    g.sample_size(20);
    for bunch in [1usize, 20] {
        g.bench_with_input(BenchmarkId::new("insert_1k_postings", bunch), &bunch, |b, &bunch| {
            b.iter(|| {
                let db = Database::new();
                record_layer::run(&db, |tx| {
                    let map = BunchedMap::new(tx, Subspace::from_bytes(b"T".to_vec()), bunch);
                    for i in 0..1000i64 {
                        map.insert(&format!("token{}", i % 50), &Tuple::from((i,)), &[i % 7])?;
                    }
                    Ok(())
                })
                .unwrap();
            });
        });

        // Pre-built index for query benches.
        let db = Database::new();
        record_layer::run(&db, |tx| {
            let map = BunchedMap::new(tx, Subspace::from_bytes(b"T".to_vec()), bunch);
            for i in 0..2000i64 {
                map.insert(&format!("token{:03}", i % 100), &Tuple::from((i,)), &[i % 7])?;
            }
            Ok(())
        })
        .unwrap();
        g.bench_with_input(BenchmarkId::new("scan_token", bunch), &bunch, |b, &bunch| {
            let tx = db.create_transaction();
            let map = BunchedMap::new(&tx, Subspace::from_bytes(b"T".to_vec()), bunch);
            b.iter(|| map.scan_token("token042").unwrap());
        });
        g.bench_with_input(BenchmarkId::new("scan_prefix", bunch), &bunch, |b, &bunch| {
            let tx = db.create_transaction();
            let map = BunchedMap::new(&tx, Subspace::from_bytes(b"T".to_vec()), bunch);
            b.iter(|| map.scan_prefix("token04").unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bunched_map);
criterion_main!(benches);
