//! Query planning + execution: index-satisfiable predicates vs full scans
//! with residual filters (Appendix C), plus the cost-based planner paths
//! (statistics-driven planning and covering scans).

use criterion::{criterion_group, criterion_main, Criterion};
use record_layer::plan::RecordQueryPlanner;
use record_layer::query::{Comparison, QueryComponent, RecordQuery};
use record_layer::store::RecordStore;
use rl_bench::item_metadata;
use rl_fdb::{Database, Subspace};

fn seeded_db(metadata: &record_layer::metadata::RecordMetaData, n: i64) -> Database {
    let db = Database::new();
    let sub = Subspace::from_bytes(b"P".to_vec());
    record_layer::run(&db, |tx| {
        let store = RecordStore::open_or_create(tx, &sub, metadata)?;
        for i in 0..n {
            let mut msg = store.new_record("Item")?;
            msg.set("id", i).unwrap();
            msg.set("group", format!("g{}", i % 20)).unwrap();
            msg.set("score", i % 100).unwrap();
            store.save_record(msg)?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn bench_planner(c: &mut Criterion) {
    let metadata = item_metadata(false, false);
    let db = seeded_db(&metadata, 2000);
    let sub = Subspace::from_bytes(b"P".to_vec());

    let indexed_query = RecordQuery::new().record_type("Item").filter(QueryComponent::and(vec![
        QueryComponent::field("group", Comparison::Equals("g7".into())),
        QueryComponent::field("score", Comparison::GreaterThan(50i64.into())),
    ]));
    let unindexed_query = RecordQuery::new()
        .record_type("Item")
        .filter(QueryComponent::field("id", Comparison::LessThan(100i64.into())));

    let mut g = c.benchmark_group("planner");
    g.sample_size(20);
    g.bench_function("plan_only", |b| {
        let planner = RecordQueryPlanner::new(&metadata);
        b.iter(|| planner.plan(&indexed_query).unwrap());
    });
    g.bench_function("execute_index_scan", |b| {
        let planner = RecordQueryPlanner::new(&metadata);
        let plan = planner.plan(&indexed_query).unwrap();
        assert!(plan.describe().contains("IndexScan"), "{}", plan.describe());
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                plan.execute_all(&store)
            })
            .unwrap()
        });
    });
    g.bench_function("execute_full_scan_filter", |b| {
        let planner = RecordQueryPlanner::new(&metadata);
        let plan = planner.plan(&unindexed_query).unwrap();
        assert!(plan.describe().contains("FullScan"), "{}", plan.describe());
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                plan.execute_all(&store)
            })
            .unwrap()
        });
    });
    g.bench_function("plan_with_statistics", |b| {
        // Statistics-backed planning adds snapshot reads of the entry
        // counters; this measures that overhead against plan_only.
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                let planner = RecordQueryPlanner::new(&metadata).with_statistics(&store);
                planner.plan(&indexed_query)
            })
            .unwrap()
        });
    });
    g.bench_function("execute_covering_scan", |b| {
        let planner = RecordQueryPlanner::new(&metadata);
        let covered = RecordQuery::new()
            .record_type("Item")
            .filter(QueryComponent::field(
                "group",
                Comparison::Equals("g7".into()),
            ))
            .require_fields(&["id", "group"]);
        let plan = planner.plan(&covered).unwrap();
        assert!(
            plan.describe().starts_with("Covering("),
            "{}",
            plan.describe()
        );
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                plan.execute_all(&store)
            })
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
