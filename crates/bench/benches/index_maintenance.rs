//! Record save cost as a function of the number of maintained indexes
//! (§6/§8.2: write overhead is dominated by index maintenance), plus the
//! unchanged-index skip optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use record_layer::store::RecordStore;
use rl_bench::metadata_with_value_indexes;
use rl_fdb::{Database, Subspace};

fn bench_save_by_index_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("save_vs_index_count");
    g.sample_size(20);
    for n_indexes in [0usize, 2, 4, 8] {
        let metadata = metadata_with_value_indexes(n_indexes);
        g.bench_with_input(BenchmarkId::from_parameter(n_indexes), &n_indexes, |b, &n| {
            let db = Database::new();
            let sub = Subspace::from_bytes(b"B".to_vec());
            let mut id = 0i64;
            b.iter(|| {
                record_layer::run(&db, |tx| {
                    let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                    let mut msg = store.new_record("Item")?;
                    msg.set("id", id).unwrap();
                    for i in 0..n {
                        msg.set(&format!("f{i}"), id * 7 + i as i64).unwrap();
                    }
                    store.save_record(msg)?;
                    Ok(())
                })
                .unwrap();
                id += 1;
            });
        });
    }
    g.finish();
}

fn bench_unchanged_index_skip(c: &mut Criterion) {
    // Re-saving a record with identical indexed fields must skip index
    // writes; changing every field pays full maintenance.
    let metadata = metadata_with_value_indexes(6);
    let mut g = c.benchmark_group("resave");
    g.sample_size(20);
    g.bench_function("indexed_fields_unchanged", |b| {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"B".to_vec());
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                let mut msg = store.new_record("Item")?;
                msg.set("id", 1i64).unwrap();
                for i in 0..6 {
                    msg.set(&format!("f{i}"), 42i64).unwrap();
                }
                store.save_record(msg)?;
                Ok(())
            })
            .unwrap();
        });
    });
    g.bench_function("indexed_fields_all_changed", |b| {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"B".to_vec());
        let mut v = 0i64;
        b.iter(|| {
            record_layer::run(&db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, &metadata)?;
                let mut msg = store.new_record("Item")?;
                msg.set("id", 1i64).unwrap();
                for i in 0..6 {
                    msg.set(&format!("f{i}"), v + i as i64).unwrap();
                }
                store.save_record(msg)?;
                Ok(())
            })
            .unwrap();
            v += 100;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_save_by_index_count, bench_unchanged_index_skip);
criterion_main!(benches);
