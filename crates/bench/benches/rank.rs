//! RANK index operations (Appendix B): insert, rank lookup, select, and
//! the comparison against linearly scanning to the k-th entry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use record_layer::index::rank::RankedSet;
use rl_fdb::tuple::Tuple;
use rl_fdb::{Database, Subspace};

fn populated_set(n: i64) -> Database {
    let db = Database::new();
    record_layer::run(&db, |tx| {
        let set = RankedSet::new(tx, Subspace::from_bytes(b"R".to_vec()), 6);
        for v in 0..n {
            set.insert(&Tuple::from(((v * 37) % (n * 4), v)))?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn bench_rank_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank");
    g.sample_size(20);
    for n in [256i64, 2048] {
        let db = populated_set(n);
        g.bench_with_input(BenchmarkId::new("rank_lookup", n), &n, |b, &n| {
            let tx = db.create_transaction();
            let set = RankedSet::new(&tx, Subspace::from_bytes(b"R".to_vec()), 6);
            let probe = Tuple::from((((n / 2) * 37) % (n * 4), n / 2));
            b.iter(|| set.rank(&probe).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("select_median", n), &n, |b, &n| {
            let tx = db.create_transaction();
            let set = RankedSet::new(&tx, Subspace::from_bytes(b"R".to_vec()), 6);
            b.iter(|| set.select(n / 2).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("insert_erase", n), &n, |b, &n| {
            let tx = db.create_transaction();
            let set = RankedSet::new(&tx, Subspace::from_bytes(b"R".to_vec()), 6);
            let probe = Tuple::from((n * 8, -1i64));
            b.iter(|| {
                set.insert(&probe).unwrap();
                set.erase(&probe).unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rank_ops);
criterion_main!(benches);
