//! Tuple-layer encode/decode throughput: every key the Record Layer writes
//! goes through this path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rl_fdb::tuple::{Tuple, TupleElement};

fn bench_tuple(c: &mut Criterion) {
    let simple = Tuple::from(("user", 123_456i64, "application"));
    let complex = Tuple::new()
        .push("prefix")
        .push(-987_654_321i64)
        .push(3.14159f64)
        .push(b"binary-data".as_slice())
        .push(Tuple::from(("nested", 1i64)))
        .push(TupleElement::Null);
    let packed_simple = simple.pack();
    let packed_complex = complex.pack();

    let mut g = c.benchmark_group("tuple");
    g.bench_function("pack_simple", |b| b.iter(|| black_box(&simple).pack()));
    g.bench_function("pack_complex", |b| b.iter(|| black_box(&complex).pack()));
    g.bench_function("unpack_simple", |b| {
        b.iter(|| Tuple::unpack(black_box(&packed_simple)).unwrap())
    });
    g.bench_function("unpack_complex", |b| {
        b.iter(|| Tuple::unpack(black_box(&packed_complex)).unwrap())
    });
    g.bench_function("pack_unpack_roundtrip", |b| {
        b.iter(|| Tuple::unpack(&black_box(&complex).pack()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_tuple);
criterion_main!(benches);
