//! Multi-version ordered storage: the MVCC heart of the simulator.
//!
//! The implementation moved to the `rl_storage` crate, which defines the
//! [`StorageEngine`] trait plus two engines: the original in-memory ordered
//! map ([`MemoryEngine`], re-exported here under its historical name
//! `VersionedStore`) and the disk-backed [`PagedEngine`] (buffer pool +
//! copy-on-write B-tree + write-ahead log). [`crate::DatabaseOptions`]
//! selects between them.

pub use rl_storage::{EvictionPolicy, MemoryEngine, PagedEngine, SharedRead, StorageEngine};

/// Historical name for the in-memory engine, kept for existing callers.
pub type VersionedStore = MemoryEngine;
