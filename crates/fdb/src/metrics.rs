//! Key-level instrumentation counters.
//!
//! Section 8.2 of the paper reports the median number of FoundationDB keys
//! read and written while executing common CloudKit operations (e.g. a
//! query reads ≈38.3 keys of which ≈6.2 are overhead). These counters let
//! the `overhead_stats` experiment reproduce that table: every transaction
//! tallies its key reads/writes, and the database aggregates totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rl_storage::SharedIoCounters;

/// Monotonic counters describing database traffic at the key level.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Individual keys returned by point and range reads.
    pub keys_read: AtomicU64,
    /// Bytes of keys+values returned by reads.
    pub bytes_read: AtomicU64,
    /// Keys written (sets + atomic mutations) by committed transactions.
    pub keys_written: AtomicU64,
    /// Bytes of keys+values written by committed transactions.
    pub bytes_written: AtomicU64,
    /// Range-clear operations committed.
    pub range_clears: AtomicU64,
    /// Point/range read operations issued.
    pub read_ops: AtomicU64,
    /// Commit attempts.
    pub commits_attempted: AtomicU64,
    /// Commits that succeeded.
    pub commits_succeeded: AtomicU64,
    /// Commits rejected with a conflict (error 1020).
    pub conflicts: AtomicU64,
    /// Record fetches: reads that load record payloads from a record
    /// store's record subspace (covering index scans perform zero).
    pub record_fetches: AtomicU64,
    /// Storage-engine I/O counters (buffer-pool traffic, WAL appends).
    /// Shared with the engine; stays at zero for the in-memory engine.
    pub io: SharedIoCounters,
}

/// Shared handle to a metrics block.
pub type SharedMetrics = Arc<Metrics>;

impl Metrics {
    pub fn new_shared() -> SharedMetrics {
        Arc::new(Metrics::default())
    }

    /// The I/O counter block a storage engine should report into.
    pub fn io_counters(&self) -> &SharedIoCounters {
        &self.io
    }

    pub fn add_keys_read(&self, n: u64, bytes: u64) {
        self.keys_read.fetch_add(n, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn add_read_op(&self) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_keys_written(&self, n: u64, bytes: u64) {
        self.keys_written.fetch_add(n, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn add_range_clear(&self) {
        self.range_clears.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one record fetch (a read of record payload keys). Incremented
    /// by the record layer, not by the key-value substrate itself.
    pub fn add_record_fetch(&self) {
        self.record_fetches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_commit(&self, succeeded: bool, conflicted: bool) {
        self.commits_attempted.fetch_add(1, Ordering::Relaxed);
        if succeeded {
            self.commits_succeeded.fetch_add(1, Ordering::Relaxed);
        }
        if conflicted {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            keys_read: self.keys_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            keys_written: self.keys_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            range_clears: self.range_clears.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            commits_attempted: self.commits_attempted.load(Ordering::Relaxed),
            commits_succeeded: self.commits_succeeded.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            record_fetches: self.record_fetches.load(Ordering::Relaxed),
            page_hits: self.io.page_hits.load(Ordering::Relaxed),
            page_misses: self.io.page_misses.load(Ordering::Relaxed),
            page_evictions: self.io.page_evictions.load(Ordering::Relaxed),
            page_flushes: self.io.page_flushes.load(Ordering::Relaxed),
            log_appends: self.io.log_appends.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.keys_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.keys_written.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.range_clears.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.commits_attempted.store(0, Ordering::Relaxed);
        self.commits_succeeded.store(0, Ordering::Relaxed);
        self.conflicts.store(0, Ordering::Relaxed);
        self.record_fetches.store(0, Ordering::Relaxed);
        self.io.reset();
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub keys_read: u64,
    pub bytes_read: u64,
    pub keys_written: u64,
    pub bytes_written: u64,
    pub range_clears: u64,
    pub read_ops: u64,
    pub commits_attempted: u64,
    pub commits_succeeded: u64,
    pub conflicts: u64,
    pub record_fetches: u64,
    /// Buffer-pool requests served from memory (paged engine only).
    pub page_hits: u64,
    /// Buffer-pool requests that read the page file.
    pub page_misses: u64,
    /// Frames evicted to make room for another page.
    pub page_evictions: u64,
    /// Dirty pages written back (evictions + checkpoints).
    pub page_flushes: u64,
    /// Committed batch frames appended to the write-ahead log.
    pub log_appends: u64,
}

impl MetricsSnapshot {
    /// Difference between two snapshots (self - earlier). Saturating: a
    /// concurrent `Metrics::reset` between taking `earlier` and `self`
    /// makes individual counters go backwards, which must degrade to a
    /// zero delta rather than a debug-build underflow panic.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            keys_read: self.keys_read.saturating_sub(earlier.keys_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            keys_written: self.keys_written.saturating_sub(earlier.keys_written),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            range_clears: self.range_clears.saturating_sub(earlier.range_clears),
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            commits_attempted: self
                .commits_attempted
                .saturating_sub(earlier.commits_attempted),
            commits_succeeded: self
                .commits_succeeded
                .saturating_sub(earlier.commits_succeeded),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            record_fetches: self.record_fetches.saturating_sub(earlier.record_fetches),
            page_hits: self.page_hits.saturating_sub(earlier.page_hits),
            page_misses: self.page_misses.saturating_sub(earlier.page_misses),
            page_evictions: self.page_evictions.saturating_sub(earlier.page_evictions),
            page_flushes: self.page_flushes.saturating_sub(earlier.page_flushes),
            log_appends: self.log_appends.saturating_sub(earlier.log_appends),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::new_shared();
        m.add_keys_read(3, 100);
        m.add_keys_written(2, 50);
        m.record_commit(true, false);
        m.record_commit(false, true);
        let s = m.snapshot();
        assert_eq!(s.keys_read, 3);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.keys_written, 2);
        assert_eq!(s.commits_attempted, 2);
        assert_eq!(s.commits_succeeded, 1);
        assert_eq!(s.conflicts, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let m = Metrics::new_shared();
        m.add_keys_read(5, 10);
        let a = m.snapshot();
        m.add_keys_read(7, 20);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.keys_read, 7);
        assert_eq!(d.bytes_read, 20);
    }
}
