//! The database: commit pipeline, conflict detection, MVCC window
//! management, logical clock, and read-version caching.
//!
//! ## Parallel commit pipeline
//!
//! The original simulator funnelled every read and commit through one
//! `Arc<Mutex<Inner>>`. That global lock is now torn into four pieces,
//! each with its own [`LockRank`]:
//!
//! * **Conflict shards** (`shards`, [`LockRank::ConflictShard`]) — the
//!   recent-writes window is sharded by key range ([`CONFLICT_SHARDS`]
//!   shards, keyed on the first two key bytes). A committing transaction
//!   locks only the shards its conflict ranges touch, in ascending shard
//!   order, so commits over disjoint key spaces validate and apply in
//!   parallel.
//! * **Group-commit batcher** (`batcher`, [`LockRank::CommitBatch`]) —
//!   concurrent committers that passed validation enqueue their command
//!   logs; one becomes the *leader* and applies the whole batch with a
//!   single version allocation and (on the paged engine) a single WAL
//!   frame. Followers park on a condvar and collect their receipts.
//! * **Version core** (`core`, [`LockRank::VersionCore`]) — version
//!   allocation and compaction bookkeeping; a short critical section only
//!   the batch leader enters.
//! * **Store** (`store`, [`LockRank::DatabaseStore`]) — the storage
//!   engine behind an `RwLock`. Engines whose reads are side-effect-free
//!   (the in-memory engine) expose a [`SharedRead`] view, so MVCC
//!   snapshot reads run under the shared lock, concurrently with each
//!   other; the paged engine mutates buffer-pool state on reads and stays
//!   behind the exclusive lock.
//!
//! `last_commit_version` and `oldest_version` are additionally published
//! as atomics (after the store apply, so a GRV can never hand out a
//! version the store has not materialized), making `getReadVersion`
//! entirely lock-free.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use rl_storage::SharedIoCounters;

use crate::atomic;
use crate::error::{Error, Result};
use crate::metrics::{Metrics, SharedMetrics};
use crate::storage::{EvictionPolicy, MemoryEngine, PagedEngine, StorageEngine};
use crate::sync::{lock_ranked, lock_ranked_indexed, read_ranked, write_ranked, LockRank};
use crate::transaction::{Command, Transaction};

/// FoundationDB's documented key size limit (10 kB).
pub const KEY_SIZE_LIMIT: usize = 10_000;
/// FoundationDB's documented value size limit (100 kB).
pub const VALUE_SIZE_LIMIT: usize = 100_000;
/// FoundationDB's documented transaction size limit (10 MB).
pub const TRANSACTION_SIZE_LIMIT: usize = 10_000_000;
/// The 5-second transaction time limit, in (logical) milliseconds.
pub const TRANSACTION_TIME_LIMIT_MS: u64 = 5_000;
/// FoundationDB advances ~1,000,000 versions per second of wall time.
pub const VERSIONS_PER_MS: u64 = 1_000;
/// Number of recent-writes conflict-index shards. Keys map to shards by
/// their first two bytes, so transactions over disjoint key prefixes
/// (e.g. different tenants) commit in parallel.
pub const CONFLICT_SHARDS: usize = 16;

/// Which storage engine backs the simulated cluster.
#[derive(Debug, Clone, Default)]
pub enum EngineKind {
    /// The original ordered in-memory multi-version map.
    #[default]
    InMemory,
    /// Disk-backed engine: buffer pool + copy-on-write B-tree + WAL.
    Paged(PagedConfig),
}

impl EngineKind {
    /// Parse an engine spec string — the same grammar as the `RL_ENGINE`
    /// environment variable: `memory`, `paged`, or `paged:<lru|clock|sieve>`
    /// (the paged forms get an ephemeral temp directory). Anything else
    /// falls back to the in-memory engine, mirroring `RL_ENGINE` handling.
    pub fn from_spec(spec: &str) -> EngineKind {
        let mut parts = spec.splitn(2, ':');
        match parts.next() {
            Some("paged") => {
                let eviction = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_default();
                EngineKind::Paged(PagedConfig::ephemeral(eviction))
            }
            _ => EngineKind::InMemory,
        }
    }

    /// Short engine family name: `memory` or `paged`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EngineKind::InMemory => "memory",
            EngineKind::Paged(_) => "paged",
        }
    }

    /// The buffer-pool eviction policy, for paged engines.
    pub fn pool_policy(&self) -> Option<&'static str> {
        match self {
            EngineKind::InMemory => None,
            EngineKind::Paged(cfg) => Some(cfg.eviction.name()),
        }
    }
}

/// Configuration for the disk-backed engine.
#[derive(Debug, Clone)]
pub struct PagedConfig {
    /// Directory holding the page file and WAL (created if missing).
    pub path: PathBuf,
    /// Buffer pool capacity in 4 kB pages (minimum 4).
    pub pool_pages: usize,
    /// Buffer-pool eviction policy.
    pub eviction: EvictionPolicy,
    /// Delete `path` when the database is dropped. Set for the ephemeral
    /// engines `RL_ENGINE=paged` conjures under the OS temp directory;
    /// leave unset to keep a database across processes.
    pub remove_dir_on_drop: bool,
}

impl PagedConfig {
    /// An ephemeral on-disk engine under the OS temp directory, removed
    /// when the database is dropped. Each call gets a distinct directory.
    pub fn ephemeral(eviction: EvictionPolicy) -> PagedConfig {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        PagedConfig {
            path: std::env::temp_dir().join(format!("rl-paged-{}-{n}", std::process::id())),
            pool_pages: 256,
            eviction,
            remove_dir_on_drop: true,
        }
    }
}

/// Tunable limits; defaults match FoundationDB's production limits.
#[derive(Debug, Clone)]
pub struct DatabaseOptions {
    pub transaction_size_limit: usize,
    pub transaction_time_limit_ms: u64,
    /// How many versions of history the resolvers keep for conflict
    /// checking, and the storage keeps for MVCC reads (5 logical seconds).
    pub mvcc_window_versions: u64,
    /// Compact shadowed MVCC versions every N commits.
    pub compaction_interval: u64,
    /// Storage engine. The default honours the `RL_ENGINE` environment
    /// variable (`memory`, `paged`, or `paged:<lru|clock|sieve>`; the
    /// paged forms use an ephemeral temp directory), so the whole test
    /// suite can be re-run against the disk engine without code changes.
    pub engine: EngineKind,
}

impl Default for DatabaseOptions {
    fn default() -> Self {
        DatabaseOptions {
            transaction_size_limit: TRANSACTION_SIZE_LIMIT,
            transaction_time_limit_ms: TRANSACTION_TIME_LIMIT_MS,
            mvcc_window_versions: 5_000 * VERSIONS_PER_MS,
            compaction_interval: 256,
            engine: engine_from_env(),
        }
    }
}

/// Resolve `RL_ENGINE` into an engine selection (default: in-memory).
fn engine_from_env() -> EngineKind {
    match std::env::var("RL_ENGINE") {
        Ok(value) => EngineKind::from_spec(&value),
        Err(_) => EngineKind::InMemory,
    }
}

/// Instantiate the engine an [`EngineKind`] describes, reporting I/O into
/// `io`. Returns the directory to delete on drop, when ephemeral.
fn build_engine(
    kind: &EngineKind,
    io: SharedIoCounters,
) -> (Box<dyn StorageEngine>, Option<PathBuf>) {
    match kind {
        EngineKind::InMemory => (Box::new(MemoryEngine::new()), None),
        EngineKind::Paged(cfg) => {
            let engine = PagedEngine::open(&cfg.path, cfg.pool_pages, cfg.eviction, io)
                .unwrap_or_else(|e| panic!("open paged engine at {}: {e}", cfg.path.display()));
            let cleanup = cfg.remove_dir_on_drop.then(|| cfg.path.clone());
            (Box::new(engine), cleanup)
        }
    }
}

// ------------------------------------------------------- shard mapping

/// The first two key bytes as a big-endian u16 (shorter keys are
/// zero-padded). Adjacent keys share prefixes, so a contiguous key range
/// resolves to a contiguous prefix interval.
fn prefix_value(key: &[u8]) -> u16 {
    let hi = key.first().copied().unwrap_or(0) as u16;
    let lo = key.get(1).copied().unwrap_or(0) as u16;
    (hi << 8) | lo
}

/// Which conflict shard a two-byte prefix belongs to.
fn shard_of_prefix(prefix: u16) -> usize {
    prefix as usize % CONFLICT_SHARDS
}

/// Bitmask (bit *i* = shard *i*) of the shards a half-open key range
/// `[begin, end)` can touch. Conservative: every key in the range maps to
/// a shard in the mask (extra shards only cost lock acquisitions, never
/// correctness). A range spanning `>= CONFLICT_SHARDS` prefixes covers
/// every shard.
fn range_shard_mask(begin: &[u8], end: &[u8]) -> u16 {
    let lo = prefix_value(begin);
    // Keys below `end` carry `end`'s own prefix whenever `end` has bytes
    // past the prefix. They also do when `end` is of the form [b, 0x00]
    // — exactly what `key_after` yields for the one-byte key [b], which
    // is in-range and zero-pads to `end`'s own prefix. Only a one-byte
    // `end`, or [b, c] with c != 0, lets the interval stop one short.
    let ends_prefix_unreachable = end.len() == 1 || (end.len() == 2 && end[1] != 0);
    let hi = if ends_prefix_unreachable {
        prefix_value(end).saturating_sub(1)
    } else {
        prefix_value(end)
    }
    .max(lo);
    if (hi - lo) as usize >= CONFLICT_SHARDS - 1 {
        return u16::MAX >> (16 - CONFLICT_SHARDS);
    }
    let mut mask = 0u16;
    for p in lo..=hi {
        mask |= 1 << shard_of_prefix(p);
    }
    mask
}

/// Union of [`range_shard_mask`] over a conflict-range set.
fn conflict_shard_mask(ranges: &[(Vec<u8>, Vec<u8>)]) -> u16 {
    ranges
        .iter()
        .fold(0, |mask, (begin, end)| mask | range_shard_mask(begin, end))
}

// --------------------------------------------------------- shared state

/// One entry in the conflict-detection window: the write conflict ranges of
/// a committed transaction, recorded under its commit version.
#[derive(Debug)]
struct CommittedWrites {
    version: u64,
    ranges: Vec<(Vec<u8>, Vec<u8>)>,
}

/// One shard of the recent-writes conflict index. Entries are ordered by
/// version (insertion happens under the shard lock, and versions allocate
/// monotonically while the inserting committer still holds the lock).
#[derive(Debug, Default)]
struct ConflictShard {
    window: VecDeque<CommittedWrites>,
}

/// The storage engine plus its cleanup obligation, behind the store
/// `RwLock`.
#[derive(Debug)]
struct Store {
    engine: Box<dyn StorageEngine>,
    /// Directory to delete once the engine has shut down (ephemeral paged
    /// engines only).
    cleanup_dir: Option<PathBuf>,
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(dir) = self.cleanup_dir.take() {
            // Shut the engine down first so its final checkpoint lands
            // before the directory disappears.
            self.engine = Box::new(MemoryEngine::new());
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Version allocation + compaction bookkeeping: the short critical
/// section only a batch leader enters.
#[derive(Debug, Default)]
struct VersionCore {
    last_commit_version: u64,
    commits_since_compaction: u64,
}

/// A committer's enqueued work: its command log, cloned so the follower
/// can park without lending out its borrow.
struct PendingCommit {
    ticket: u64,
    commands: Vec<Command>,
}

/// What a batch member gets back from the leader.
#[derive(Debug, Clone, Copy)]
struct CommitReceipt {
    version: u64,
    batch_order: u16,
    keys_written: u64,
    bytes_written: u64,
}

#[derive(Default)]
struct BatchState {
    queue: Vec<PendingCommit>,
    /// A leader is currently applying a batch; newcomers queue behind it.
    leader_active: bool,
    next_ticket: u64,
    /// Receipts published by the last leader, keyed by ticket.
    results: Vec<(u64, Result<CommitReceipt>)>,
}

/// Group-commit rendezvous: queue + condvar the followers park on.
#[derive(Default)]
struct CommitBatcher {
    state: Mutex<BatchState>,
    done: Condvar,
}

/// Handle to a simulated FoundationDB cluster. Clone freely; all clones
/// share state. Safe to use from multiple threads: snapshot reads run
/// under a shared store lock (on engines with side-effect-free reads),
/// and commits over disjoint key shards validate and apply in parallel,
/// batched through a group-commit leader.
#[derive(Clone)]
pub struct Database {
    /// Recent-writes conflict index, sharded by key prefix.
    shards: Arc<[Mutex<ConflictShard>; CONFLICT_SHARDS]>,
    /// Version allocation + compaction counters.
    core: Arc<Mutex<VersionCore>>,
    /// The storage engine (shared reads / exclusive commits).
    store: Arc<RwLock<Store>>,
    /// Group-commit batcher.
    batcher: Arc<CommitBatcher>,
    /// Latest commit version the store has materialized (lock-free GRV).
    last_commit: Arc<AtomicU64>,
    /// Read versions below this fail with `transaction_too_old`.
    oldest: Arc<AtomicU64>,
    options: Arc<DatabaseOptions>,
    clock_ms: Arc<AtomicU64>,
    metrics: SharedMetrics,
    grv_calls: Arc<AtomicU64>,
    /// Test-only: make the next batch leader panic inside
    /// [`Self::lead_batch`], exercising the abdication-on-unwind path.
    #[cfg(test)]
    panic_next_batch: Arc<std::sync::atomic::AtomicBool>,
}

impl Database {
    /// A fresh, empty database with production-default limits.
    pub fn new() -> Self {
        Database::with_options(DatabaseOptions::default())
    }

    pub fn with_options(options: DatabaseOptions) -> Self {
        let metrics = Metrics::new_shared();
        let (engine, cleanup_dir) = build_engine(&options.engine, metrics.io_counters().clone());
        Database {
            shards: Arc::new(std::array::from_fn(
                |_| Mutex::new(ConflictShard::default()),
            )),
            core: Arc::new(Mutex::new(VersionCore::default())),
            store: Arc::new(RwLock::new(Store {
                engine,
                cleanup_dir,
            })),
            batcher: Arc::new(CommitBatcher::default()),
            last_commit: Arc::new(AtomicU64::new(0)),
            oldest: Arc::new(AtomicU64::new(0)),
            options: Arc::new(options),
            clock_ms: Arc::new(AtomicU64::new(0)),
            metrics,
            grv_calls: Arc::new(AtomicU64::new(0)),
            #[cfg(test)]
            panic_next_batch: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// Short description of the storage engine backing this database.
    pub fn engine_description(&self) -> String {
        read_ranked(&self.store, LockRank::DatabaseStore)
            .engine
            .describe()
    }

    pub fn options(&self) -> &DatabaseOptions {
        &self.options
    }

    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Number of `getReadVersion` round-trips issued so far. The paper's
    /// read-version caching (§4) exists to avoid these.
    pub fn grv_call_count(&self) -> u64 {
        self.grv_calls.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------- logical clock

    /// Current logical time in milliseconds. Time passes only when
    /// [`advance_clock`](Self::advance_clock) is called, keeping the
    /// simulation deterministic.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    /// Advance logical time; commit versions track the clock so that the
    /// MVCC window expires old read versions as real FDB would.
    pub fn advance_clock(&self, ms: u64) {
        self.clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    // ------------------------------------------------------- transactions

    /// Perform a `getReadVersion` (GRV): the latest commit version.
    /// Lock-free — the version is published atomically after each batch
    /// lands in the store.
    pub fn get_read_version(&self) -> u64 {
        let _t = rl_obs::Timer::start("grv");
        self.grv_calls.fetch_add(1, Ordering::Relaxed);
        self.last_commit.load(Ordering::Acquire)
    }

    /// Begin a transaction at the latest read version.
    pub fn create_transaction(&self) -> Transaction {
        let rv = self.get_read_version();
        Transaction::new(self.clone(), rv, self.clock_ms())
    }

    /// Begin a transaction at a caller-supplied read version (used by the
    /// Record Layer's read-version cache). Fails with `FutureVersion` if the
    /// version has not been committed yet, or `TransactionTooOld` if it has
    /// fallen out of the MVCC window.
    pub fn create_transaction_at(&self, read_version: u64) -> Result<Transaction> {
        if read_version > self.last_commit.load(Ordering::Acquire) {
            return Err(Error::FutureVersion);
        }
        if read_version < self.oldest.load(Ordering::Acquire) {
            return Err(Error::TransactionTooOld);
        }
        Ok(Transaction::new(
            self.clone(),
            read_version,
            self.clock_ms(),
        ))
    }

    /// Retry loop, like the bindings' `Database::run`: runs `f` in a fresh
    /// transaction, commits, and retries on retryable errors (conflicts,
    /// transaction-too-old), up to `max_retries`.
    pub fn run<T>(&self, mut f: impl FnMut(&Transaction) -> Result<T>) -> Result<T> {
        const MAX_RETRIES: usize = 64;
        let mut last_err = Error::NotCommitted;
        for _ in 0..MAX_RETRIES {
            let tx = self.create_transaction();
            match f(&tx).and_then(|out| tx.commit().map(|()| out)) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    // -------------------------------------------------------- storage access
    // (crate-internal: used by Transaction for snapshot reads)

    pub(crate) fn storage_get(&self, key: &[u8], read_version: u64) -> Result<Option<Vec<u8>>> {
        let store = read_ranked(&self.store, LockRank::DatabaseStore);
        // `oldest` only advances under the exclusive store lock, so this
        // check stays valid for the lifetime of the shared guard.
        if read_version < self.oldest.load(Ordering::Acquire) {
            return Err(Error::TransactionTooOld);
        }
        match store.engine.as_shared_read() {
            Some(shared) => Ok(shared.get(key, read_version)),
            None => {
                drop(store);
                self.storage_get_exclusive(key, read_version)
            }
        }
    }

    /// Fallback for engines whose reads mutate internal state (the paged
    /// engine's buffer pool): re-acquire exclusively and re-check.
    fn storage_get_exclusive(&self, key: &[u8], read_version: u64) -> Result<Option<Vec<u8>>> {
        let mut store = write_ranked(&self.store, LockRank::DatabaseStore);
        if read_version < self.oldest.load(Ordering::Acquire) {
            return Err(Error::TransactionTooOld);
        }
        Ok(store.engine.get(key, read_version))
    }

    pub(crate) fn storage_range(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let store = read_ranked(&self.store, LockRank::DatabaseStore);
        if read_version < self.oldest.load(Ordering::Acquire) {
            return Err(Error::TransactionTooOld);
        }
        match store.engine.as_shared_read() {
            Some(shared) => Ok(shared.range(begin, end, read_version, false)),
            None => {
                drop(store);
                self.storage_range_exclusive(begin, end, read_version)
            }
        }
    }

    fn storage_range_exclusive(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut store = write_ranked(&self.store, LockRank::DatabaseStore);
        if read_version < self.oldest.load(Ordering::Acquire) {
            return Err(Error::TransactionTooOld);
        }
        Ok(store.engine.range(begin, end, read_version, false))
    }

    // --------------------------------------------------------------- commit

    /// Validate a transaction's read conflict ranges against the window of
    /// recently committed writes, then apply its command log at a fresh
    /// commit version — FDB's resolver + proxy pipeline. Validation holds
    /// only the conflict shards the transaction touches (ascending order),
    /// so disjoint commits proceed in parallel; application goes through
    /// the group-commit batcher, which charges one version allocation and
    /// one engine batch-seal per *batch* of concurrent committers.
    /// Returns the commit version, the order within its batch, and the
    /// keys/bytes written (per-transaction tracing).
    pub(crate) fn commit_internal(
        &self,
        read_version: u64,
        read_conflicts: &[(Vec<u8>, Vec<u8>)],
        write_conflicts: &[(Vec<u8>, Vec<u8>)],
        commands: &[Command],
    ) -> Result<(u64, u16, u64, u64)> {
        if read_version < self.oldest.load(Ordering::Acquire) {
            self.metrics.record_commit(false, false);
            return Err(Error::TransactionTooOld);
        }

        // Lock the conflict shards this transaction's ranges can touch,
        // in ascending shard order (the ConflictShard indexed band).
        let mask = conflict_shard_mask(read_conflicts) | conflict_shard_mask(write_conflicts);
        let mut held = Vec::with_capacity(mask.count_ones() as usize);
        for idx in 0..CONFLICT_SHARDS {
            if mask & (1 << idx) != 0 {
                held.push((
                    idx,
                    lock_ranked_indexed(&self.shards[idx], LockRank::ConflictShard, idx),
                ));
            }
        }

        // Re-check expiry now that we hold our shards: `oldest` may have
        // advanced past our read version while we were acquiring.
        if read_version < self.oldest.load(Ordering::Acquire) {
            self.metrics.record_commit(false, false);
            return Err(Error::TransactionTooOld);
        }

        // Conflict detection: any committed write range newer than our read
        // version that intersects any of our read ranges aborts us. Each
        // shard's window is ordered by version, so scan newest-first and
        // stop at our read version.
        for (_, shard) in &held {
            for committed in shard.window.iter().rev() {
                if committed.version <= read_version {
                    break;
                }
                for (wa, wb) in &committed.ranges {
                    for (ra, rb) in read_conflicts {
                        if ranges_intersect(ra, rb, wa, wb) {
                            self.metrics.record_commit(false, true);
                            return Err(Error::NotCommitted);
                        }
                    }
                }
            }
        }

        // Apply through the group-commit batcher. We still hold our shard
        // locks, so no conflicting transaction can validate against a
        // window that does not yet contain our writes — and every member
        // of one batch is pairwise shard-disjoint by construction, which
        // is what makes a shared commit version sound.
        let receipt = match self.batched_apply(commands.to_vec()) {
            Ok(receipt) => receipt,
            Err(e) => {
                self.metrics.record_commit(false, false);
                return Err(e);
            }
        };

        // Record our write conflict ranges for future validations, in
        // every shard the write set touches (duplicated per shard so each
        // shard's window is self-contained).
        if !write_conflicts.is_empty() {
            let write_mask = conflict_shard_mask(write_conflicts);
            let horizon = self.oldest.load(Ordering::Acquire);
            for (idx, shard) in &mut held {
                if write_mask & (1 << *idx) == 0 {
                    continue;
                }
                while shard.window.front().is_some_and(|c| c.version < horizon) {
                    shard.window.pop_front();
                }
                shard.window.push_back(CommittedWrites {
                    version: receipt.version,
                    ranges: write_conflicts.to_vec(),
                });
            }
        }
        drop(held);

        self.metrics
            .add_keys_written(receipt.keys_written, receipt.bytes_written);
        self.metrics.record_commit(true, false);
        Ok((
            receipt.version,
            receipt.batch_order,
            receipt.keys_written,
            receipt.bytes_written,
        ))
    }

    /// Group commit: enqueue this committer's command log; whoever finds
    /// no leader active drains the queue and leads the batch, everyone
    /// else parks until the leader publishes their receipt. Callers hold
    /// their conflict-shard locks throughout, which the leader never
    /// takes — the rank order ConflictShard < CommitBatch < VersionCore <
    /// DatabaseStore keeps the whole rendezvous deadlock-free.
    fn batched_apply(&self, commands: Vec<Command>) -> Result<CommitReceipt> {
        let mut st = lock_ranked(&self.batcher.state, LockRank::CommitBatch);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(PendingCommit { ticket, commands });
        loop {
            if let Some(pos) = st.results.iter().position(|(t, _)| *t == ticket) {
                return st.results.swap_remove(pos).1;
            }
            if !st.leader_active {
                st.leader_active = true;
                let batch = std::mem::take(&mut st.queue);
                drop(st);
                return self.lead_and_publish(ticket, batch);
            }
            st.wait_on(&self.batcher.done);
        }
    }

    /// Leader path: apply the batch, then publish everyone's receipts and
    /// hand leadership off. (Separate from [`Self::batched_apply`] so the
    /// batcher lock is provably released before the leader re-acquires
    /// it.)
    ///
    /// If the leader panics mid-batch (say a storage-engine bug while it
    /// holds the store write lock), leadership is still handed back on
    /// unwind and every parked follower gets a `CommitUnknownResult`
    /// receipt — otherwise `leader_active` would stay set forever and
    /// every later committer would park on the condvar indefinitely,
    /// defeating the poison recovery `sync` promises.
    fn lead_and_publish(&self, ticket: u64, batch: Vec<PendingCommit>) -> Result<CommitReceipt> {
        /// Clears `leader_active` and fails the followers' commits if the
        /// leader unwinds before publishing; disarmed on the normal path.
        struct AbdicateOnUnwind<'a> {
            batcher: &'a CommitBatcher,
            follower_tickets: Vec<u64>,
            armed: bool,
        }
        impl Drop for AbdicateOnUnwind<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut st = lock_ranked(&self.batcher.state, LockRank::CommitBatch);
                st.leader_active = false;
                for &t in &self.follower_tickets {
                    st.results.push((t, Err(Error::CommitUnknownResult)));
                }
                drop(st);
                self.batcher.done.notify_all();
            }
        }
        // The leader's own caller observes the panic directly; publishing
        // a receipt for it would leave an orphan in `results` forever.
        let mut guard = AbdicateOnUnwind {
            batcher: &self.batcher,
            follower_tickets: batch
                .iter()
                .map(|p| p.ticket)
                .filter(|t| *t != ticket)
                .collect(),
            armed: true,
        };
        let mut results = self.lead_batch(batch);
        let own = results
            .iter()
            .position(|(t, _)| *t == ticket)
            .expect("leader's own commit in batch");
        let own = results.swap_remove(own).1;
        guard.armed = false;
        let mut st = lock_ranked(&self.batcher.state, LockRank::CommitBatch);
        st.leader_active = false;
        st.results.append(&mut results);
        drop(st);
        self.batcher.done.notify_all();
        own
    }

    /// Apply a batch: one version allocation, every member's command log
    /// at that version (distinguished by batch order), one engine batch
    /// seal — i.e. one WAL frame on the paged engine — then publish the
    /// version. Runs without the batcher lock; takes VersionCore then
    /// DatabaseStore.
    fn lead_batch(&self, batch: Vec<PendingCommit>) -> Vec<(u64, Result<CommitReceipt>)> {
        // Assign the batch's commit version: strictly increasing, and at
        // least the clock-implied version so versions track logical time.
        let mut core = lock_ranked(&self.core, LockRank::VersionCore);
        let clock_version = self.clock_ms() * VERSIONS_PER_MS;
        let version = (core.last_commit_version + 1).max(clock_version);
        core.last_commit_version = version;
        core.commits_since_compaction += batch.len() as u64;
        let compact_now = core.commits_since_compaction >= self.options.compaction_interval;
        if compact_now {
            core.commits_since_compaction = 0;
        }
        drop(core);

        let horizon = version.saturating_sub(self.options.mvcc_window_versions);
        let mut store = write_ranked(&self.store, LockRank::DatabaseStore);
        // Injected while the store write lock is held — the worst spot a
        // real storage-engine bug could fire.
        #[cfg(test)]
        if self.panic_next_batch.swap(false, Ordering::AcqRel) {
            panic!("injected leader failure");
        }
        let mut results = Vec::with_capacity(batch.len());
        for (order, pending) in batch.into_iter().enumerate() {
            let order = order as u16;
            // Surface operand errors before any of this member's writes
            // reach the store: with a shared batch version, a half-applied
            // member would otherwise become visible when its batchmates
            // publish.
            let applied = validate_commands(&pending.commands).and_then(|()| {
                apply_commands(store.engine.as_mut(), &pending.commands, version, order)
            });
            results.push((
                pending.ticket,
                applied.map(|(keys_written, bytes_written)| CommitReceipt {
                    version,
                    batch_order: order,
                    keys_written,
                    bytes_written,
                }),
            ));
        }

        // Seal the batch: a crash-safe engine persists everything above
        // atomically (one WAL frame); a crash before this point loses the
        // whole batch.
        store.engine.commit_batch();

        // Publish only now, so a GRV can never hand out a version the
        // store has not fully materialized.
        self.last_commit.store(version, Ordering::Release);
        self.oldest.fetch_max(horizon, Ordering::AcqRel);
        if compact_now {
            let oldest = self.oldest.load(Ordering::Acquire);
            store.engine.compact(oldest);
        }
        results
    }

    /// Diagnostic: number of live keys at the latest version.
    pub fn live_key_count(&self) -> usize {
        let version = self.last_commit.load(Ordering::Acquire);
        let store = read_ranked(&self.store, LockRank::DatabaseStore);
        match store.engine.as_shared_read() {
            Some(shared) => shared.live_key_count(version),
            None => {
                drop(store);
                self.live_key_count_exclusive(version)
            }
        }
    }

    fn live_key_count_exclusive(&self, version: u64) -> usize {
        write_ranked(&self.store, LockRank::DatabaseStore)
            .engine
            .live_key_count(version)
    }

    /// Diagnostic: latest commit version without counting as a GRV call.
    pub fn last_commit_version(&self) -> u64 {
        self.last_commit.load(Ordering::Acquire)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("engine", &self.engine_description())
            .field(
                "last_commit_version",
                &self.last_commit.load(Ordering::Relaxed),
            )
            .field("oldest_version", &self.oldest.load(Ordering::Relaxed))
            .finish()
    }
}

/// Pre-validate a command log: surface any operand error (e.g. an ADD
/// wider than 16 bytes) that [`apply_commands`] would hit. Apply errors
/// depend only on the operand, never on the current value, so probing
/// with an empty current value is exact.
fn validate_commands(commands: &[Command]) -> Result<()> {
    for cmd in commands {
        if let Command::Atomic { op, param, .. } = cmd {
            atomic::apply(*op, None, param)?;
        }
    }
    Ok(())
}

/// Apply one member's command log at `version`, in program order, with
/// versionstamps resolved to `version` ‖ `batch_order`. Returns the keys
/// and bytes written.
fn apply_commands(
    store: &mut dyn StorageEngine,
    commands: &[Command],
    version: u64,
    batch_order: u16,
) -> Result<(u64, u64)> {
    let tr_version = {
        let mut v = [0u8; 10];
        v[0..8].copy_from_slice(&version.to_be_bytes());
        v[8..10].copy_from_slice(&batch_order.to_be_bytes());
        v
    };
    let mut keys_written = 0u64;
    let mut bytes_written = 0u64;
    for cmd in commands {
        match cmd {
            Command::Set { key, value } => {
                keys_written += 1;
                bytes_written += (key.len() + value.len()) as u64;
                store.write(key.clone(), Some(value.clone()), version);
            }
            Command::Clear { key } => {
                store.write(key.clone(), None, version);
            }
            Command::ClearRange { begin, end } => {
                store.clear_range(begin, end, version);
            }
            Command::Atomic { key, op, param } => {
                let current = store.get(key, version);
                let new = atomic::apply(*op, current.as_deref(), param)?;
                keys_written += 1;
                bytes_written += (key.len() + new.as_ref().map_or(0, Vec::len)) as u64;
                store.write(key.clone(), new, version);
            }
            Command::VersionstampedKey {
                key_payload,
                offset,
                value,
            } => {
                let mut key = key_payload.clone();
                atomic::fill_versionstamp(&mut key, *offset, &tr_version);
                keys_written += 1;
                bytes_written += (key.len() + value.len()) as u64;
                store.write(key, Some(value.clone()), version);
            }
            Command::VersionstampedValue {
                key,
                value_payload,
                offset,
            } => {
                let mut value = value_payload.clone();
                atomic::fill_versionstamp(&mut value, *offset, &tr_version);
                keys_written += 1;
                bytes_written += (key.len() + value.len()) as u64;
                store.write(key.clone(), Some(value), version);
            }
        }
    }
    Ok((keys_written, bytes_written))
}

/// Half-open interval intersection.
fn ranges_intersect(a1: &[u8], a2: &[u8], b1: &[u8], b2: &[u8]) -> bool {
    a1 < b2 && b1 < a2
}

/// Client-side read-version cache (§4: "Read version caching optimizes
/// getReadVersion further by completely avoiding communication with
/// FoundationDB if a read version was recently fetched").
///
/// Doubles as a GRV *batcher*: the cache lock is held across the
/// staleness check and the refresh, so when N threads hit a stale cache
/// at once, exactly one performs the `getReadVersion` and the rest reuse
/// its result.
#[derive(Default)]
pub struct ReadVersionCache {
    state: Mutex<Option<(u64, u64)>>, // (version, fetched_at_ticks)
    /// Monotonic tick source for staleness. `None` uses the database's
    /// logical clock; tests inject a counter to pin staleness decisions
    /// independent of the database under test.
    ticks: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl std::fmt::Debug for ReadVersionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadVersionCache")
            .field("state", &self.state)
            .field("has_tick_source", &self.ticks.is_some())
            .finish()
    }
}

impl ReadVersionCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache whose staleness clock is the given monotonic tick source
    /// instead of the database's logical clock. Ticks are in the same
    /// unit as `max_staleness_ms`.
    pub fn with_tick_source(ticks: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        ReadVersionCache {
            state: Mutex::new(None),
            ticks: Some(Arc::new(ticks)),
        }
    }

    fn now_ticks(&self, db: &Database) -> u64 {
        match &self.ticks {
            Some(ticks) => ticks(),
            None => db.clock_ms(),
        }
    }

    /// Begin a transaction, reusing a cached read version when it is no
    /// older than `max_staleness_ms` and at least `min_version` (the last
    /// version previously observed by this client, so the client never goes
    /// backwards in time). A stale cache triggers exactly one GRV even
    /// under concurrency (the refresh happens under the cache lock; GRV
    /// itself is lock-free, so nothing nests under this lock).
    pub fn create_transaction(
        &self,
        db: &Database,
        max_staleness_ms: u64,
        min_version: u64,
    ) -> Result<Transaction> {
        let now = self.now_ticks(db);
        let version = {
            let mut st = lock_ranked(&self.state, LockRank::ReadVersionCache);
            match *st {
                Some((version, fetched_at))
                    if now.saturating_sub(fetched_at) <= max_staleness_ms
                        && version >= min_version =>
                {
                    version
                }
                _ => {
                    let version = db.get_read_version();
                    *st = Some((version, now));
                    version
                }
            }
        };
        db.create_transaction_at(version)
    }

    /// Record a version observed via some other channel (e.g. a commit),
    /// refreshing the cache for free.
    pub fn observe(&self, db: &Database, version: u64) {
        let now = self.now_ticks(db);
        let mut st = lock_ranked(&self.state, LockRank::ReadVersionCache);
        if st.is_none_or(|(v, _)| version >= v) {
            *st = Some((version, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::MutationType;
    use crate::range::RangeOptions;

    #[test]
    fn basic_set_get_across_transactions() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn snapshot_isolation_between_transactions() {
        let db = Database::new();
        let t1 = db.create_transaction();
        // Concurrent commit after t1's read version.
        let t2 = db.create_transaction();
        t2.set(b"k", b"v2");
        t2.commit().unwrap();
        // t1 still reads its snapshot (empty).
        assert_eq!(t1.get(b"k").unwrap(), None);
    }

    #[test]
    fn write_write_no_conflict_without_read() {
        // Blind writes never conflict: only read-write conflicts abort.
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        t1.set(b"k", b"1");
        t2.set(b"k", b"2");
        t1.commit().unwrap();
        t2.commit().unwrap();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"k").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn read_write_conflict_aborts() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        // t1 reads k, t2 writes k and commits first.
        assert_eq!(t1.get(b"k").unwrap(), None);
        t2.set(b"k", b"v");
        t2.commit().unwrap();
        t1.set(b"other", b"x");
        assert_eq!(t1.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn snapshot_read_does_not_conflict() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        assert_eq!(t1.get_snapshot(b"k").unwrap(), None);
        t2.set(b"k", b"v");
        t2.commit().unwrap();
        t1.set(b"other", b"x");
        t1.commit().unwrap(); // no conflict: the read was at snapshot level
    }

    #[test]
    fn atomic_adds_do_not_conflict() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        t1.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())
            .unwrap();
        t2.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())
            .unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // would abort if ADD created a read conflict
        let tx = db.create_transaction();
        let v = tx.get(b"ctr").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 2);
    }

    #[test]
    fn read_modify_write_conflicts_where_atomic_would_not() {
        // The contrast that motivates atomic-mutation indexes (§7).
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        let read = |t: &Transaction| {
            t.get(b"ctr")
                .unwrap()
                .map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()))
        };
        let v1 = read(&t1);
        let v2 = read(&t2);
        t1.set(b"ctr", &(v1 + 1).to_le_bytes());
        t2.set(b"ctr", &(v2 + 1).to_le_bytes());
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn range_conflict_detected() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        let _ = t1.get_range(b"a", b"z", RangeOptions::default()).unwrap();
        t2.set(b"m", b"v");
        t2.commit().unwrap();
        t1.set(b"zz", b"x");
        assert_eq!(t1.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn commit_conflict_only_with_newer_writes() {
        let db = Database::new();
        // Commit a write, then start a transaction that reads it: no
        // conflict because the write predates the read version.
        let t = db.create_transaction();
        t.set(b"k", b"v");
        t.commit().unwrap();
        let t1 = db.create_transaction();
        assert_eq!(t1.get(b"k").unwrap(), Some(b"v".to_vec()));
        t1.set(b"k2", b"v2");
        t1.commit().unwrap();
    }

    #[test]
    fn versionstamped_key_gets_commit_version() {
        let db = Database::new();
        let tx = db.create_transaction();
        // key = prefix + 10-byte placeholder, offset suffix = 7.
        let mut key = b"prefix-".to_vec();
        key.extend_from_slice(&[0xFF; 10]);
        key.extend_from_slice(&7u32.to_le_bytes());
        tx.mutate(MutationType::SetVersionstampedKey, &key, b"val")
            .unwrap();
        tx.commit().unwrap();
        let version = tx.committed_version().unwrap();

        let tx = db.create_transaction();
        let kvs = tx
            .get_range(b"prefix-", b"prefix.", RangeOptions::default())
            .unwrap();
        assert_eq!(kvs.len(), 1);
        let stamped = &kvs[0].key[7..15];
        assert_eq!(u64::from_be_bytes(stamped.try_into().unwrap()), version);
        assert_eq!(kvs[0].value, b"val");
    }

    #[test]
    fn versionstamped_value_gets_commit_version() {
        let db = Database::new();
        let tx = db.create_transaction();
        let mut param = vec![0xFF; 10];
        param.extend_from_slice(b"-suffix");
        param.extend_from_slice(&0u32.to_le_bytes());
        tx.mutate(MutationType::SetVersionstampedValue, b"k", &param)
            .unwrap();
        tx.commit().unwrap();
        let version = tx.committed_version().unwrap();

        let tx = db.create_transaction();
        let v = tx.get(b"k").unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(v[0..8].try_into().unwrap()), version);
        assert_eq!(&v[10..], b"-suffix");
    }

    #[test]
    fn commit_versions_strictly_increase() {
        let db = Database::new();
        let mut last = 0;
        for i in 0..10u32 {
            let tx = db.create_transaction();
            tx.set(format!("k{i}").as_bytes(), b"v");
            tx.commit().unwrap();
            let v = tx.committed_version().unwrap();
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn clock_drives_versions_and_expiry() {
        let opts = DatabaseOptions {
            mvcc_window_versions: 5_000 * VERSIONS_PER_MS,
            ..DatabaseOptions::default()
        };
        let db = Database::with_options(opts);

        let t_old = db.create_transaction();
        db.advance_clock(10_000); // 10 logical seconds pass
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        // The old transaction's read version predates the window now.
        assert_eq!(t_old.get(b"k"), Err(Error::TransactionTooOld));
    }

    #[test]
    fn transaction_time_limit_enforced() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        db.advance_clock(6_000);
        assert_eq!(tx.commit(), Err(Error::TransactionTooOld));
    }

    #[test]
    fn transaction_size_limit_enforced() {
        let opts = DatabaseOptions {
            transaction_size_limit: 1_000,
            ..DatabaseOptions::default()
        };
        let db = Database::with_options(opts);
        let tx = db.create_transaction();
        for i in 0..20u32 {
            tx.set(format!("key-{i}").as_bytes(), &[0u8; 64]);
        }
        assert!(matches!(
            tx.commit(),
            Err(Error::TransactionTooLarge { .. })
        ));
    }

    #[test]
    fn run_retries_conflicts() {
        let db = Database::new();
        let attempts = std::cell::Cell::new(0);
        db.run(|tx| {
            attempts.set(attempts.get() + 1);
            let _ = tx.get(b"contended")?;
            if attempts.get() == 1 {
                // Simulate an interleaved writer on the first attempt.
                let other = db.create_transaction();
                other.set(b"contended", b"x");
                other.commit().unwrap();
            }
            tx.set(b"contended", b"mine");
            Ok(())
        })
        .unwrap();
        assert_eq!(attempts.get(), 2);
    }

    #[test]
    fn read_version_cache_avoids_grv() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();

        let cache = ReadVersionCache::new();
        let before = db.grv_call_count();
        let t1 = cache.create_transaction(&db, 1_000, 0).unwrap();
        let t2 = cache.create_transaction(&db, 1_000, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 1); // second reused cache
        assert_eq!(t1.read_version(), t2.read_version());

        // Stale cache refreshes after the staleness bound.
        db.advance_clock(2_000);
        let _t3 = cache.create_transaction(&db, 1_000, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 2);
    }

    #[test]
    fn read_version_cache_respects_min_version() {
        let db = Database::new();
        let cache = ReadVersionCache::new();
        let _ = cache.create_transaction(&db, 10_000, 0).unwrap();
        // Commit something; a client that observed that commit insists on
        // reading at least that version.
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        let min = tx.committed_version().unwrap();
        let t = cache.create_transaction(&db, 10_000, min).unwrap();
        assert!(t.read_version() >= min);
        assert_eq!(t.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn read_version_cache_staleness_with_injected_ticks() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();

        // Staleness runs on the injected counter: the database clock
        // never moves in this test.
        let ticks = Arc::new(AtomicU64::new(0));
        let t2 = ticks.clone();
        let cache = ReadVersionCache::with_tick_source(move || t2.load(Ordering::Relaxed));

        let before = db.grv_call_count();
        let _ = cache.create_transaction(&db, 100, 0).unwrap();
        ticks.store(100, Ordering::Relaxed); // exactly at the bound: fresh
        let _ = cache.create_transaction(&db, 100, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 1);
        ticks.store(101, Ordering::Relaxed); // one past: stale
        let _ = cache.create_transaction(&db, 100, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 2);
    }

    #[test]
    fn read_version_cache_coalesces_concurrent_refreshes() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();

        let cache = Arc::new(ReadVersionCache::new());
        // Warm, then make stale.
        let _ = cache.create_transaction(&db, 1_000, 0).unwrap();
        db.advance_clock(5_000);

        let before = db.grv_call_count();
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let db = db.clone();
                let cache = cache.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.create_transaction(&db, 1_000, 0).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // The refresh happened under the cache lock: one GRV, seven reuses.
        assert_eq!(db.grv_call_count(), before + 1);
    }

    #[test]
    fn shard_masks_cover_their_ranges() {
        // A point write conflict spans one shard.
        let key = b"t3/k42".to_vec();
        let end = crate::key_after(&key);
        assert_eq!(range_shard_mask(&key, &end).count_ones(), 1);
        // A range within one two-byte prefix stays on one shard.
        assert_eq!(range_shard_mask(b"t3/a", b"t3/z").count_ones(), 1);
        // A wide range covers every shard.
        assert_eq!(
            range_shard_mask(b"a", b"z"),
            u16::MAX >> (16 - CONFLICT_SHARDS)
        );
        // An end key that equals the two-byte prefix excludes that prefix.
        assert_eq!(
            range_shard_mask(b"t3", b"t4"),
            1 << shard_of_prefix(prefix_value(b"t3"))
        );
        // Membership: any key inside a range maps into the range's mask.
        let (begin, end) = (b"ab".to_vec(), b"ae/tail".to_vec());
        let mask = range_shard_mask(&begin, &end);
        for key in [&b"ab"[..], b"abz", b"ac", b"ad/x", b"ae", b"ae/taik"] {
            assert!(
                mask & (1 << shard_of_prefix(prefix_value(key))) != 0,
                "key {key:?} escapes mask {mask:#018b}"
            );
        }
        // Regression: an end of the form [b, 0x00] — key_after of the
        // one-byte key [b] — still admits [b] itself, whose zero-padded
        // prefix equals end's own. Its shard must stay in the mask even
        // when the range is narrow enough to dodge the full-mask
        // fallback: [b"a\xf5", b"b\x00") contains b"b".
        let end = crate::key_after(b"b");
        let mask = range_shard_mask(b"a\xf5", &end);
        assert!(
            mask & (1 << shard_of_prefix(prefix_value(b"b"))) != 0,
            "one-byte key b\"b\" escapes mask {mask:#018b} for range [a\\xf5, b\\x00)"
        );
    }

    #[test]
    fn disjoint_tenant_commits_use_disjoint_shards() {
        // Tenant prefixes "t0/".."t7/" land on eight distinct shards, the
        // layout the concurrency_scaling bench relies on.
        let mut shards = std::collections::HashSet::new();
        for t in 0..8 {
            let key = format!("t{t}/row");
            let end = crate::key_after(key.as_bytes());
            let mask = range_shard_mask(key.as_bytes(), &end);
            assert_eq!(mask.count_ones(), 1);
            shards.insert(mask);
        }
        assert_eq!(shards.len(), 8);
    }

    #[test]
    fn group_commit_shares_version_and_orders_members() {
        let db = Database::new();
        let batch = (0..3)
            .map(|i| PendingCommit {
                ticket: i,
                commands: vec![Command::Set {
                    key: format!("b{i}").into_bytes(),
                    value: b"v".to_vec(),
                }],
            })
            .collect();
        let results = db.lead_batch(batch);
        assert_eq!(results.len(), 3);
        let receipts: Vec<_> = results.into_iter().map(|(_, r)| r.unwrap()).collect();
        // One version allocation for the whole batch...
        assert!(receipts.iter().all(|r| r.version == receipts[0].version));
        // ...members distinguished by batch order...
        let orders: Vec<_> = receipts.iter().map(|r| r.batch_order).collect();
        assert_eq!(orders, vec![0, 1, 2]);
        // ...and every member's writes visible at that version.
        let tx = db.create_transaction();
        for i in 0..3 {
            assert_eq!(
                tx.get(format!("b{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
    }

    #[test]
    fn leader_panic_hands_leadership_back() {
        let db = Database::new();
        // A leader that dies mid-batch (while holding the store write
        // lock) must abdicate on unwind; otherwise `leader_active` stays
        // set and every later committer parks on the condvar forever.
        db.panic_next_batch
            .store(true, std::sync::atomic::Ordering::Release);
        let worker = {
            let db = db.clone();
            std::thread::spawn(move || {
                let tx = db.create_transaction();
                tx.set(b"doomed", b"v");
                tx.commit()
            })
        };
        assert!(
            worker.join().is_err(),
            "injected leader failure should unwind the committing thread"
        );
        // The cluster keeps accepting commits afterwards.
        let tx = db.create_transaction();
        tx.set(b"survivor", b"v");
        tx.commit().unwrap();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"survivor").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn leader_unwind_fails_followers_instead_of_hanging_them() {
        // Drive the guard directly: a batch of three where the leader
        // (ticket 1) panics must publish `CommitUnknownResult` receipts
        // for the two followers and clear `leader_active`.
        let db = Database::new();
        db.panic_next_batch
            .store(true, std::sync::atomic::Ordering::Release);
        {
            let mut st = lock_ranked(&db.batcher.state, LockRank::CommitBatch);
            st.leader_active = true;
            st.next_ticket = 3;
        }
        let batch: Vec<PendingCommit> = (0..3)
            .map(|i| PendingCommit {
                ticket: i,
                commands: vec![Command::Set {
                    key: format!("f{i}").into_bytes(),
                    value: b"v".to_vec(),
                }],
            })
            .collect();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.lead_and_publish(1, batch)
        }));
        assert!(unwound.is_err(), "injected panic should reach the caller");
        let st = lock_ranked(&db.batcher.state, LockRank::CommitBatch);
        assert!(!st.leader_active, "leadership must be handed back");
        let mut failed: Vec<u64> = st
            .results
            .iter()
            .map(|(t, r)| {
                assert!(
                    matches!(r, Err(Error::CommitUnknownResult)),
                    "follower {t} should see commit_unknown_result, got {r:?}"
                );
                *t
            })
            .collect();
        failed.sort_unstable();
        // Followers 0 and 2 get receipts; the leader's own caller sees
        // the panic directly, so no orphan receipt for ticket 1.
        assert_eq!(failed, vec![0, 2]);
    }

    #[test]
    fn group_commit_batch_pays_one_wal_frame() {
        let db = Database::with_options(DatabaseOptions {
            engine: EngineKind::Paged(PagedConfig::ephemeral(EvictionPolicy::Lru)),
            ..DatabaseOptions::default()
        });
        let before = db.metrics().io_counters().snapshot().log_appends;
        let batch = (0..4)
            .map(|i| PendingCommit {
                ticket: i,
                commands: vec![Command::Set {
                    key: format!("w{i}").into_bytes(),
                    value: vec![0u8; 32],
                }],
            })
            .collect();
        for (_, r) in db.lead_batch(batch) {
            r.unwrap();
        }
        let after = db.metrics().io_counters().snapshot().log_appends;
        assert_eq!(after - before, 1, "4 batched commits, one WAL frame");
    }

    #[test]
    fn batch_member_with_bad_operand_fails_without_partial_writes() {
        let db = Database::new();
        let batch = vec![
            PendingCommit {
                ticket: 0,
                commands: vec![Command::Set {
                    key: b"good".to_vec(),
                    value: b"v".to_vec(),
                }],
            },
            PendingCommit {
                ticket: 1,
                commands: vec![
                    Command::Set {
                        key: b"bad-first".to_vec(),
                        value: b"v".to_vec(),
                    },
                    Command::Atomic {
                        key: b"bad".to_vec(),
                        op: MutationType::Add,
                        param: vec![0u8; 17], // ADD operand too wide
                    },
                ],
            },
        ];
        let results = db.lead_batch(batch);
        assert!(results[0].1.is_ok());
        assert!(results[1].1.is_err());
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"good").unwrap(), Some(b"v".to_vec()));
        // The failed member left nothing behind — not even the Set that
        // preceded its bad atomic.
        assert_eq!(tx.get(b"bad-first").unwrap(), None);
    }

    #[test]
    fn concurrent_commits_from_threads() {
        let db = Database::new();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50 {
                        db.run(|tx| {
                            tx.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())?;
                            tx.set(format!("t{i}-{j}").as_bytes(), b"v");
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let tx = db.create_transaction();
        let v = tx.get(b"ctr").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 400);
    }

    #[test]
    fn concurrent_disjoint_tenants_commit_without_conflicts() {
        let db = Database::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let tx = db.create_transaction();
                        let key = format!("t{t}/row{j}");
                        let _ = tx.get(key.as_bytes()).unwrap();
                        tx.set(key.as_bytes(), b"v");
                        // Disjoint tenants never touch a shared shard, so
                        // a conflict abort here would be a sharding bug.
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let tx = db.create_transaction();
        for t in 0..8 {
            let begin = format!("t{t}/");
            let end = format!("t{t}0");
            let kvs = tx
                .get_range(begin.as_bytes(), end.as_bytes(), RangeOptions::default())
                .unwrap();
            assert_eq!(kvs.len(), 50);
        }
    }
}
