//! The database: commit pipeline, conflict detection, MVCC window
//! management, logical clock, and read-version caching.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rl_storage::SharedIoCounters;

use crate::atomic;
use crate::error::{Error, Result};
use crate::metrics::{Metrics, SharedMetrics};
use crate::storage::{EvictionPolicy, MemoryEngine, PagedEngine, StorageEngine};
use crate::sync::{lock_ranked, LockRank};
use crate::transaction::{Command, Transaction};

/// FoundationDB's documented key size limit (10 kB).
pub const KEY_SIZE_LIMIT: usize = 10_000;
/// FoundationDB's documented value size limit (100 kB).
pub const VALUE_SIZE_LIMIT: usize = 100_000;
/// FoundationDB's documented transaction size limit (10 MB).
pub const TRANSACTION_SIZE_LIMIT: usize = 10_000_000;
/// The 5-second transaction time limit, in (logical) milliseconds.
pub const TRANSACTION_TIME_LIMIT_MS: u64 = 5_000;
/// FoundationDB advances ~1,000,000 versions per second of wall time.
pub const VERSIONS_PER_MS: u64 = 1_000;

/// Which storage engine backs the simulated cluster.
#[derive(Debug, Clone, Default)]
pub enum EngineKind {
    /// The original ordered in-memory multi-version map.
    #[default]
    InMemory,
    /// Disk-backed engine: buffer pool + copy-on-write B-tree + WAL.
    Paged(PagedConfig),
}

impl EngineKind {
    /// Parse an engine spec string — the same grammar as the `RL_ENGINE`
    /// environment variable: `memory`, `paged`, or `paged:<lru|clock|sieve>`
    /// (the paged forms get an ephemeral temp directory). Anything else
    /// falls back to the in-memory engine, mirroring `RL_ENGINE` handling.
    pub fn from_spec(spec: &str) -> EngineKind {
        let mut parts = spec.splitn(2, ':');
        match parts.next() {
            Some("paged") => {
                let eviction = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_default();
                EngineKind::Paged(PagedConfig::ephemeral(eviction))
            }
            _ => EngineKind::InMemory,
        }
    }

    /// Short engine family name: `memory` or `paged`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EngineKind::InMemory => "memory",
            EngineKind::Paged(_) => "paged",
        }
    }

    /// The buffer-pool eviction policy, for paged engines.
    pub fn pool_policy(&self) -> Option<&'static str> {
        match self {
            EngineKind::InMemory => None,
            EngineKind::Paged(cfg) => Some(cfg.eviction.name()),
        }
    }
}

/// Configuration for the disk-backed engine.
#[derive(Debug, Clone)]
pub struct PagedConfig {
    /// Directory holding the page file and WAL (created if missing).
    pub path: PathBuf,
    /// Buffer pool capacity in 4 kB pages (minimum 4).
    pub pool_pages: usize,
    /// Buffer-pool eviction policy.
    pub eviction: EvictionPolicy,
    /// Delete `path` when the database is dropped. Set for the ephemeral
    /// engines `RL_ENGINE=paged` conjures under the OS temp directory;
    /// leave unset to keep a database across processes.
    pub remove_dir_on_drop: bool,
}

impl PagedConfig {
    /// An ephemeral on-disk engine under the OS temp directory, removed
    /// when the database is dropped. Each call gets a distinct directory.
    pub fn ephemeral(eviction: EvictionPolicy) -> PagedConfig {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        PagedConfig {
            path: std::env::temp_dir().join(format!("rl-paged-{}-{n}", std::process::id())),
            pool_pages: 256,
            eviction,
            remove_dir_on_drop: true,
        }
    }
}

/// Tunable limits; defaults match FoundationDB's production limits.
#[derive(Debug, Clone)]
pub struct DatabaseOptions {
    pub transaction_size_limit: usize,
    pub transaction_time_limit_ms: u64,
    /// How many versions of history the resolvers keep for conflict
    /// checking, and the storage keeps for MVCC reads (5 logical seconds).
    pub mvcc_window_versions: u64,
    /// Compact shadowed MVCC versions every N commits.
    pub compaction_interval: u64,
    /// Storage engine. The default honours the `RL_ENGINE` environment
    /// variable (`memory`, `paged`, or `paged:<lru|clock|sieve>`; the
    /// paged forms use an ephemeral temp directory), so the whole test
    /// suite can be re-run against the disk engine without code changes.
    pub engine: EngineKind,
}

impl Default for DatabaseOptions {
    fn default() -> Self {
        DatabaseOptions {
            transaction_size_limit: TRANSACTION_SIZE_LIMIT,
            transaction_time_limit_ms: TRANSACTION_TIME_LIMIT_MS,
            mvcc_window_versions: 5_000 * VERSIONS_PER_MS,
            compaction_interval: 256,
            engine: engine_from_env(),
        }
    }
}

/// Resolve `RL_ENGINE` into an engine selection (default: in-memory).
fn engine_from_env() -> EngineKind {
    match std::env::var("RL_ENGINE") {
        Ok(value) => EngineKind::from_spec(&value),
        Err(_) => EngineKind::InMemory,
    }
}

/// Instantiate the engine an [`EngineKind`] describes, reporting I/O into
/// `io`. Returns the directory to delete on drop, when ephemeral.
fn build_engine(
    kind: &EngineKind,
    io: SharedIoCounters,
) -> (Box<dyn StorageEngine>, Option<PathBuf>) {
    match kind {
        EngineKind::InMemory => (Box::new(MemoryEngine::new()), None),
        EngineKind::Paged(cfg) => {
            let engine = PagedEngine::open(&cfg.path, cfg.pool_pages, cfg.eviction, io)
                .unwrap_or_else(|e| panic!("open paged engine at {}: {e}", cfg.path.display()));
            let cleanup = cfg.remove_dir_on_drop.then(|| cfg.path.clone());
            (Box::new(engine), cleanup)
        }
    }
}

/// One entry in the conflict-detection window: the write conflict ranges of
/// a committed transaction, recorded under its commit version.
#[derive(Debug)]
struct CommittedWrites {
    version: u64,
    ranges: Vec<(Vec<u8>, Vec<u8>)>,
}

#[derive(Debug)]
struct Inner {
    store: Box<dyn StorageEngine>,
    window: VecDeque<CommittedWrites>,
    last_commit_version: u64,
    /// Read versions below this fail with `transaction_too_old`.
    oldest_version: u64,
    commits_since_compaction: u64,
    /// Directory to delete once the engine has shut down (ephemeral paged
    /// engines only).
    cleanup_dir: Option<PathBuf>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(dir) = self.cleanup_dir.take() {
            // Shut the engine down first so its final checkpoint lands
            // before the directory disappears.
            self.store = Box::new(MemoryEngine::new());
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Handle to a simulated FoundationDB cluster. Clone freely; all clones
/// share state. Safe to use from multiple threads: reads are lock-brief,
/// commits serialize on the inner lock exactly as FDB's resolver serializes
/// validation.
#[derive(Clone)]
pub struct Database {
    inner: Arc<Mutex<Inner>>,
    options: Arc<DatabaseOptions>,
    clock_ms: Arc<AtomicU64>,
    metrics: SharedMetrics,
    grv_calls: Arc<AtomicU64>,
}

impl Database {
    /// A fresh, empty database with production-default limits.
    pub fn new() -> Self {
        Database::with_options(DatabaseOptions::default())
    }

    pub fn with_options(options: DatabaseOptions) -> Self {
        let metrics = Metrics::new_shared();
        let (store, cleanup_dir) = build_engine(&options.engine, metrics.io_counters().clone());
        Database {
            inner: Arc::new(Mutex::new(Inner {
                store,
                window: VecDeque::new(),
                last_commit_version: 0,
                oldest_version: 0,
                commits_since_compaction: 0,
                cleanup_dir,
            })),
            options: Arc::new(options),
            clock_ms: Arc::new(AtomicU64::new(0)),
            metrics,
            grv_calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Short description of the storage engine backing this database.
    pub fn engine_description(&self) -> String {
        lock_ranked(&self.inner, LockRank::DatabaseInner)
            .store
            .describe()
    }

    pub fn options(&self) -> &DatabaseOptions {
        &self.options
    }

    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Number of `getReadVersion` round-trips issued so far. The paper's
    /// read-version caching (§4) exists to avoid these.
    pub fn grv_call_count(&self) -> u64 {
        self.grv_calls.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------- logical clock

    /// Current logical time in milliseconds. Time passes only when
    /// [`advance_clock`](Self::advance_clock) is called, keeping the
    /// simulation deterministic.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Relaxed)
    }

    /// Advance logical time; commit versions track the clock so that the
    /// MVCC window expires old read versions as real FDB would.
    pub fn advance_clock(&self, ms: u64) {
        self.clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    // ------------------------------------------------------- transactions

    /// Perform a `getReadVersion` (GRV): the latest commit version.
    pub fn get_read_version(&self) -> u64 {
        let _t = rl_obs::Timer::start("grv");
        self.grv_calls.fetch_add(1, Ordering::Relaxed);
        lock_ranked(&self.inner, LockRank::DatabaseInner).last_commit_version
    }

    /// Begin a transaction at the latest read version.
    pub fn create_transaction(&self) -> Transaction {
        let rv = self.get_read_version();
        Transaction::new(self.clone(), rv, self.clock_ms())
    }

    /// Begin a transaction at a caller-supplied read version (used by the
    /// Record Layer's read-version cache). Fails with `FutureVersion` if the
    /// version has not been committed yet, or `TransactionTooOld` if it has
    /// fallen out of the MVCC window.
    pub fn create_transaction_at(&self, read_version: u64) -> Result<Transaction> {
        let inner = lock_ranked(&self.inner, LockRank::DatabaseInner);
        if read_version > inner.last_commit_version {
            return Err(Error::FutureVersion);
        }
        if read_version < inner.oldest_version {
            return Err(Error::TransactionTooOld);
        }
        drop(inner);
        Ok(Transaction::new(
            self.clone(),
            read_version,
            self.clock_ms(),
        ))
    }

    /// Retry loop, like the bindings' `Database::run`: runs `f` in a fresh
    /// transaction, commits, and retries on retryable errors (conflicts,
    /// transaction-too-old), up to `max_retries`.
    pub fn run<T>(&self, mut f: impl FnMut(&Transaction) -> Result<T>) -> Result<T> {
        const MAX_RETRIES: usize = 64;
        let mut last_err = Error::NotCommitted;
        for _ in 0..MAX_RETRIES {
            let tx = self.create_transaction();
            match f(&tx).and_then(|out| tx.commit().map(|()| out)) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    // -------------------------------------------------------- storage access
    // (crate-internal: used by Transaction for snapshot reads)

    pub(crate) fn storage_get(&self, key: &[u8], read_version: u64) -> Result<Option<Vec<u8>>> {
        let mut inner = lock_ranked(&self.inner, LockRank::DatabaseInner);
        if read_version < inner.oldest_version {
            return Err(Error::TransactionTooOld);
        }
        Ok(inner.store.get(key, read_version))
    }

    pub(crate) fn storage_range(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut inner = lock_ranked(&self.inner, LockRank::DatabaseInner);
        if read_version < inner.oldest_version {
            return Err(Error::TransactionTooOld);
        }
        Ok(inner.store.range(begin, end, read_version, false))
    }

    // --------------------------------------------------------------- commit

    /// Validate a transaction's read conflict ranges against the window of
    /// recently committed writes, then apply its command log at a fresh
    /// commit version. This is the resolver + proxy pipeline of FDB,
    /// collapsed into one critical section. Returns the commit version
    /// plus the keys and bytes written, so the transaction can attribute
    /// its own write traffic (per-transaction tracing).
    pub(crate) fn commit_internal(
        &self,
        read_version: u64,
        read_conflicts: &[(Vec<u8>, Vec<u8>)],
        write_conflicts: &[(Vec<u8>, Vec<u8>)],
        commands: &[Command],
    ) -> Result<(u64, u64, u64)> {
        let mut inner = lock_ranked(&self.inner, LockRank::DatabaseInner);

        if read_version < inner.oldest_version {
            self.metrics.record_commit(false, false);
            return Err(Error::TransactionTooOld);
        }

        // Conflict detection: any committed write range newer than our read
        // version that intersects any of our read ranges aborts us.
        for committed in inner.window.iter().rev() {
            if committed.version <= read_version {
                break; // window is ordered by version
            }
            for (wa, wb) in &committed.ranges {
                for (ra, rb) in read_conflicts {
                    if ranges_intersect(ra, rb, wa, wb) {
                        self.metrics.record_commit(false, true);
                        return Err(Error::NotCommitted);
                    }
                }
            }
        }

        // Assign the commit version: strictly increasing, and at least the
        // clock-implied version so that versions track logical time.
        let clock_version = self.clock_ms() * VERSIONS_PER_MS;
        let version = (inner.last_commit_version + 1).max(clock_version);
        let tr_version = {
            let mut v = [0u8; 10];
            v[0..8].copy_from_slice(&version.to_be_bytes());
            v // batch order 0: every commit gets its own version here
        };

        // Apply the command log in program order.
        let mut keys_written = 0u64;
        let mut bytes_written = 0u64;
        for cmd in commands {
            match cmd {
                Command::Set { key, value } => {
                    keys_written += 1;
                    bytes_written += (key.len() + value.len()) as u64;
                    inner.store.write(key.clone(), Some(value.clone()), version);
                }
                Command::Clear { key } => {
                    inner.store.write(key.clone(), None, version);
                }
                Command::ClearRange { begin, end } => {
                    inner.store.clear_range(begin, end, version);
                }
                Command::Atomic { key, op, param } => {
                    let current = inner.store.get(key, version);
                    let new = atomic::apply(*op, current.as_deref(), param)?;
                    keys_written += 1;
                    bytes_written += (key.len() + new.as_ref().map_or(0, Vec::len)) as u64;
                    inner.store.write(key.clone(), new, version);
                }
                Command::VersionstampedKey {
                    key_payload,
                    offset,
                    value,
                } => {
                    let mut key = key_payload.clone();
                    atomic::fill_versionstamp(&mut key, *offset, &tr_version);
                    keys_written += 1;
                    bytes_written += (key.len() + value.len()) as u64;
                    inner.store.write(key, Some(value.clone()), version);
                }
                Command::VersionstampedValue {
                    key,
                    value_payload,
                    offset,
                } => {
                    let mut value = value_payload.clone();
                    atomic::fill_versionstamp(&mut value, *offset, &tr_version);
                    keys_written += 1;
                    bytes_written += (key.len() + value.len()) as u64;
                    inner.store.write(key.clone(), Some(value), version);
                }
            }
        }

        // Seal the batch: a crash-safe engine persists everything above
        // atomically; a crash before this point loses the whole batch.
        inner.store.commit_batch();

        // Record our write conflict ranges for future validations.
        if !write_conflicts.is_empty() {
            inner.window.push_back(CommittedWrites {
                version,
                ranges: write_conflicts.to_vec(),
            });
        }
        inner.last_commit_version = version;

        // Expire the window and (periodically) compact MVCC history.
        let horizon = version.saturating_sub(self.options.mvcc_window_versions);
        inner.oldest_version = inner.oldest_version.max(horizon);
        while inner.window.front().is_some_and(|c| c.version < horizon) {
            inner.window.pop_front();
        }
        inner.commits_since_compaction += 1;
        if inner.commits_since_compaction >= self.options.compaction_interval {
            inner.commits_since_compaction = 0;
            let oldest = inner.oldest_version;
            inner.store.compact(oldest);
        }

        self.metrics.add_keys_written(keys_written, bytes_written);
        self.metrics.record_commit(true, false);
        Ok((version, keys_written, bytes_written))
    }

    /// Diagnostic: number of live keys at the latest version.
    pub fn live_key_count(&self) -> usize {
        let mut inner = lock_ranked(&self.inner, LockRank::DatabaseInner);
        let version = inner.last_commit_version;
        inner.store.live_key_count(version)
    }

    /// Diagnostic: latest commit version without counting as a GRV call.
    pub fn last_commit_version(&self) -> u64 {
        lock_ranked(&self.inner, LockRank::DatabaseInner).last_commit_version
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_ranked(&self.inner, LockRank::DatabaseInner);
        f.debug_struct("Database")
            .field("engine", &inner.store.describe())
            .field("last_commit_version", &inner.last_commit_version)
            .field("oldest_version", &inner.oldest_version)
            .field("window_len", &inner.window.len())
            .finish()
    }
}

/// Half-open interval intersection.
fn ranges_intersect(a1: &[u8], a2: &[u8], b1: &[u8], b2: &[u8]) -> bool {
    a1 < b2 && b1 < a2
}

/// Client-side read-version cache (§4: "Read version caching optimizes
/// getReadVersion further by completely avoiding communication with
/// FoundationDB if a read version was recently fetched").
#[derive(Debug, Default)]
pub struct ReadVersionCache {
    state: Mutex<Option<(u64, u64)>>, // (version, fetched_at_ms)
}

impl ReadVersionCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a transaction, reusing a cached read version when it is no
    /// older than `max_staleness_ms` and at least `min_version` (the last
    /// version previously observed by this client, so the client never goes
    /// backwards in time).
    pub fn create_transaction(
        &self,
        db: &Database,
        max_staleness_ms: u64,
        min_version: u64,
    ) -> Result<Transaction> {
        let now = db.clock_ms();
        let cached = *lock_ranked(&self.state, LockRank::ReadVersionCache);
        if let Some((version, fetched_at)) = cached {
            if now.saturating_sub(fetched_at) <= max_staleness_ms && version >= min_version {
                return db.create_transaction_at(version);
            }
        }
        let version = db.get_read_version();
        *lock_ranked(&self.state, LockRank::ReadVersionCache) = Some((version, now));
        db.create_transaction_at(version)
    }

    /// Record a version observed via some other channel (e.g. a commit),
    /// refreshing the cache for free.
    pub fn observe(&self, db: &Database, version: u64) {
        let now = db.clock_ms();
        let mut st = lock_ranked(&self.state, LockRank::ReadVersionCache);
        if st.is_none_or(|(v, _)| version >= v) {
            *st = Some((version, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::MutationType;
    use crate::range::RangeOptions;

    #[test]
    fn basic_set_get_across_transactions() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn snapshot_isolation_between_transactions() {
        let db = Database::new();
        let t1 = db.create_transaction();
        // Concurrent commit after t1's read version.
        let t2 = db.create_transaction();
        t2.set(b"k", b"v2");
        t2.commit().unwrap();
        // t1 still reads its snapshot (empty).
        assert_eq!(t1.get(b"k").unwrap(), None);
    }

    #[test]
    fn write_write_no_conflict_without_read() {
        // Blind writes never conflict: only read-write conflicts abort.
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        t1.set(b"k", b"1");
        t2.set(b"k", b"2");
        t1.commit().unwrap();
        t2.commit().unwrap();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"k").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn read_write_conflict_aborts() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        // t1 reads k, t2 writes k and commits first.
        assert_eq!(t1.get(b"k").unwrap(), None);
        t2.set(b"k", b"v");
        t2.commit().unwrap();
        t1.set(b"other", b"x");
        assert_eq!(t1.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn snapshot_read_does_not_conflict() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        assert_eq!(t1.get_snapshot(b"k").unwrap(), None);
        t2.set(b"k", b"v");
        t2.commit().unwrap();
        t1.set(b"other", b"x");
        t1.commit().unwrap(); // no conflict: the read was at snapshot level
    }

    #[test]
    fn atomic_adds_do_not_conflict() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        t1.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())
            .unwrap();
        t2.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())
            .unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // would abort if ADD created a read conflict
        let tx = db.create_transaction();
        let v = tx.get(b"ctr").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 2);
    }

    #[test]
    fn read_modify_write_conflicts_where_atomic_would_not() {
        // The contrast that motivates atomic-mutation indexes (§7).
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        let read = |t: &Transaction| {
            t.get(b"ctr")
                .unwrap()
                .map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()))
        };
        let v1 = read(&t1);
        let v2 = read(&t2);
        t1.set(b"ctr", &(v1 + 1).to_le_bytes());
        t2.set(b"ctr", &(v2 + 1).to_le_bytes());
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn range_conflict_detected() {
        let db = Database::new();
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        let _ = t1.get_range(b"a", b"z", RangeOptions::default()).unwrap();
        t2.set(b"m", b"v");
        t2.commit().unwrap();
        t1.set(b"zz", b"x");
        assert_eq!(t1.commit(), Err(Error::NotCommitted));
    }

    #[test]
    fn commit_conflict_only_with_newer_writes() {
        let db = Database::new();
        // Commit a write, then start a transaction that reads it: no
        // conflict because the write predates the read version.
        let t = db.create_transaction();
        t.set(b"k", b"v");
        t.commit().unwrap();
        let t1 = db.create_transaction();
        assert_eq!(t1.get(b"k").unwrap(), Some(b"v".to_vec()));
        t1.set(b"k2", b"v2");
        t1.commit().unwrap();
    }

    #[test]
    fn versionstamped_key_gets_commit_version() {
        let db = Database::new();
        let tx = db.create_transaction();
        // key = prefix + 10-byte placeholder, offset suffix = 7.
        let mut key = b"prefix-".to_vec();
        key.extend_from_slice(&[0xFF; 10]);
        key.extend_from_slice(&7u32.to_le_bytes());
        tx.mutate(MutationType::SetVersionstampedKey, &key, b"val")
            .unwrap();
        tx.commit().unwrap();
        let version = tx.committed_version().unwrap();

        let tx = db.create_transaction();
        let kvs = tx
            .get_range(b"prefix-", b"prefix.", RangeOptions::default())
            .unwrap();
        assert_eq!(kvs.len(), 1);
        let stamped = &kvs[0].key[7..15];
        assert_eq!(u64::from_be_bytes(stamped.try_into().unwrap()), version);
        assert_eq!(kvs[0].value, b"val");
    }

    #[test]
    fn versionstamped_value_gets_commit_version() {
        let db = Database::new();
        let tx = db.create_transaction();
        let mut param = vec![0xFF; 10];
        param.extend_from_slice(b"-suffix");
        param.extend_from_slice(&0u32.to_le_bytes());
        tx.mutate(MutationType::SetVersionstampedValue, b"k", &param)
            .unwrap();
        tx.commit().unwrap();
        let version = tx.committed_version().unwrap();

        let tx = db.create_transaction();
        let v = tx.get(b"k").unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(v[0..8].try_into().unwrap()), version);
        assert_eq!(&v[10..], b"-suffix");
    }

    #[test]
    fn commit_versions_strictly_increase() {
        let db = Database::new();
        let mut last = 0;
        for i in 0..10u32 {
            let tx = db.create_transaction();
            tx.set(format!("k{i}").as_bytes(), b"v");
            tx.commit().unwrap();
            let v = tx.committed_version().unwrap();
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn clock_drives_versions_and_expiry() {
        let opts = DatabaseOptions {
            mvcc_window_versions: 5_000 * VERSIONS_PER_MS,
            ..DatabaseOptions::default()
        };
        let db = Database::with_options(opts);

        let t_old = db.create_transaction();
        db.advance_clock(10_000); // 10 logical seconds pass
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        // The old transaction's read version predates the window now.
        assert_eq!(t_old.get(b"k"), Err(Error::TransactionTooOld));
    }

    #[test]
    fn transaction_time_limit_enforced() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        db.advance_clock(6_000);
        assert_eq!(tx.commit(), Err(Error::TransactionTooOld));
    }

    #[test]
    fn transaction_size_limit_enforced() {
        let opts = DatabaseOptions {
            transaction_size_limit: 1_000,
            ..DatabaseOptions::default()
        };
        let db = Database::with_options(opts);
        let tx = db.create_transaction();
        for i in 0..20u32 {
            tx.set(format!("key-{i}").as_bytes(), &[0u8; 64]);
        }
        assert!(matches!(
            tx.commit(),
            Err(Error::TransactionTooLarge { .. })
        ));
    }

    #[test]
    fn run_retries_conflicts() {
        let db = Database::new();
        let attempts = std::cell::Cell::new(0);
        db.run(|tx| {
            attempts.set(attempts.get() + 1);
            let _ = tx.get(b"contended")?;
            if attempts.get() == 1 {
                // Simulate an interleaved writer on the first attempt.
                let other = db.create_transaction();
                other.set(b"contended", b"x");
                other.commit().unwrap();
            }
            tx.set(b"contended", b"mine");
            Ok(())
        })
        .unwrap();
        assert_eq!(attempts.get(), 2);
    }

    #[test]
    fn read_version_cache_avoids_grv() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();

        let cache = ReadVersionCache::new();
        let before = db.grv_call_count();
        let t1 = cache.create_transaction(&db, 1_000, 0).unwrap();
        let t2 = cache.create_transaction(&db, 1_000, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 1); // second reused cache
        assert_eq!(t1.read_version(), t2.read_version());

        // Stale cache refreshes after the staleness bound.
        db.advance_clock(2_000);
        let _t3 = cache.create_transaction(&db, 1_000, 0).unwrap();
        assert_eq!(db.grv_call_count(), before + 2);
    }

    #[test]
    fn read_version_cache_respects_min_version() {
        let db = Database::new();
        let cache = ReadVersionCache::new();
        let _ = cache.create_transaction(&db, 10_000, 0).unwrap();
        // Commit something; a client that observed that commit insists on
        // reading at least that version.
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        let min = tx.committed_version().unwrap();
        let t = cache.create_transaction(&db, 10_000, min).unwrap();
        assert!(t.read_version() >= min);
        assert_eq!(t.get(b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn concurrent_commits_from_threads() {
        let db = Database::new();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50 {
                        db.run(|tx| {
                            tx.mutate(MutationType::Add, b"ctr", &1u64.to_le_bytes())?;
                            tx.set(format!("t{i}-{j}").as_bytes(), b"v");
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let tx = db.create_transaction();
        let v = tx.get(b"ctr").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 400);
    }
}
