//! Subspaces: a fixed key prefix under which tuples are packed.
//!
//! The record store abstraction (§3–4) assigns each store a contiguous
//! range of keys; a `Subspace` is exactly that contiguous range, with
//! helpers to pack/unpack tuples relative to the prefix.

use crate::error::{Error, Result};
use crate::tuple::{Tuple, TupleElement};

/// A prefix-delimited region of the global keyspace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subspace {
    prefix: Vec<u8>,
}

impl Subspace {
    /// A subspace rooted at a raw binary prefix.
    pub fn from_bytes(prefix: impl Into<Vec<u8>>) -> Self {
        Subspace {
            prefix: prefix.into(),
        }
    }

    /// A subspace whose prefix is the packed form of `tuple`.
    pub fn from_tuple(tuple: &Tuple) -> Self {
        Subspace {
            prefix: tuple.pack(),
        }
    }

    /// The empty (root) subspace.
    pub fn root() -> Self {
        Subspace { prefix: Vec::new() }
    }

    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// A child subspace: this prefix extended by the packed `tuple`.
    pub fn subspace(&self, tuple: &Tuple) -> Subspace {
        let mut prefix = self.prefix.clone();
        prefix.extend_from_slice(&tuple.pack());
        Subspace { prefix }
    }

    /// Shorthand for a child keyed by a single element.
    pub fn child(&self, el: impl Into<TupleElement>) -> Subspace {
        self.subspace(&Tuple::new().push(el))
    }

    /// Pack a tuple inside this subspace.
    pub fn pack(&self, tuple: &Tuple) -> Vec<u8> {
        let mut out = self.prefix.clone();
        out.extend_from_slice(&tuple.pack());
        out
    }

    /// Pack a tuple containing one incomplete versionstamp, returning the
    /// complete `SET_VERSIONSTAMPED_KEY` operand.
    pub fn pack_versionstamp_operand(&self, tuple: &Tuple) -> Result<Vec<u8>> {
        tuple.pack_versionstamp_operand(&self.prefix)
    }

    /// Recover the tuple from a key in this subspace.
    pub fn unpack(&self, key: &[u8]) -> Result<Tuple> {
        let rest = key
            .strip_prefix(self.prefix.as_slice())
            .ok_or_else(|| Error::Tuple("key does not start with subspace prefix".into()))?;
        Tuple::unpack(rest)
    }

    /// Whether `key` lies inside this subspace.
    pub fn contains(&self, key: &[u8]) -> bool {
        key.starts_with(&self.prefix)
    }

    /// The half-open range of every key in this subspace (prefix itself
    /// excluded — FDB convention `(prefix+0x00, prefix+0xFF)`).
    pub fn range(&self) -> (Vec<u8>, Vec<u8>) {
        let mut begin = self.prefix.clone();
        begin.push(0x00);
        let mut end = self.prefix.clone();
        end.push(0xFF);
        (begin, end)
    }

    /// The half-open range of *all* keys with this prefix, including the
    /// bare prefix key itself: `[prefix, strinc(prefix))`.
    pub fn range_inclusive(&self) -> (Vec<u8>, Vec<u8>) {
        let end = crate::strinc(&self.prefix).unwrap_or_else(|| vec![0xFF; self.prefix.len() + 1]);
        (self.prefix.clone(), end)
    }

    /// The range of keys under `tuple` within this subspace.
    pub fn subrange(&self, tuple: &Tuple) -> (Vec<u8>, Vec<u8>) {
        self.subspace(tuple).range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let ss = Subspace::from_tuple(&Tuple::from(("app", 7i64)));
        let t = Tuple::from(("rec", 42i64));
        let key = ss.pack(&t);
        assert!(ss.contains(&key));
        assert_eq!(ss.unpack(&key).unwrap(), t);
    }

    #[test]
    fn unpack_foreign_key_fails() {
        let ss = Subspace::from_bytes(b"AAA".to_vec());
        assert!(ss.unpack(b"BBBkey").is_err());
    }

    #[test]
    fn nested_subspaces_nest_prefixes() {
        let parent = Subspace::from_bytes(b"P".to_vec());
        let childspace = parent.child(1i64);
        assert!(childspace.prefix().starts_with(parent.prefix()));
        let key = childspace.pack(&Tuple::from(("x",)));
        assert!(parent.contains(&key));
        assert!(childspace.contains(&key));
    }

    #[test]
    fn disjoint_children_do_not_overlap() {
        let parent = Subspace::from_bytes(b"P".to_vec());
        let a = parent.child(1i64);
        let b = parent.child(2i64);
        let key_a = a.pack(&Tuple::from(("k",)));
        assert!(!b.contains(&key_a));
        let (a_begin, a_end) = a.range();
        let (b_begin, _) = b.range();
        assert!(a_begin < a_end);
        assert!(a_end <= b_begin, "sibling ranges must not overlap");
    }

    #[test]
    fn range_excludes_bare_prefix_but_inclusive_includes_it() {
        let ss = Subspace::from_bytes(b"X".to_vec());
        let (begin, end) = ss.range();
        assert!(ss.prefix() < begin.as_slice());
        let (ibegin, iend) = ss.range_inclusive();
        assert_eq!(ibegin, ss.prefix());
        assert!(iend.as_slice() > end.as_slice());
    }
}
