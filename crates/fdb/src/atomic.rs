//! Atomic read-modify-write mutations (§2 of the paper).
//!
//! Atomic mutations occur within a transaction like other writes but do not
//! create *read* conflicts, so concurrent transactions mutating the same key
//! do not abort one another. The Record Layer's atomic-mutation index types
//! (COUNT, SUM, MIN_EVER, MAX_EVER, ...) depend on this property.

use crate::error::{Error, Result};
use crate::version::TR_VERSION_LEN;

/// The atomic operations supported by the simulator; a superset of what the
/// Record Layer uses, matching FoundationDB's `MutationType`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationType {
    /// Little-endian integer addition; shorter operand zero-extended.
    Add,
    /// Bitwise AND.
    BitAnd,
    /// Bitwise OR.
    BitOr,
    /// Bitwise XOR.
    BitXor,
    /// Unsigned little-endian max.
    Max,
    /// Unsigned little-endian min.
    Min,
    /// Lexicographic byte-wise min (used by MIN_EVER index on tuples).
    ByteMin,
    /// Lexicographic byte-wise max (used by MAX_EVER index on tuples).
    ByteMax,
    /// Append `param` to the existing value if the result fits in the value
    /// size limit; otherwise the mutation is ignored.
    AppendIfFits,
    /// Clear the key if the existing value equals `param`.
    CompareAndClear,
    /// Replace the 10-byte placeholder inside the *key* (at the offset given
    /// by the trailing 4-byte little-endian suffix of the key) with the
    /// commit versionstamp, then set the key to `param`.
    SetVersionstampedKey,
    /// Replace the 10-byte placeholder inside the *value* (at the offset
    /// given by the trailing 4-byte little-endian suffix of the param) with
    /// the commit versionstamp.
    SetVersionstampedValue,
}

impl MutationType {
    /// Versionstamp mutations are resolved at commit time rather than being
    /// applied to an existing value.
    pub fn is_versionstamp(&self) -> bool {
        matches!(
            self,
            MutationType::SetVersionstampedKey | MutationType::SetVersionstampedValue
        )
    }
}

/// Pad or truncate `v` to length `n` (zero-extension on the right, i.e. in
/// the little-endian high bytes).
fn resize_le(v: &[u8], n: usize) -> Vec<u8> {
    let mut out = v.to_vec();
    out.resize(n, 0);
    out
}

/// Apply a (non-versionstamp) atomic operation to the current value of a
/// key, producing the new value. `None` as a result means the key is
/// cleared.
///
/// FoundationDB semantics: a missing current value is treated as an empty
/// byte string (for ADD, effectively zero of the operand's width).
pub fn apply(op: MutationType, current: Option<&[u8]>, param: &[u8]) -> Result<Option<Vec<u8>>> {
    match op {
        MutationType::Add => {
            let n = param.len();
            if n == 0 {
                return Ok(Some(Vec::new()));
            }
            if n > 16 {
                return Err(Error::InvalidMutation(format!(
                    "ADD operand too wide: {n} bytes"
                )));
            }
            let cur = resize_le(current.unwrap_or(&[]), n);
            let mut a = [0u8; 16];
            a[..n].copy_from_slice(&cur);
            let mut b = [0u8; 16];
            b[..n].copy_from_slice(param);
            let sum = u128::from_le_bytes(a).wrapping_add(u128::from_le_bytes(b));
            Ok(Some(sum.to_le_bytes()[..n].to_vec()))
        }
        MutationType::BitAnd => {
            let n = param.len();
            let cur = resize_le(current.unwrap_or(&[]), n);
            Ok(Some(cur.iter().zip(param).map(|(a, b)| a & b).collect()))
        }
        MutationType::BitOr => {
            let n = param.len();
            let cur = resize_le(current.unwrap_or(&[]), n);
            Ok(Some(cur.iter().zip(param).map(|(a, b)| a | b).collect()))
        }
        MutationType::BitXor => {
            let n = param.len();
            let cur = resize_le(current.unwrap_or(&[]), n);
            Ok(Some(cur.iter().zip(param).map(|(a, b)| a ^ b).collect()))
        }
        MutationType::Max => {
            let n = param.len().max(current.map_or(0, <[u8]>::len));
            let cur = resize_le(current.unwrap_or(&[]), n);
            let par = resize_le(param, n);
            // Unsigned little-endian comparison: compare from most
            // significant (last) byte down.
            let cur_ge = cur.iter().rev().cmp(par.iter().rev()) != std::cmp::Ordering::Less;
            Ok(Some(if cur_ge { cur } else { par }))
        }
        MutationType::Min => {
            if current.is_none() {
                // FDB: MIN with no existing value stores the param.
                return Ok(Some(param.to_vec()));
            }
            let n = param.len().max(current.map_or(0, <[u8]>::len));
            let cur = resize_le(current.unwrap_or(&[]), n);
            let par = resize_le(param, n);
            let cur_le = cur.iter().rev().cmp(par.iter().rev()) != std::cmp::Ordering::Greater;
            Ok(Some(if cur_le { cur } else { par }))
        }
        MutationType::ByteMin => Ok(Some(match current {
            None => param.to_vec(),
            Some(cur) => {
                if cur <= param {
                    cur.to_vec()
                } else {
                    param.to_vec()
                }
            }
        })),
        MutationType::ByteMax => Ok(Some(match current {
            None => param.to_vec(),
            Some(cur) => {
                if cur >= param {
                    cur.to_vec()
                } else {
                    param.to_vec()
                }
            }
        })),
        MutationType::AppendIfFits => {
            let mut out = current.unwrap_or(&[]).to_vec();
            if out.len() + param.len() <= crate::database::VALUE_SIZE_LIMIT {
                out.extend_from_slice(param);
            }
            Ok(Some(out))
        }
        MutationType::CompareAndClear => {
            if current == Some(param) {
                Ok(None)
            } else {
                Ok(current.map(<[u8]>::to_vec))
            }
        }
        MutationType::SetVersionstampedKey | MutationType::SetVersionstampedValue => Err(
            Error::InvalidMutation("versionstamp mutations are resolved at commit".into()),
        ),
    }
}

/// Split a versionstamp-mutation operand into `(payload, offset)`: the FDB
/// API appends a 4-byte little-endian offset to the end of the key (for
/// `SetVersionstampedKey`) or value (for `SetVersionstampedValue`)
/// indicating where the 10-byte placeholder begins.
pub fn split_versionstamp_operand(data: &[u8]) -> Result<(Vec<u8>, usize)> {
    if data.len() < 4 {
        return Err(Error::InvalidMutation(
            "versionstamp operand shorter than 4-byte offset suffix".into(),
        ));
    }
    let (payload, suffix) = data.split_at(data.len() - 4);
    let offset = u32::from_le_bytes(suffix.try_into().unwrap()) as usize;
    if offset + TR_VERSION_LEN > payload.len() {
        return Err(Error::InvalidMutation(format!(
            "versionstamp offset {offset} out of range for payload of {} bytes",
            payload.len()
        )));
    }
    Ok((payload.to_vec(), offset))
}

/// Fill the 10 transaction-version bytes into `payload` at `offset`.
pub fn fill_versionstamp(payload: &mut [u8], offset: usize, tr_version: &[u8]) {
    payload[offset..offset + TR_VERSION_LEN].copy_from_slice(tr_version);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(v: u64, n: usize) -> Vec<u8> {
        v.to_le_bytes()[..n].to_vec()
    }

    #[test]
    fn add_basic() {
        let out = apply(MutationType::Add, Some(&le(5, 8)), &le(3, 8)).unwrap();
        assert_eq!(out.unwrap(), le(8, 8));
    }

    #[test]
    fn add_missing_value_is_zero() {
        let out = apply(MutationType::Add, None, &le(7, 8)).unwrap();
        assert_eq!(out.unwrap(), le(7, 8));
    }

    #[test]
    fn add_wraps() {
        let out = apply(MutationType::Add, Some(&[0xFF]), &[0x01]).unwrap();
        assert_eq!(out.unwrap(), vec![0x00]);
    }

    #[test]
    fn add_negative_via_twos_complement() {
        // -1 as 8-byte two's complement decrements the counter.
        let minus_one = (-1i64).to_le_bytes();
        let out = apply(MutationType::Add, Some(&le(5, 8)), &minus_one).unwrap();
        assert_eq!(out.unwrap(), le(4, 8));
    }

    #[test]
    fn add_operand_width_controls_result_width() {
        let out = apply(MutationType::Add, Some(&le(300, 8)), &le(1, 2)).unwrap();
        assert_eq!(out.unwrap(), le(301, 2)[..2].to_vec());
    }

    #[test]
    fn bit_ops() {
        assert_eq!(
            apply(MutationType::BitAnd, Some(&[0b1100]), &[0b1010])
                .unwrap()
                .unwrap(),
            vec![0b1000]
        );
        assert_eq!(
            apply(MutationType::BitOr, Some(&[0b1100]), &[0b1010])
                .unwrap()
                .unwrap(),
            vec![0b1110]
        );
        assert_eq!(
            apply(MutationType::BitXor, Some(&[0b1100]), &[0b1010])
                .unwrap()
                .unwrap(),
            vec![0b0110]
        );
    }

    #[test]
    fn min_max_unsigned_le() {
        assert_eq!(
            apply(MutationType::Max, Some(&le(5, 8)), &le(9, 8))
                .unwrap()
                .unwrap(),
            le(9, 8)
        );
        assert_eq!(
            apply(MutationType::Max, Some(&le(9, 8)), &le(5, 8))
                .unwrap()
                .unwrap(),
            le(9, 8)
        );
        assert_eq!(
            apply(MutationType::Min, Some(&le(5, 8)), &le(9, 8))
                .unwrap()
                .unwrap(),
            le(5, 8)
        );
        // Min with absent value stores the operand rather than zero.
        assert_eq!(
            apply(MutationType::Min, None, &le(9, 8)).unwrap().unwrap(),
            le(9, 8)
        );
    }

    #[test]
    fn byte_min_max_lexicographic() {
        assert_eq!(
            apply(MutationType::ByteMin, Some(b"banana"), b"apple")
                .unwrap()
                .unwrap(),
            b"apple".to_vec()
        );
        assert_eq!(
            apply(MutationType::ByteMax, Some(b"banana"), b"apple")
                .unwrap()
                .unwrap(),
            b"banana".to_vec()
        );
        assert_eq!(
            apply(MutationType::ByteMax, None, b"x").unwrap().unwrap(),
            b"x".to_vec()
        );
    }

    #[test]
    fn compare_and_clear() {
        assert_eq!(
            apply(MutationType::CompareAndClear, Some(b"v"), b"v").unwrap(),
            None
        );
        assert_eq!(
            apply(MutationType::CompareAndClear, Some(b"v"), b"w").unwrap(),
            Some(b"v".to_vec())
        );
        assert_eq!(
            apply(MutationType::CompareAndClear, None, b"v").unwrap(),
            None
        );
    }

    #[test]
    fn append_if_fits() {
        assert_eq!(
            apply(MutationType::AppendIfFits, Some(b"ab"), b"cd")
                .unwrap()
                .unwrap(),
            b"abcd".to_vec()
        );
    }

    #[test]
    fn versionstamp_operand_split() {
        let mut data = b"key-\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff-tail".to_vec();
        data.extend_from_slice(&4u32.to_le_bytes());
        let (payload, offset) = split_versionstamp_operand(&data).unwrap();
        assert_eq!(offset, 4);
        assert_eq!(&payload[..4], b"key-");
        let mut p = payload;
        fill_versionstamp(&mut p, offset, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(&p[4..14], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn versionstamp_operand_rejects_bad_offset() {
        let mut data = b"short".to_vec();
        data.extend_from_slice(&3u32.to_le_bytes());
        assert!(split_versionstamp_operand(&data).is_err());
    }
}
