//! Commit versions and versionstamps.
//!
//! FoundationDB assigns every committed transaction a monotonically
//! increasing 8-byte *commit version* plus a 2-byte *batch order* within the
//! version; together they form the 10-byte transaction versionstamp. The
//! Record Layer appends 2 more client-assigned bytes (a per-transaction
//! counter) to form the 12-byte versionstamps that VERSION indexes store
//! (§7 of the paper).

use crate::error::{Error, Result};

/// Length of the transaction-assigned portion of a versionstamp.
pub const TR_VERSION_LEN: usize = 10;
/// Length of a complete versionstamp (transaction portion + user portion).
pub const VERSIONSTAMP_LEN: usize = 12;

/// A 12-byte versionstamp: 10 transaction bytes (8-byte commit version +
/// 2-byte batch order, assigned by the database at commit) and 2 user bytes
/// (assigned by the client, e.g. the Record Layer's per-transaction record
/// counter).
///
/// An *incomplete* versionstamp has placeholder `0xFF` transaction bytes and
/// is completed when the transaction commits; see
/// [`Transaction::mutate`](crate::Transaction) with the versionstamped-key /
/// versionstamped-value mutations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Versionstamp {
    bytes: [u8; VERSIONSTAMP_LEN],
    complete: bool,
}

impl Versionstamp {
    /// Create a complete versionstamp from a commit version, batch order,
    /// and user version.
    pub fn complete(commit_version: u64, batch_order: u16, user_version: u16) -> Self {
        let mut bytes = [0u8; VERSIONSTAMP_LEN];
        bytes[0..8].copy_from_slice(&commit_version.to_be_bytes());
        bytes[8..10].copy_from_slice(&batch_order.to_be_bytes());
        bytes[10..12].copy_from_slice(&user_version.to_be_bytes());
        Versionstamp {
            bytes,
            complete: true,
        }
    }

    /// Create an incomplete versionstamp carrying only the 2-byte user
    /// version; the transaction bytes are `0xFF` placeholders to be filled
    /// in at commit.
    pub fn incomplete(user_version: u16) -> Self {
        let mut bytes = [0xFFu8; VERSIONSTAMP_LEN];
        bytes[10..12].copy_from_slice(&user_version.to_be_bytes());
        Versionstamp {
            bytes,
            complete: false,
        }
    }

    /// Reconstruct a complete versionstamp from its 12-byte wire form.
    pub fn from_bytes(bytes: [u8; VERSIONSTAMP_LEN]) -> Self {
        let complete = bytes[0..TR_VERSION_LEN] != [0xFF; TR_VERSION_LEN];
        Versionstamp { bytes, complete }
    }

    /// Parse from a slice, which must be exactly 12 bytes.
    pub fn try_from_slice(slice: &[u8]) -> Result<Self> {
        let arr: [u8; VERSIONSTAMP_LEN] = slice.try_into().map_err(|_| {
            Error::Tuple(format!(
                "versionstamp must be 12 bytes, got {}",
                slice.len()
            ))
        })?;
        Ok(Versionstamp::from_bytes(arr))
    }

    /// The full 12-byte representation.
    pub fn as_bytes(&self) -> &[u8; VERSIONSTAMP_LEN] {
        &self.bytes
    }

    /// The 10 transaction bytes (commit version + batch order).
    pub fn transaction_version(&self) -> &[u8] {
        &self.bytes[0..TR_VERSION_LEN]
    }

    /// The 8-byte commit version, if complete.
    pub fn commit_version(&self) -> Option<u64> {
        if self.complete {
            Some(u64::from_be_bytes(self.bytes[0..8].try_into().unwrap()))
        } else {
            None
        }
    }

    /// The 2-byte batch order within the commit version.
    pub fn batch_order(&self) -> u16 {
        u16::from_be_bytes(self.bytes[8..10].try_into().unwrap())
    }

    /// The 2-byte client-assigned user version.
    pub fn user_version(&self) -> u16 {
        u16::from_be_bytes(self.bytes[10..12].try_into().unwrap())
    }

    /// Whether the transaction bytes have been assigned.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Produce the completed versionstamp given the 10 transaction bytes
    /// assigned at commit. Panics if already complete.
    pub fn with_transaction_version(&self, tr_version: &[u8]) -> Result<Self> {
        if self.complete {
            return Err(Error::Tuple("versionstamp is already complete".into()));
        }
        if tr_version.len() != TR_VERSION_LEN {
            return Err(Error::Tuple(format!(
                "transaction version must be 10 bytes, got {}",
                tr_version.len()
            )));
        }
        let mut bytes = self.bytes;
        bytes[0..TR_VERSION_LEN].copy_from_slice(tr_version);
        Ok(Versionstamp {
            bytes,
            complete: true,
        })
    }
}

impl std::fmt::Debug for Versionstamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.complete {
            write!(
                f,
                "Versionstamp({}.{}.{})",
                self.commit_version().unwrap(),
                self.batch_order(),
                self.user_version()
            )
        } else {
            write!(f, "Versionstamp(incomplete.{})", self.user_version())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_roundtrip() {
        let v = Versionstamp::complete(123456789, 7, 42);
        assert!(v.is_complete());
        assert_eq!(v.commit_version(), Some(123456789));
        assert_eq!(v.batch_order(), 7);
        assert_eq!(v.user_version(), 42);
        let w = Versionstamp::from_bytes(*v.as_bytes());
        assert_eq!(v, w);
    }

    #[test]
    fn incomplete_then_completed() {
        let v = Versionstamp::incomplete(9);
        assert!(!v.is_complete());
        assert_eq!(v.user_version(), 9);
        assert_eq!(v.commit_version(), None);

        let tr: [u8; 10] = [0, 0, 0, 0, 0, 0, 0, 5, 0, 1];
        let c = v.with_transaction_version(&tr).unwrap();
        assert!(c.is_complete());
        assert_eq!(c.commit_version(), Some(5));
        assert_eq!(c.batch_order(), 1);
        assert_eq!(c.user_version(), 9);
    }

    #[test]
    fn completing_a_complete_stamp_errors() {
        let v = Versionstamp::complete(1, 0, 0);
        assert!(v.with_transaction_version(&[0; 10]).is_err());
    }

    #[test]
    fn ordering_follows_commit_version_then_batch_then_user() {
        let a = Versionstamp::complete(1, 0, 0);
        let b = Versionstamp::complete(1, 0, 1);
        let c = Versionstamp::complete(1, 1, 0);
        let d = Versionstamp::complete(2, 0, 0);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn incomplete_sorts_after_all_complete() {
        // 0xFF placeholder bytes make incomplete stamps sort last, which is
        // what lets versionstamped keys be ordered correctly pre-commit.
        let complete = Versionstamp::complete(u64::MAX - 1, 0, 0);
        let incomplete = Versionstamp::incomplete(0);
        assert!(complete < incomplete);
    }

    #[test]
    fn try_from_slice_validates_length() {
        assert!(Versionstamp::try_from_slice(&[0u8; 11]).is_err());
        assert!(Versionstamp::try_from_slice(&[0u8; 12]).is_ok());
    }
}
