//! The directory layer: maps long-but-meaningful path names to short
//! integer prefixes (§2 of the paper), using a sliding-window
//! high-contention allocator so concurrent transactions can allocate unique
//! small integers without conflicting on a single counter key.

use crate::error::{Error, Result};
use crate::subspace::Subspace;
use crate::transaction::Transaction;
use crate::tuple::{Tuple, TupleElement};
use crate::RangeOptions;

/// Reserved prefix for directory-layer metadata, mirroring FDB's `\xFE`.
const DIRECTORY_PREFIX: u8 = 0xFE;

/// The directory layer handle. All state is stored in the database; the
/// handle itself holds only the metadata subspaces.
#[derive(Debug, Clone)]
pub struct DirectoryLayer {
    /// Path-to-prefix mappings: (node_subspace, path...) -> allocated id.
    node_subspace: Subspace,
    /// Allocator state: counters and candidate claims.
    allocator: HighContentionAllocator,
}

impl Default for DirectoryLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl DirectoryLayer {
    pub fn new() -> Self {
        let root = Subspace::from_bytes(vec![DIRECTORY_PREFIX]);
        DirectoryLayer {
            node_subspace: root.child("nodes"),
            allocator: HighContentionAllocator::new(root.child("alloc")),
        }
    }

    fn path_key(&self, path: &[&str]) -> Vec<u8> {
        let mut t = Tuple::new();
        for p in path {
            t.add(*p);
        }
        self.node_subspace.pack(&t)
    }

    /// Open the directory at `path`, creating it (and allocating a fresh
    /// short prefix) if absent. Returns the subspace rooted at the
    /// directory's allocated prefix.
    pub fn create_or_open(&self, tx: &Transaction, path: &[&str]) -> Result<Subspace> {
        if path.is_empty() {
            return Err(Error::Directory("cannot open the root directory".into()));
        }
        let key = self.path_key(path);
        if let Some(existing) = tx.get(&key)? {
            let t = Tuple::unpack(&existing)?;
            let id = t
                .get(0)
                .and_then(TupleElement::as_int)
                .ok_or_else(|| Error::Directory("corrupt directory entry".into()))?;
            return Ok(Subspace::from_tuple(&Tuple::new().push(id)));
        }
        let id = self.allocator.allocate(tx)?;
        tx.try_set(&key, &Tuple::new().push(id).pack())?;
        Ok(Subspace::from_tuple(&Tuple::new().push(id)))
    }

    /// Open an existing directory; error if it does not exist.
    pub fn open(&self, tx: &Transaction, path: &[&str]) -> Result<Subspace> {
        let key = self.path_key(path);
        match tx.get(&key)? {
            Some(existing) => {
                let t = Tuple::unpack(&existing)?;
                let id = t
                    .get(0)
                    .and_then(TupleElement::as_int)
                    .ok_or_else(|| Error::Directory("corrupt directory entry".into()))?;
                Ok(Subspace::from_tuple(&Tuple::new().push(id)))
            }
            None => Err(Error::Directory(format!(
                "directory {path:?} does not exist"
            ))),
        }
    }

    /// Whether a directory exists at `path`.
    pub fn exists(&self, tx: &Transaction, path: &[&str]) -> Result<bool> {
        Ok(tx.get(&self.path_key(path))?.is_some())
    }

    /// List the immediate children of `path` (empty slice = root).
    pub fn list(&self, tx: &Transaction, path: &[&str]) -> Result<Vec<String>> {
        let mut t = Tuple::new();
        for p in path {
            t.add(*p);
        }
        let sub = self.node_subspace.subspace(&t);
        let (begin, end) = sub.range();
        let kvs = tx.get_range(&begin, &end, RangeOptions::default())?;
        let mut out = Vec::new();
        for kv in kvs {
            let rest = sub.unpack(&kv.key)?;
            // Only immediate children: one extra path element.
            if rest.len() == 1 {
                if let Some(name) = rest.get(0).and_then(TupleElement::as_str) {
                    out.push(name.to_string());
                }
            }
        }
        Ok(out)
    }

    /// Remove the directory entry at `path`. The caller is responsible for
    /// clearing the directory's contents (by prefix) first.
    pub fn remove(&self, tx: &Transaction, path: &[&str]) -> Result<()> {
        let key = self.path_key(path);
        if tx.get(&key)?.is_none() {
            return Err(Error::Directory(format!(
                "directory {path:?} does not exist"
            )));
        }
        tx.clear(&key);
        Ok(())
    }
}

/// The sliding-window allocator: returns unique integers while keeping
/// allocated values small. Counts allocations per window with an atomic
/// ADD (never a conflict), claims candidates with a snapshot-read + write
/// conflict so two claimants of the same candidate cannot both commit, and
/// advances the window as it fills.
#[derive(Debug, Clone)]
pub struct HighContentionAllocator {
    counters: Subspace,
    recent: Subspace,
    window_size: i64,
}

impl HighContentionAllocator {
    pub fn new(subspace: Subspace) -> Self {
        HighContentionAllocator {
            counters: subspace.child("c"),
            recent: subspace.child("r"),
            window_size: 64,
        }
    }

    /// Allocate a unique integer, unique even across concurrently
    /// committing transactions.
    pub fn allocate(&self, tx: &Transaction) -> Result<i64> {
        // Find the current window start: the largest counter key.
        let (cbegin, cend) = self.counters.range();
        let latest =
            tx.get_range_snapshot(&cbegin, &cend, RangeOptions::new().limit(1).reverse(true))?;
        let mut window_start: i64 = match latest.first() {
            Some(kv) => self
                .counters
                .unpack(&kv.key)?
                .get(0)
                .and_then(TupleElement::as_int)
                .unwrap_or(0),
            None => 0,
        };

        loop {
            // Count this allocation in the window (atomic; conflict-free).
            let counter_key = self.counters.pack(&Tuple::new().push(window_start));
            tx.mutate(
                crate::atomic::MutationType::Add,
                &counter_key,
                &1u64.to_le_bytes(),
            )?;
            let count = tx
                .get_snapshot(&counter_key)?
                .map(|v| {
                    let mut buf = [0u8; 8];
                    buf[..v.len().min(8)].copy_from_slice(&v[..v.len().min(8)]);
                    u64::from_le_bytes(buf)
                })
                .unwrap_or(0);

            if count as i64 > self.window_size {
                // Window exhausted: advance and retire old window state.
                let next = window_start + self.window_size;
                let (rbegin, _) = self.recent.range();
                let retire_end = self.recent.pack(&Tuple::new().push(next));
                tx.clear_range(&rbegin, &retire_end);
                window_start = next;
                continue;
            }

            // Claim a candidate within the window. The snapshot read sees no
            // conflict, but the write conflict on the candidate key ensures
            // two transactions claiming the same candidate cannot both
            // commit (the "distinguished key" pattern from §10.1).
            let candidate = window_start + (count as i64 - 1).max(0) % self.window_size;
            let candidate_key = self.recent.pack(&Tuple::new().push(candidate));
            if tx.get_snapshot(&candidate_key)?.is_none() {
                tx.try_set(&candidate_key, &[])?;
                tx.add_read_conflict_key(&candidate_key);
                return Ok(candidate);
            }
            // Candidate taken (e.g. by an earlier allocation in this same
            // transaction); linear-probe within the window.
            let mut probe = candidate + 1;
            loop {
                if probe >= window_start + self.window_size {
                    window_start += self.window_size;
                    break;
                }
                let probe_key = self.recent.pack(&Tuple::new().push(probe));
                if tx.get_snapshot(&probe_key)?.is_none() {
                    tx.try_set(&probe_key, &[])?;
                    tx.add_read_conflict_key(&probe_key);
                    return Ok(probe);
                }
                probe += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    #[test]
    fn create_then_open_returns_same_prefix() {
        let db = Database::new();
        let dl = DirectoryLayer::new();
        let first = db
            .run(|tx| dl.create_or_open(tx, &["app", "users"]))
            .unwrap();
        let second = db.run(|tx| dl.open(tx, &["app", "users"])).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_paths_get_distinct_prefixes() {
        let db = Database::new();
        let dl = DirectoryLayer::new();
        let a = db.run(|tx| dl.create_or_open(tx, &["a"])).unwrap();
        let b = db.run(|tx| dl.create_or_open(tx, &["b"])).unwrap();
        assert_ne!(a, b);
        assert!(!a.contains(b.prefix()) && !b.contains(a.prefix()));
    }

    #[test]
    fn open_missing_fails() {
        let db = Database::new();
        let dl = DirectoryLayer::new();
        let err = db.run(|tx| dl.open(tx, &["nope"])).unwrap_err();
        assert!(matches!(err, Error::Directory(_)));
    }

    #[test]
    fn exists_and_remove() {
        let db = Database::new();
        let dl = DirectoryLayer::new();
        db.run(|tx| dl.create_or_open(tx, &["gone"])).unwrap();
        assert!(db.run(|tx| dl.exists(tx, &["gone"])).unwrap());
        db.run(|tx| dl.remove(tx, &["gone"])).unwrap();
        assert!(!db.run(|tx| dl.exists(tx, &["gone"])).unwrap());
    }

    #[test]
    fn list_immediate_children() {
        let db = Database::new();
        let dl = DirectoryLayer::new();
        db.run(|tx| {
            dl.create_or_open(tx, &["app", "x"])?;
            dl.create_or_open(tx, &["app", "y"])?;
            dl.create_or_open(tx, &["app", "y", "deep"])?;
            Ok(())
        })
        .unwrap();
        let children = db.run(|tx| dl.list(tx, &["app"])).unwrap();
        assert_eq!(children, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn allocator_values_unique_within_transaction() {
        let db = Database::new();
        let alloc = HighContentionAllocator::new(Subspace::from_bytes(b"\xfeA".to_vec()));
        let ids = db
            .run(|tx| {
                let mut out = Vec::new();
                for _ in 0..100 {
                    out.push(alloc.allocate(tx)?);
                }
                Ok(out)
            })
            .unwrap();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            ids.len(),
            "allocator returned duplicates: {ids:?}"
        );
    }

    #[test]
    fn allocator_values_unique_across_transactions() {
        let db = Database::new();
        let alloc = HighContentionAllocator::new(Subspace::from_bytes(b"\xfeA".to_vec()));
        let mut all = Vec::new();
        for _ in 0..50 {
            let id = db.run(|tx| alloc.allocate(tx)).unwrap();
            all.push(id);
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn allocator_values_stay_small() {
        let db = Database::new();
        let alloc = HighContentionAllocator::new(Subspace::from_bytes(b"\xfeA".to_vec()));
        for _ in 0..20 {
            let id = db.run(|tx| alloc.allocate(tx)).unwrap();
            assert!(id < 1024, "allocated id {id} unexpectedly large");
        }
    }

    #[test]
    fn concurrent_allocations_do_not_collide() {
        let db = Database::new();
        let alloc = HighContentionAllocator::new(Subspace::from_bytes(b"\xfeA".to_vec()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                let alloc = alloc.clone();
                std::thread::spawn(move || {
                    (0..25)
                        .map(|_| db.run(|tx| alloc.allocate(tx)).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "concurrent allocator produced duplicates");
    }
}
