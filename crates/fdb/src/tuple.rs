//! The tuple layer: an order-preserving encoding of typed tuples into
//! binary keys (§2 of the paper).
//!
//! The binary ordering of packed tuples equals the natural ordering of the
//! tuples themselves: element-wise, with a cross-type order defined by the
//! type codes (Null < Bytes < String < Nested < Int < Float < Double <
//! False < True < Uuid < Versionstamp). A common tuple prefix packs to a
//! common byte prefix, which is what makes prefix-organized subspaces work.
//!
//! The encoding follows the FoundationDB tuple specification for the types
//! the Record Layer uses.

use crate::error::{Error, Result};
use crate::version::{Versionstamp, VERSIONSTAMP_LEN};

const NULL_CODE: u8 = 0x00;
const BYTES_CODE: u8 = 0x01;
const STRING_CODE: u8 = 0x02;
const NESTED_CODE: u8 = 0x05;
const INT_ZERO_CODE: u8 = 0x14;
const FLOAT_CODE: u8 = 0x20;
const DOUBLE_CODE: u8 = 0x21;
const FALSE_CODE: u8 = 0x26;
const TRUE_CODE: u8 = 0x27;
const UUID_CODE: u8 = 0x30;
const VERSIONSTAMP_CODE: u8 = 0x33;

/// One element of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum TupleElement {
    Null,
    Bytes(Vec<u8>),
    String(String),
    Int(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    Uuid([u8; 16]),
    Versionstamp(Versionstamp),
    Tuple(Tuple),
}

impl TupleElement {
    /// The type-code rank used for cross-type ordering.
    pub fn type_rank(&self) -> u8 {
        match self {
            TupleElement::Null => NULL_CODE,
            TupleElement::Bytes(_) => BYTES_CODE,
            TupleElement::String(_) => STRING_CODE,
            TupleElement::Tuple(_) => NESTED_CODE,
            TupleElement::Int(_) => INT_ZERO_CODE,
            TupleElement::Float(_) => FLOAT_CODE,
            TupleElement::Double(_) => DOUBLE_CODE,
            TupleElement::Bool(false) => FALSE_CODE,
            TupleElement::Bool(true) => TRUE_CODE,
            TupleElement::Uuid(_) => UUID_CODE,
            TupleElement::Versionstamp(_) => VERSIONSTAMP_CODE,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            TupleElement::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            TupleElement::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            TupleElement::Bytes(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            TupleElement::Tuple(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_versionstamp(&self) -> Option<&Versionstamp> {
        match self {
            TupleElement::Versionstamp(v) => Some(v),
            _ => None,
        }
    }
}

impl Eq for TupleElement {}

impl Ord for TupleElement {
    /// Semantic order, guaranteed identical to the byte order of the packed
    /// encodings (verified by property tests).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_element(self, &mut a, &mut None);
        encode_element(other, &mut b, &mut None);
        a.cmp(&b)
    }
}

impl PartialOrd for TupleElement {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! from_impl {
    ($t:ty, $variant:ident $(, $via:ty)?) => {
        impl From<$t> for TupleElement {
            fn from(v: $t) -> Self {
                TupleElement::$variant(v $(as $via)?)
            }
        }
    };
}

from_impl!(i64, Int);
from_impl!(i32, Int, i64);
from_impl!(i16, Int, i64);
from_impl!(u32, Int, i64);
from_impl!(u16, Int, i64);
from_impl!(f32, Float);
from_impl!(f64, Double);
from_impl!(bool, Bool);
from_impl!(String, String);
from_impl!(Vec<u8>, Bytes);

impl From<&str> for TupleElement {
    fn from(v: &str) -> Self {
        TupleElement::String(v.to_string())
    }
}

impl From<&[u8]> for TupleElement {
    fn from(v: &[u8]) -> Self {
        TupleElement::Bytes(v.to_vec())
    }
}

impl From<Versionstamp> for TupleElement {
    fn from(v: Versionstamp) -> Self {
        TupleElement::Versionstamp(v)
    }
}

impl From<Tuple> for TupleElement {
    fn from(v: Tuple) -> Self {
        TupleElement::Tuple(v)
    }
}

/// An ordered sequence of typed elements with an order-preserving binary
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tuple {
    elements: Vec<TupleElement>,
}

impl Tuple {
    pub fn new() -> Self {
        Tuple {
            elements: Vec::new(),
        }
    }

    pub fn from_elements(elements: Vec<TupleElement>) -> Self {
        Tuple { elements }
    }

    /// Append an element (builder style).
    pub fn push(mut self, el: impl Into<TupleElement>) -> Self {
        self.elements.push(el.into());
        self
    }

    /// Append in place.
    pub fn add(&mut self, el: impl Into<TupleElement>) {
        self.elements.push(el.into());
    }

    /// Concatenate another tuple's elements after this one's.
    pub fn concat(mut self, other: &Tuple) -> Self {
        self.elements.extend(other.elements.iter().cloned());
        self
    }

    pub fn elements(&self) -> &[TupleElement] {
        &self.elements
    }

    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<&TupleElement> {
        self.elements.get(i)
    }

    /// The first `n` elements as a new tuple.
    pub fn prefix(&self, n: usize) -> Tuple {
        Tuple {
            elements: self.elements[..n.min(self.elements.len())].to_vec(),
        }
    }

    /// Elements from `n` onward as a new tuple.
    pub fn suffix(&self, n: usize) -> Tuple {
        Tuple {
            elements: self.elements[n.min(self.elements.len())..].to_vec(),
        }
    }

    /// Whether `self` is an element-wise prefix of `other`.
    pub fn is_prefix_of(&self, other: &Tuple) -> bool {
        self.len() <= other.len() && self.elements == other.elements[..self.len()]
    }

    /// Pack into the order-preserving binary encoding.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut vs_offset = None;
        for el in &self.elements {
            encode_element(el, &mut out, &mut vs_offset);
        }
        out
    }

    /// Pack, returning also the byte offset of the (single) incomplete
    /// versionstamp — the caller appends the 4-byte little-endian offset to
    /// form a `SET_VERSIONSTAMPED_KEY` operand.
    pub fn pack_with_versionstamp(&self, prefix: &[u8]) -> Result<(Vec<u8>, usize)> {
        let mut out = prefix.to_vec();
        let mut vs_offset = None;
        for el in &self.elements {
            encode_element(el, &mut out, &mut vs_offset);
        }
        let offset =
            vs_offset.ok_or_else(|| Error::Tuple("no incomplete versionstamp in tuple".into()))?;
        Ok((out, offset))
    }

    /// Build the complete `SET_VERSIONSTAMPED_KEY` operand (packed bytes
    /// plus the trailing 4-byte little-endian placeholder offset).
    pub fn pack_versionstamp_operand(&self, prefix: &[u8]) -> Result<Vec<u8>> {
        let (mut bytes, offset) = self.pack_with_versionstamp(prefix)?;
        bytes.extend_from_slice(&(offset as u32).to_le_bytes());
        Ok(bytes)
    }

    /// Decode a packed tuple.
    pub fn unpack(bytes: &[u8]) -> Result<Tuple> {
        let mut elements = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let (el, next) = decode_element(bytes, pos)?;
            elements.push(el);
            pos = next;
        }
        Ok(Tuple { elements })
    }

    /// The half-open key range of all packed tuples that strictly extend
    /// this tuple: `(pack() + 0x00, pack() + 0xFF)`.
    pub fn range(&self) -> (Vec<u8>, Vec<u8>) {
        let packed = self.pack();
        let mut begin = packed.clone();
        begin.push(0x00);
        let mut end = packed;
        end.push(0xFF);
        (begin, end)
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.pack().cmp(&other.pack())
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pack().hash(state);
    }
}

/// Convenience macro-free constructor: `Tuple::from(("a", 1i64))` style is
/// provided for small arities via `From` impls on tuples of convertibles.
macro_rules! tuple_from {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Into<TupleElement>),+> From<($($name,)+)> for Tuple {
            fn from(t: ($($name,)+)) -> Tuple {
                Tuple { elements: vec![$(t.$idx.into()),+] }
            }
        }
    };
}

tuple_from!(A:0);
tuple_from!(A:0, B:1);
tuple_from!(A:0, B:1, C:2);
tuple_from!(A:0, B:1, C:2, D:3);
tuple_from!(A:0, B:1, C:2, D:3, E:4);
tuple_from!(A:0, B:1, C:2, D:3, E:4, F:5);

// ---------------------------------------------------------------- encoding

fn encode_element(el: &TupleElement, out: &mut Vec<u8>, vs_offset: &mut Option<usize>) {
    match el {
        TupleElement::Null => out.push(NULL_CODE),
        TupleElement::Bytes(b) => {
            out.push(BYTES_CODE);
            escape_nulls(b, out);
            out.push(0x00);
        }
        TupleElement::String(s) => {
            out.push(STRING_CODE);
            escape_nulls(s.as_bytes(), out);
            out.push(0x00);
        }
        TupleElement::Tuple(t) => {
            out.push(NESTED_CODE);
            for inner in &t.elements {
                if matches!(inner, TupleElement::Null) {
                    // Null inside a nested tuple is escaped so the
                    // terminator stays unambiguous.
                    out.push(0x00);
                    out.push(0xFF);
                } else {
                    encode_element(inner, out, vs_offset);
                }
            }
            out.push(0x00);
        }
        TupleElement::Int(i) => encode_int(*i, out),
        TupleElement::Float(f) => {
            out.push(FLOAT_CODE);
            let mut bits = f.to_bits();
            if bits >> 31 == 1 {
                bits = !bits; // negative: flip everything
            } else {
                bits ^= 0x8000_0000; // positive: flip sign bit
            }
            out.extend_from_slice(&bits.to_be_bytes());
        }
        TupleElement::Double(d) => {
            out.push(DOUBLE_CODE);
            let mut bits = d.to_bits();
            if bits >> 63 == 1 {
                bits = !bits;
            } else {
                bits ^= 0x8000_0000_0000_0000;
            }
            out.extend_from_slice(&bits.to_be_bytes());
        }
        TupleElement::Bool(b) => out.push(if *b { TRUE_CODE } else { FALSE_CODE }),
        TupleElement::Uuid(u) => {
            out.push(UUID_CODE);
            out.extend_from_slice(u);
        }
        TupleElement::Versionstamp(v) => {
            out.push(VERSIONSTAMP_CODE);
            if !v.is_complete() {
                *vs_offset = Some(out.len());
            }
            out.extend_from_slice(v.as_bytes());
        }
    }
}

fn escape_nulls(data: &[u8], out: &mut Vec<u8>) {
    for &b in data {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
}

fn encode_int(i: i64, out: &mut Vec<u8>) {
    if i == 0 {
        out.push(INT_ZERO_CODE);
        return;
    }
    if i > 0 {
        let n = (64 - i.leading_zeros() as usize).div_ceil(8);
        out.push(INT_ZERO_CODE + n as u8);
        out.extend_from_slice(&i.to_be_bytes()[8 - n..]);
    } else {
        // Negative: complement within the minimal byte width so that more
        // negative numbers sort first.
        let mag = if i == i64::MIN {
            u64::MAX / 2 + 1
        } else {
            (-i) as u64
        };
        let n = (64 - mag.leading_zeros() as usize).div_ceil(8);
        let max_v = if n == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * n)) - 1
        };
        let encoded = max_v - mag;
        out.push(INT_ZERO_CODE - n as u8);
        out.extend_from_slice(&encoded.to_be_bytes()[8 - n..]);
    }
}

// ---------------------------------------------------------------- decoding

fn decode_element(bytes: &[u8], pos: usize) -> Result<(TupleElement, usize)> {
    let code = *bytes
        .get(pos)
        .ok_or_else(|| Error::Tuple("truncated tuple".into()))?;
    match code {
        NULL_CODE => Ok((TupleElement::Null, pos + 1)),
        BYTES_CODE => {
            let (data, next) = unescape_nulls(bytes, pos + 1)?;
            Ok((TupleElement::Bytes(data), next))
        }
        STRING_CODE => {
            let (data, next) = unescape_nulls(bytes, pos + 1)?;
            let s = String::from_utf8(data)
                .map_err(|e| Error::Tuple(format!("invalid utf-8 in tuple string: {e}")))?;
            Ok((TupleElement::String(s), next))
        }
        NESTED_CODE => {
            let mut elements = Vec::new();
            let mut p = pos + 1;
            loop {
                match bytes.get(p) {
                    None => return Err(Error::Tuple("unterminated nested tuple".into())),
                    Some(0x00) => {
                        if bytes.get(p + 1) == Some(&0xFF) {
                            elements.push(TupleElement::Null);
                            p += 2;
                        } else {
                            return Ok((TupleElement::Tuple(Tuple { elements }), p + 1));
                        }
                    }
                    Some(_) => {
                        let (el, next) = decode_element(bytes, p)?;
                        elements.push(el);
                        p = next;
                    }
                }
            }
        }
        c if (0x0C..=0x1C).contains(&c) => decode_int(bytes, pos),
        FLOAT_CODE => {
            let raw = bytes
                .get(pos + 1..pos + 5)
                .ok_or_else(|| Error::Tuple("truncated float".into()))?;
            let mut bits = u32::from_be_bytes(raw.try_into().unwrap());
            if bits >> 31 == 1 {
                bits ^= 0x8000_0000;
            } else {
                bits = !bits;
            }
            Ok((TupleElement::Float(f32::from_bits(bits)), pos + 5))
        }
        DOUBLE_CODE => {
            let raw = bytes
                .get(pos + 1..pos + 9)
                .ok_or_else(|| Error::Tuple("truncated double".into()))?;
            let mut bits = u64::from_be_bytes(raw.try_into().unwrap());
            if bits >> 63 == 1 {
                bits ^= 0x8000_0000_0000_0000;
            } else {
                bits = !bits;
            }
            Ok((TupleElement::Double(f64::from_bits(bits)), pos + 9))
        }
        FALSE_CODE => Ok((TupleElement::Bool(false), pos + 1)),
        TRUE_CODE => Ok((TupleElement::Bool(true), pos + 1)),
        UUID_CODE => {
            let raw = bytes
                .get(pos + 1..pos + 17)
                .ok_or_else(|| Error::Tuple("truncated uuid".into()))?;
            Ok((TupleElement::Uuid(raw.try_into().unwrap()), pos + 17))
        }
        VERSIONSTAMP_CODE => {
            let raw = bytes
                .get(pos + 1..pos + 1 + VERSIONSTAMP_LEN)
                .ok_or_else(|| Error::Tuple("truncated versionstamp".into()))?;
            Ok((
                TupleElement::Versionstamp(Versionstamp::try_from_slice(raw)?),
                pos + 1 + VERSIONSTAMP_LEN,
            ))
        }
        other => Err(Error::Tuple(format!(
            "unknown tuple type code 0x{other:02x}"
        ))),
    }
}

fn unescape_nulls(bytes: &[u8], mut pos: usize) -> Result<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    loop {
        match bytes.get(pos) {
            None => return Err(Error::Tuple("unterminated bytes/string".into())),
            Some(0x00) => {
                if bytes.get(pos + 1) == Some(&0xFF) {
                    out.push(0x00);
                    pos += 2;
                } else {
                    return Ok((out, pos + 1));
                }
            }
            Some(&b) => {
                out.push(b);
                pos += 1;
            }
        }
    }
}

fn decode_int(bytes: &[u8], pos: usize) -> Result<(TupleElement, usize)> {
    let code = bytes[pos];
    if code == INT_ZERO_CODE {
        return Ok((TupleElement::Int(0), pos + 1));
    }
    if code > INT_ZERO_CODE {
        let n = (code - INT_ZERO_CODE) as usize;
        let raw = bytes
            .get(pos + 1..pos + 1 + n)
            .ok_or_else(|| Error::Tuple("truncated positive int".into()))?;
        let mut buf = [0u8; 8];
        buf[8 - n..].copy_from_slice(raw);
        let v = u64::from_be_bytes(buf);
        if v > i64::MAX as u64 {
            return Err(Error::Tuple("integer overflows i64".into()));
        }
        Ok((TupleElement::Int(v as i64), pos + 1 + n))
    } else {
        let n = (INT_ZERO_CODE - code) as usize;
        let raw = bytes
            .get(pos + 1..pos + 1 + n)
            .ok_or_else(|| Error::Tuple("truncated negative int".into()))?;
        let mut buf = [0u8; 8];
        buf[8 - n..].copy_from_slice(raw);
        let encoded = u64::from_be_bytes(buf);
        let max_v = if n == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * n)) - 1
        };
        let mag = max_v - encoded;
        if mag > i64::MAX as u64 + 1 {
            return Err(Error::Tuple("integer underflows i64".into()));
        }
        let v = if mag == i64::MAX as u64 + 1 {
            i64::MIN
        } else {
            -(mag as i64)
        };
        Ok((TupleElement::Int(v), pos + 1 + n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tuple) {
        let packed = t.pack();
        let back = Tuple::unpack(&packed).unwrap();
        assert_eq!(t, &back, "roundtrip failed for {t:?}");
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(&Tuple::new());
        roundtrip(&Tuple::new().push(TupleElement::Null));
        roundtrip(&Tuple::new().push(b"bytes".as_slice()).push("string"));
        roundtrip(
            &Tuple::new()
                .push(0i64)
                .push(1i64)
                .push(-1i64)
                .push(i64::MAX)
                .push(i64::MIN),
        );
        roundtrip(&Tuple::new().push(1.5f32).push(-2.5f64));
        roundtrip(&Tuple::new().push(true).push(false));
        roundtrip(&Tuple::new().push(TupleElement::Uuid([7; 16])));
        roundtrip(&Tuple::new().push(Versionstamp::complete(42, 1, 2)));
        roundtrip(&Tuple::new().push(Tuple::new().push("nested").push(3i64)));
    }

    #[test]
    fn null_escaping_in_bytes() {
        let t = Tuple::new().push(b"a\x00b".as_slice());
        roundtrip(&t);
        // The embedded null must be escaped so it can't terminate early.
        let packed = t.pack();
        assert!(packed.windows(2).any(|w| w == [0x00, 0xFF]));
    }

    #[test]
    fn nested_null_escaping() {
        let t = Tuple::new().push(Tuple::new().push(TupleElement::Null).push("x"));
        roundtrip(&t);
    }

    #[test]
    fn int_encoding_widths() {
        // 1-byte positive.
        let p = Tuple::new().push(5i64).pack();
        assert_eq!(p, vec![0x15, 5]);
        // Zero.
        assert_eq!(Tuple::new().push(0i64).pack(), vec![0x14]);
        // -1 encodes as 0x13 0xFE.
        assert_eq!(Tuple::new().push(-1i64).pack(), vec![0x13, 0xFE]);
        // 256 needs 2 bytes.
        assert_eq!(Tuple::new().push(256i64).pack(), vec![0x16, 1, 0]);
    }

    #[test]
    fn ordering_ints() {
        let vals = [
            i64::MIN,
            -65536,
            -256,
            -255,
            -1,
            0,
            1,
            255,
            256,
            65536,
            i64::MAX,
        ];
        for w in vals.windows(2) {
            let a = Tuple::new().push(w[0]).pack();
            let b = Tuple::new().push(w[1]).pack();
            assert!(a < b, "{} should pack before {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordering_floats_including_negatives() {
        let vals = [
            f64::NEG_INFINITY,
            -1e9,
            -1.0,
            -0.0,
            0.0,
            1e-9,
            1.0,
            1e9,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let a = Tuple::new().push(w[0]).pack();
            let b = Tuple::new().push(w[1]).pack();
            assert!(a <= b, "{} should pack before {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordering_strings() {
        let a = Tuple::new().push("apple").pack();
        let b = Tuple::new().push("banana").pack();
        let c = Tuple::new().push("banana0").pack();
        assert!(a < b && b < c);
    }

    #[test]
    fn common_prefix_packs_to_common_prefix() {
        // The paper's (state, city) example: shared prefix is preserved.
        let a = Tuple::from(("CA", "San Francisco")).pack();
        let b = Tuple::from(("CA", "San Jose")).pack();
        let prefix = Tuple::from(("CA",)).pack();
        assert!(a.starts_with(&prefix));
        assert!(b.starts_with(&prefix));
    }

    #[test]
    fn range_covers_extensions_only() {
        let t = Tuple::from(("user",));
        let (begin, end) = t.range();
        let child = Tuple::from(("user", 42i64)).pack();
        let sibling = Tuple::from(("user2",)).pack();
        assert!(child > begin && child < end);
        assert!(!(sibling > begin && sibling < end));
        // The bare tuple itself is outside the range.
        assert!(t.pack() < begin);
    }

    #[test]
    fn cross_type_ordering() {
        let null = Tuple::new().push(TupleElement::Null).pack();
        let bytes = Tuple::new().push(b"x".as_slice()).pack();
        let string = Tuple::new().push("x").pack();
        let int = Tuple::new().push(0i64).pack();
        let boolean = Tuple::new().push(false).pack();
        assert!(null < bytes && bytes < string && string < int && int < boolean);
    }

    #[test]
    fn incomplete_versionstamp_offset() {
        let t = Tuple::new().push("sync").push(Versionstamp::incomplete(3));
        let (bytes, offset) = t.pack_with_versionstamp(b"PREFIX").unwrap();
        // The placeholder starts at the reported offset.
        assert_eq!(&bytes[offset..offset + 10], &[0xFF; 10]);
        // User version follows the transaction bytes.
        assert_eq!(&bytes[offset + 10..offset + 12], &3u16.to_be_bytes());
    }

    #[test]
    fn complete_tuple_has_no_versionstamp_offset() {
        let t = Tuple::new().push("a");
        assert!(t.pack_with_versionstamp(b"").is_err());
    }

    #[test]
    fn prefix_suffix_helpers() {
        let t = Tuple::from(("a", 1i64, "b"));
        assert_eq!(t.prefix(2), Tuple::from(("a", 1i64)));
        assert_eq!(t.suffix(2), Tuple::from(("b",)));
        assert!(t.prefix(2).is_prefix_of(&t));
        assert!(!Tuple::from(("z",)).is_prefix_of(&t));
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(Tuple::unpack(&[0x99]).is_err());
        assert!(Tuple::unpack(&[0x01, b'x']).is_err()); // unterminated bytes
        assert!(Tuple::unpack(&[0x21, 0, 0]).is_err()); // truncated double
    }

    #[test]
    fn i64_min_roundtrip_and_order() {
        let min = Tuple::new().push(i64::MIN).pack();
        let min_plus = Tuple::new().push(i64::MIN + 1).pack();
        assert!(min < min_plus);
        roundtrip(&Tuple::new().push(i64::MIN));
    }
}
