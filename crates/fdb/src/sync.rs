//! Lock hygiene for the whole workspace: the poison-recovering [`lock`]
//! helper (promoted out of `database.rs`, where every other crate used to
//! bypass it with bare `.lock().unwrap()`), and a `debug_assertions`-gated
//! **lock-rank tracker** that asserts at runtime that nested acquisitions
//! respect the declared global order.
//!
//! The static half of this contract is `rl_lint`'s `lock-poison` and
//! `lock-order` rules (crates/analysis): the linter proves no call site
//! bypasses these helpers and that the *visible* nested-lock graph is
//! acyclic; the tracker catches the nestings the lexical pass cannot see
//! (a lock taken inside a call into another file). Together they are the
//! safety net the sharded-MVCC / parallel-commit pipeline relies on.
//!
//! The declared order (lower ranks first):
//!
//! 1. [`LockRank::ReadVersionCache`] — the client-side GRV cache; never
//!    held across a database call.
//! 2. [`LockRank::TransactionState`] — a transaction's buffered-write
//!    state; held while the commit pipeline runs.
//! 3. [`LockRank::ConflictShard`] — one shard of the recent-writes
//!    conflict index. An **indexed band**: a thread may hold several
//!    shard locks at once as long as it acquires them in ascending
//!    shard order (see [`lock_ranked_indexed`]).
//! 4. [`LockRank::CommitBatch`] — the group-commit batcher's queue;
//!    taken with shard locks held, released while a batch leader runs.
//! 5. [`LockRank::VersionCore`] — version allocation + compaction
//!    bookkeeping; a short critical section only the batch leader takes.
//! 6. [`LockRank::DatabaseStore`] — the storage engine `RwLock`; the
//!    innermost lock. Acquired shared for MVCC snapshot reads on engines
//!    that support them ([`read_ranked`]) and exclusive for commit
//!    application ([`write_ranked`]).
//!
//! In release builds the tracker compiles away entirely: [`lock_ranked`]
//! is exactly [`lock`].

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Lock a mutex, explicitly recovering from poisoning: a panic in another
/// thread mid-commit leaves the simulated cluster state intact enough for
/// tests to observe, and matches the non-poisoning `parking_lot` semantics
/// this workspace was originally written against.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The global lock order. Acquiring a rank less than or equal to one the
/// current thread already holds is an ordering violation (and a potential
/// deadlock against a thread acquiring in the declared order). The one
/// exception is the indexed [`LockRank::ConflictShard`] band, where
/// same-rank acquisition in ascending index order is part of the protocol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum LockRank {
    /// `ReadVersionCache::state`.
    ReadVersionCache = 10,
    /// `Transaction::state`.
    TransactionState = 20,
    /// One `Database` conflict-index shard (indexed band; ascending
    /// shard order).
    ConflictShard = 30,
    /// The group-commit batcher's shared queue state.
    CommitBatch = 40,
    /// Version allocation + compaction counters (batch leader only).
    VersionCore = 50,
    /// The storage-engine `RwLock` (shared for reads, exclusive for
    /// commit application).
    DatabaseStore = 60,
}

impl LockRank {
    #[cfg(debug_assertions)]
    fn name(self) -> &'static str {
        match self {
            LockRank::ReadVersionCache => "ReadVersionCache::state",
            LockRank::TransactionState => "Transaction::state",
            LockRank::ConflictShard => "Database::shards[i]",
            LockRank::CommitBatch => "CommitBatcher::state",
            LockRank::VersionCore => "Database::core",
            LockRank::DatabaseStore => "Database::store",
        }
    }
}

/// A `MutexGuard` whose acquisition was checked against the thread's held
/// ranks; releases its rank entry on drop.
pub struct RankedGuard<'a, T> {
    /// `Some` except transiently inside [`RankedGuard::wait_on`].
    guard: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    index: Option<usize>,
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait_on")
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait_on")
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(self.rank, self.index);
    }
}

impl<'a, T> RankedGuard<'a, T> {
    /// Block on `cv` until notified, releasing the mutex for the duration
    /// exactly like `Condvar::wait`. The *rank* stays held: a parked
    /// thread does nothing else, and keeping the entry means a spurious
    /// wakeup can immediately re-examine state and wait again without
    /// re-checking the order. Poisoning is recovered like [`lock`].
    pub fn wait_on(&mut self, cv: &Condvar) {
        let g = self.guard.take().expect("guard present outside wait_on");
        let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        self.guard = Some(g);
    }
}

/// Lock a mutex at a declared [`LockRank`], poison-recovering like
/// [`lock`]. Under `debug_assertions`, panics if the calling thread
/// already holds a lock of the same or higher rank.
pub fn lock_ranked<T>(m: &Mutex<T>, rank: LockRank) -> RankedGuard<'_, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank, None);
    #[cfg(not(debug_assertions))]
    let _ = rank;
    RankedGuard {
        guard: Some(lock(m)),
        #[cfg(debug_assertions)]
        rank,
        #[cfg(debug_assertions)]
        index: None,
    }
}

/// Lock one mutex of an indexed same-rank band (the conflict-index
/// shards). Multiple locks of the same rank may be held simultaneously
/// as long as their indices strictly ascend; acquiring an index less
/// than or equal to one already held at the same rank panics under
/// `debug_assertions`, as does mixing indexed and unindexed acquisition
/// of the same rank.
pub fn lock_ranked_indexed<T>(m: &Mutex<T>, rank: LockRank, index: usize) -> RankedGuard<'_, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank, Some(index));
    #[cfg(not(debug_assertions))]
    let _ = (rank, index);
    RankedGuard {
        guard: Some(lock(m)),
        #[cfg(debug_assertions)]
        rank,
        #[cfg(debug_assertions)]
        index: Some(index),
    }
}

/// A ranked shared (read) guard over an `RwLock`.
pub struct RankedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T> Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedReadGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(self.rank, None);
    }
}

/// A ranked exclusive (write) guard over an `RwLock`.
pub struct RankedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T> Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedWriteGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(self.rank, None);
    }
}

/// Acquire an `RwLock` shared, at a declared rank, recovering from
/// poisoning like [`lock`]. Shared acquisition still participates in the
/// rank order: readers and the exclusive writer are interchangeable from
/// a deadlock-ordering perspective.
pub fn read_ranked<T>(l: &RwLock<T>, rank: LockRank) -> RankedReadGuard<'_, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank, None);
    #[cfg(not(debug_assertions))]
    let _ = rank;
    RankedReadGuard {
        guard: l.read().unwrap_or_else(PoisonError::into_inner),
        #[cfg(debug_assertions)]
        rank,
    }
}

/// Acquire an `RwLock` exclusive, at a declared rank, recovering from
/// poisoning like [`lock`].
pub fn write_ranked<T>(l: &RwLock<T>, rank: LockRank) -> RankedWriteGuard<'_, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank, None);
    #[cfg(not(debug_assertions))]
    let _ = rank;
    RankedWriteGuard {
        guard: l.write().unwrap_or_else(PoisonError::into_inner),
        #[cfg(debug_assertions)]
        rank,
    }
}

#[cfg(debug_assertions)]
mod tracker {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// (rank, index) pairs held by this thread, in acquisition order.
        static HELD: RefCell<Vec<(LockRank, Option<usize>)>> = const { RefCell::new(Vec::new()) };
    }

    /// Whether acquiring `next` is legal with `top` as the most recent
    /// holding. Strictly higher ranks always are; the same rank is legal
    /// only inside an indexed band with a strictly greater index.
    fn allowed(top: (LockRank, Option<usize>), next: (LockRank, Option<usize>)) -> bool {
        if next.0 != top.0 {
            return next.0 > top.0;
        }
        match (top.1, next.1) {
            (Some(held), Some(acquiring)) => acquiring > held,
            _ => false,
        }
    }

    /// Record an acquisition attempt, panicking on an order violation.
    /// The violation check runs *before* blocking on the mutex — the
    /// point is to catch the misordering even when it doesn't happen to
    /// deadlock this run.
    pub fn acquire(rank: LockRank, index: Option<usize>) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&top) = held.last() {
                if !allowed(top, (rank, index)) {
                    let chain: Vec<String> = held
                        .iter()
                        .map(|(r, i)| match i {
                            Some(i) => format!("{}#{i}", r.name()),
                            None => r.name().to_string(),
                        })
                        .collect();
                    // Leave the thread's tracker usable for whoever
                    // catches the panic (tests).
                    held.clear();
                    panic!(
                        "lock-rank violation: acquiring `{}`{} while holding {:?} — \
                         declared order is ReadVersionCache < TransactionState < \
                         ConflictShard (ascending indices) < CommitBatch < \
                         VersionCore < DatabaseStore (see rl_fdb::sync)",
                        rank.name(),
                        index.map(|i| format!("#{i}")).unwrap_or_default(),
                        chain,
                    );
                }
            }
            held.push((rank, index));
        });
    }

    /// Release the most recent acquisition of `(rank, index)` (guards may
    /// drop out of LIFO order).
    pub fn release(rank: LockRank, index: Option<usize>) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&e| e == (rank, index)) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
    }

    #[test]
    fn ranked_guard_derefs_and_releases() {
        let m = Mutex::new(1);
        {
            let mut g = lock_ranked(&m, LockRank::TransactionState);
            *g += 1;
        }
        // Rank released: re-acquiring the same rank on this thread is fine.
        let g = lock_ranked(&m, LockRank::TransactionState);
        assert_eq!(*g, 2);
    }

    #[test]
    fn ascending_ranks_are_allowed() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        let d = RwLock::new(());
        let _ga = lock_ranked(&a, LockRank::ReadVersionCache);
        let _gb = lock_ranked(&b, LockRank::TransactionState);
        let _gc = lock_ranked(&c, LockRank::VersionCore);
        let _gd = write_ranked(&d, LockRank::DatabaseStore);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_ranks_panic() {
        // Spawned thread so the panic (and its tracker state) stays
        // isolated from the test harness thread.
        let result = std::thread::spawn(|| {
            let hi = Mutex::new(());
            let lo = Mutex::new(());
            let _g_hi = lock_ranked(&hi, LockRank::VersionCore);
            let _g_lo = lock_ranked(&lo, LockRank::TransactionState); // inversion
        })
        .join();
        let err = result.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_panics() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let _ga = lock_ranked(&a, LockRank::TransactionState);
            let _gb = lock_ranked(&b, LockRank::TransactionState);
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn ascending_shard_indices_are_allowed() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        let _ga = lock_ranked_indexed(&a, LockRank::ConflictShard, 0);
        let _gb = lock_ranked_indexed(&b, LockRank::ConflictShard, 3);
        let _gc = lock_ranked_indexed(&c, LockRank::ConflictShard, 15);
        // And the band still ascends into higher ranks.
        let d = Mutex::new(());
        let _gd = lock_ranked(&d, LockRank::CommitBatch);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_shard_indices_panic() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let _ga = lock_ranked_indexed(&a, LockRank::ConflictShard, 5);
            let _gb = lock_ranked_indexed(&b, LockRank::ConflictShard, 5); // re-acquire
        })
        .join();
        assert!(result.is_err());
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let _ga = lock_ranked_indexed(&a, LockRank::ConflictShard, 5);
            let _gb = lock_ranked_indexed(&b, LockRank::ConflictShard, 2); // descending
        })
        .join();
        assert!(result.is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn mixing_indexed_and_unindexed_same_rank_panics() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let _ga = lock_ranked_indexed(&a, LockRank::ConflictShard, 1);
            let _gb = lock_ranked(&b, LockRank::ConflictShard);
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn rwlock_guards_track_ranks() {
        let l = RwLock::new(5);
        {
            let g = read_ranked(&l, LockRank::DatabaseStore);
            assert_eq!(*g, 5);
        }
        {
            let mut g = write_ranked(&l, LockRank::DatabaseStore);
            *g += 1;
        }
        let g = read_ranked(&l, LockRank::DatabaseStore);
        assert_eq!(*g, 6);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rwlock_read_after_write_rank_panics() {
        let result = std::thread::spawn(|| {
            let a = RwLock::new(());
            let b = Mutex::new(());
            let _ga = write_ranked(&a, LockRank::DatabaseStore);
            let _gb = lock_ranked(&b, LockRank::VersionCore); // inversion
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn wait_on_reacquires_the_mutex() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = lock_ranked(m, LockRank::CommitBatch);
            while !*g {
                g.wait_on(cv);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            let mut g = lock_ranked(m, LockRank::CommitBatch);
            *g = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn out_of_order_drops_release_correctly() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let ga = lock_ranked(&a, LockRank::TransactionState);
        let gb = lock_ranked(&b, LockRank::VersionCore);
        drop(ga); // dropped before gb: release must not pop gb's rank
        let c = Mutex::new(());
        // TransactionState is free again; VersionCore still held, so
        // acquiring TransactionState now would be an inversion — but
        // re-acquiring after dropping gb too must succeed.
        drop(gb);
        let _gc = lock_ranked(&c, LockRank::TransactionState);
    }
}
