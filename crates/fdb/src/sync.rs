//! Lock hygiene for the whole workspace: the poison-recovering [`lock`]
//! helper (promoted out of `database.rs`, where every other crate used to
//! bypass it with bare `.lock().unwrap()`), and a `debug_assertions`-gated
//! **lock-rank tracker** that asserts at runtime that nested acquisitions
//! respect the declared global order.
//!
//! The static half of this contract is `rl_lint`'s `lock-poison` and
//! `lock-order` rules (crates/analysis): the linter proves no call site
//! bypasses these helpers and that the *visible* nested-lock graph is
//! acyclic; the tracker catches the nestings the lexical pass cannot see
//! (a lock taken inside a call into another file). Together they are the
//! safety net the sharded-MVCC / parallel-commit roadmap work relies on.
//!
//! The declared order (lower ranks first):
//!
//! 1. [`LockRank::ReadVersionCache`] — the client-side GRV cache; never
//!    held across a database call.
//! 2. [`LockRank::TransactionState`] — a transaction's buffered-write
//!    state; held while the commit pipeline runs.
//! 3. [`LockRank::DatabaseInner`] — the cluster's store + conflict
//!    window; the innermost lock, acquired with transaction state held.
//!
//! In release builds the tracker compiles away entirely: [`lock_ranked`]
//! is exactly [`lock`].

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, explicitly recovering from poisoning: a panic in another
/// thread mid-commit leaves the simulated cluster state intact enough for
/// tests to observe, and matches the non-poisoning `parking_lot` semantics
/// this workspace was originally written against.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The global lock order. Acquiring a rank less than or equal to one the
/// current thread already holds is an ordering violation (and a potential
/// deadlock against a thread acquiring in the declared order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum LockRank {
    /// `ReadVersionCache::state`.
    ReadVersionCache = 10,
    /// `Transaction::state`.
    TransactionState = 20,
    /// `Database::inner` (store, conflict window, MVCC horizon).
    DatabaseInner = 30,
}

impl LockRank {
    #[cfg(debug_assertions)]
    fn name(self) -> &'static str {
        match self {
            LockRank::ReadVersionCache => "ReadVersionCache::state",
            LockRank::TransactionState => "Transaction::state",
            LockRank::DatabaseInner => "Database::inner",
        }
    }
}

/// A `MutexGuard` whose acquisition was checked against the thread's held
/// ranks; releases its rank entry on drop.
pub struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        tracker::release(self.rank);
    }
}

/// Lock a mutex at a declared [`LockRank`], poison-recovering like
/// [`lock`]. Under `debug_assertions`, panics if the calling thread
/// already holds a lock of the same or higher rank.
pub fn lock_ranked<T>(m: &Mutex<T>, rank: LockRank) -> RankedGuard<'_, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(rank);
    #[cfg(not(debug_assertions))]
    let _ = rank;
    RankedGuard {
        guard: lock(m),
        #[cfg(debug_assertions)]
        rank,
    }
}

#[cfg(debug_assertions)]
mod tracker {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks held by this thread, in acquisition order.
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Record an acquisition attempt, panicking on an order violation.
    /// The violation check runs *before* blocking on the mutex — the
    /// point is to catch the misordering even when it doesn't happen to
    /// deadlock this run.
    pub fn acquire(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&top) = held.last() {
                if rank <= top {
                    let chain: Vec<&str> = held.iter().map(|r| r.name()).collect();
                    // Leave the thread's tracker usable for whoever
                    // catches the panic (tests).
                    held.clear();
                    panic!(
                        "lock-rank violation: acquiring `{}` while holding {:?} — \
                         declared order is ReadVersionCache < TransactionState < \
                         DatabaseInner (see rl_fdb::sync)",
                        rank.name(),
                        chain,
                    );
                }
            }
            held.push(rank);
        });
    }

    /// Release the most recent acquisition of `rank` (guards may drop
    /// out of LIFO order).
    pub fn release(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
    }

    #[test]
    fn ranked_guard_derefs_and_releases() {
        let m = Mutex::new(1);
        {
            let mut g = lock_ranked(&m, LockRank::TransactionState);
            *g += 1;
        }
        // Rank released: re-acquiring the same rank on this thread is fine.
        let g = lock_ranked(&m, LockRank::TransactionState);
        assert_eq!(*g, 2);
    }

    #[test]
    fn ascending_ranks_are_allowed() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        let _ga = lock_ranked(&a, LockRank::ReadVersionCache);
        let _gb = lock_ranked(&b, LockRank::TransactionState);
        let _gc = lock_ranked(&c, LockRank::DatabaseInner);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_ranks_panic() {
        // Spawned thread so the panic (and its tracker state) stays
        // isolated from the test harness thread.
        let result = std::thread::spawn(|| {
            let hi = Mutex::new(());
            let lo = Mutex::new(());
            let _g_hi = lock_ranked(&hi, LockRank::DatabaseInner);
            let _g_lo = lock_ranked(&lo, LockRank::TransactionState); // inversion
        })
        .join();
        let err = result.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-rank violation"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_panics() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let _ga = lock_ranked(&a, LockRank::TransactionState);
            let _gb = lock_ranked(&b, LockRank::TransactionState);
        })
        .join();
        assert!(result.is_err());
    }

    #[test]
    fn out_of_order_drops_release_correctly() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let ga = lock_ranked(&a, LockRank::TransactionState);
        let gb = lock_ranked(&b, LockRank::DatabaseInner);
        drop(ga); // dropped before gb: release must not pop gb's rank
        let c = Mutex::new(());
        // TransactionState is free again; DatabaseInner still held, so
        // acquiring TransactionState now would be an inversion — but
        // re-acquiring after dropping gb too must succeed.
        drop(gb);
        let _gc = lock_ranked(&c, LockRank::TransactionState);
    }
}
