//! Error type mirroring the FoundationDB client error surface that the
//! Record Layer must handle: retryable commit conflicts, the transaction
//! time limit, and size limits.

use std::fmt;

/// Result alias used throughout the simulator.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the simulated FoundationDB client.
///
/// The `code` values match the real FoundationDB error codes so that code
/// written against this crate handles errors the way an FDB client would
/// (e.g. 1020 `not_committed` is retryable, 1007 `transaction_too_old` means
/// the 5-second limit elapsed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// 1020: commit-time conflict — some key read by this transaction was
    /// modified by another transaction after this transaction's read
    /// version. Retryable.
    NotCommitted,
    /// 1007: the transaction is too old: either more than 5 (logical)
    /// seconds have elapsed since its read version, or its read version has
    /// fallen out of the MVCC window. Retryable with a fresh transaction.
    TransactionTooOld,
    /// 1021: the commit outcome is unknown (simulated failure injection).
    CommitUnknownResult,
    /// 2101: transaction exceeds the 10 MB size limit.
    TransactionTooLarge { size: usize, limit: usize },
    /// 2102: key exceeds the 10 kB limit.
    KeyTooLarge { size: usize, limit: usize },
    /// 2103: value exceeds the 100 kB limit.
    ValueTooLarge { size: usize, limit: usize },
    /// 2017: operation issued on a transaction that already committed.
    UsedDuringCommit,
    /// 2210: the requested read version is in the future.
    FutureVersion,
    /// Directory-layer errors (prefix collisions, missing directories, ...).
    Directory(String),
    /// Tuple encoding/decoding errors.
    Tuple(String),
    /// Mutation parameter malformed (e.g. versionstamp offset out of range).
    InvalidMutation(String),
}

impl Error {
    /// FoundationDB error code for this error.
    pub fn code(&self) -> u32 {
        match self {
            Error::NotCommitted => 1020,
            Error::TransactionTooOld => 1007,
            Error::CommitUnknownResult => 1021,
            Error::TransactionTooLarge { .. } => 2101,
            Error::KeyTooLarge { .. } => 2102,
            Error::ValueTooLarge { .. } => 2103,
            Error::UsedDuringCommit => 2017,
            Error::FutureVersion => 2210,
            Error::Directory(_) => 2020,
            Error::Tuple(_) => 2041,
            Error::InvalidMutation(_) => 2006,
        }
    }

    /// Whether a client should retry the transaction from the top, the way
    /// the FDB bindings' `run` loop does for retryable errors.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::NotCommitted | Error::TransactionTooOld | Error::CommitUnknownResult
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotCommitted => write!(f, "transaction not committed due to conflict (1020)"),
            Error::TransactionTooOld => write!(
                f,
                "transaction is too old to perform reads or be committed (1007)"
            ),
            Error::CommitUnknownResult => {
                write!(f, "transaction may or may not have committed (1021)")
            }
            Error::TransactionTooLarge { size, limit } => {
                write!(
                    f,
                    "transaction exceeds byte limit ({size} > {limit}) (2101)"
                )
            }
            Error::KeyTooLarge { size, limit } => {
                write!(f, "key length exceeds limit ({size} > {limit}) (2102)")
            }
            Error::ValueTooLarge { size, limit } => {
                write!(f, "value length exceeds limit ({size} > {limit}) (2103)")
            }
            Error::UsedDuringCommit => {
                write!(f, "operation issued while a commit was outstanding (2017)")
            }
            Error::FutureVersion => write!(f, "request for future version (2210)"),
            Error::Directory(msg) => write!(f, "directory layer: {msg}"),
            Error::Tuple(msg) => write!(f, "tuple layer: {msg}"),
            Error::InvalidMutation(msg) => write!(f, "invalid mutation: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification_matches_fdb() {
        assert!(Error::NotCommitted.is_retryable());
        assert!(Error::TransactionTooOld.is_retryable());
        assert!(Error::CommitUnknownResult.is_retryable());
        assert!(!Error::KeyTooLarge { size: 1, limit: 0 }.is_retryable());
        assert!(!Error::UsedDuringCommit.is_retryable());
    }

    #[test]
    fn codes_match_fdb() {
        assert_eq!(Error::NotCommitted.code(), 1020);
        assert_eq!(Error::TransactionTooOld.code(), 1007);
        assert_eq!(
            Error::TransactionTooLarge { size: 0, limit: 0 }.code(),
            2101
        );
    }

    #[test]
    fn display_is_human_readable() {
        let s = Error::TransactionTooLarge {
            size: 11,
            limit: 10,
        }
        .to_string();
        assert!(s.contains("11 > 10"));
    }
}
