//! Range-read options.

/// Streaming modes, mirroring the FDB client. In this in-process simulator
/// they influence only the default batch size reported per request, but the
/// Record Layer's cursors set them, so the API surface is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamingMode {
    /// The client intends to iterate the whole range: large batches.
    WantAll,
    /// Batches sized for incremental iteration.
    #[default]
    Iterator,
    /// Small batches, lowest latency to first result.
    Small,
    /// Medium batches.
    Medium,
    /// Large batches.
    Large,
    /// Transfer everything in one batch.
    Serial,
    /// Exactly `limit` rows are wanted.
    Exact,
}

/// Options for a range read.
#[derive(Debug, Clone, Default)]
pub struct RangeOptions {
    /// Maximum number of key-value pairs to return (0 = unlimited).
    pub limit: usize,
    /// Return results from the end of the range, in descending key order.
    pub reverse: bool,
    /// Streaming mode (affects batching hints only in the simulator).
    pub mode: StreamingMode,
}

impl RangeOptions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    pub fn reverse(mut self, reverse: bool) -> Self {
        self.reverse = reverse;
        self
    }

    pub fn mode(mut self, mode: StreamingMode) -> Self {
        self.mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let o = RangeOptions::new()
            .limit(7)
            .reverse(true)
            .mode(StreamingMode::WantAll);
        assert_eq!(o.limit, 7);
        assert!(o.reverse);
        assert_eq!(o.mode, StreamingMode::WantAll);
    }

    #[test]
    fn defaults() {
        let o = RangeOptions::default();
        assert_eq!(o.limit, 0);
        assert!(!o.reverse);
        assert_eq!(o.mode, StreamingMode::Iterator);
    }
}
