//! Keys, values, and key selectors.

/// A key-value pair returned from a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl KeyValue {
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        KeyValue {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// A FoundationDB key selector: resolves to a concrete key relative to the
/// database contents at the transaction's read version.
///
/// A selector `(key, or_equal, offset)` resolves, per the FDB specification,
/// to the key at `offset` positions after (positive) or before (negative)
/// the *anchor*, where the anchor is the last key less than `key` (when
/// `or_equal` is false) or less than or equal to `key` (when `or_equal` is
/// true), and `offset = 1` denotes the key immediately following the anchor.
///
/// The four standard constructors cover nearly all uses:
///
/// * [`KeySelector::last_less_than`] — `(key, false, 0)`
/// * [`KeySelector::last_less_or_equal`] — `(key, true, 0)`
/// * [`KeySelector::first_greater_than`] — `(key, true, 1)`
/// * [`KeySelector::first_greater_or_equal`] — `(key, false, 1)`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySelector {
    pub key: Vec<u8>,
    pub or_equal: bool,
    pub offset: i32,
}

impl KeySelector {
    pub fn new(key: impl Into<Vec<u8>>, or_equal: bool, offset: i32) -> Self {
        KeySelector {
            key: key.into(),
            or_equal,
            offset,
        }
    }

    /// The last key strictly less than `key`.
    pub fn last_less_than(key: impl Into<Vec<u8>>) -> Self {
        KeySelector::new(key, false, 0)
    }

    /// The last key less than or equal to `key`.
    pub fn last_less_or_equal(key: impl Into<Vec<u8>>) -> Self {
        KeySelector::new(key, true, 0)
    }

    /// The first key strictly greater than `key`.
    pub fn first_greater_than(key: impl Into<Vec<u8>>) -> Self {
        KeySelector::new(key, true, 1)
    }

    /// The first key greater than or equal to `key`.
    pub fn first_greater_or_equal(key: impl Into<Vec<u8>>) -> Self {
        KeySelector::new(key, false, 1)
    }

    /// Shift this selector by `n` keys (positive = later keys).
    #[allow(clippy::should_implement_trait)] // FDB binding API name
    pub fn add(mut self, n: i32) -> Self {
        self.offset += n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_constructors() {
        let s = KeySelector::first_greater_or_equal(b"k".to_vec());
        assert_eq!(
            s,
            KeySelector {
                key: b"k".to_vec(),
                or_equal: false,
                offset: 1
            }
        );
        let s = KeySelector::first_greater_than(b"k".to_vec());
        assert_eq!(
            s,
            KeySelector {
                key: b"k".to_vec(),
                or_equal: true,
                offset: 1
            }
        );
        let s = KeySelector::last_less_than(b"k".to_vec());
        assert_eq!(
            s,
            KeySelector {
                key: b"k".to_vec(),
                or_equal: false,
                offset: 0
            }
        );
        let s = KeySelector::last_less_or_equal(b"k".to_vec());
        assert_eq!(
            s,
            KeySelector {
                key: b"k".to_vec(),
                or_equal: true,
                offset: 0
            }
        );
    }

    #[test]
    fn selector_add_shifts_offset() {
        let s = KeySelector::first_greater_or_equal(b"k".to_vec()).add(5);
        assert_eq!(s.offset, 6);
    }
}
