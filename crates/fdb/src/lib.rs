//! # rl-fdb — a deterministic, in-process simulation of FoundationDB
//!
//! This crate reproduces the FoundationDB *client contract* that the Record
//! Layer (SIGMOD 2019) is written against:
//!
//! * an ordered mapping from binary keys to binary values,
//! * ACID multi-key transactions with strictly-serializable isolation,
//!   implemented with MVCC reads and optimistic concurrency (commit-time
//!   validation of read conflict ranges against recently-committed writes),
//! * snapshot reads that opt out of conflict detection,
//! * atomic read-modify-write mutations (ADD, MIN/MAX, BYTE_MIN/BYTE_MAX,
//!   bit ops, versionstamped keys/values) that produce *write* conflicts but
//!   no *read* conflicts,
//! * range reads and range clears over the binary key order,
//! * commit versionstamps: 10 bytes assigned at commit, globally ordered,
//! * key (10 kB), value (100 kB) and transaction (10 MB) size limits, and a
//!   5-second transaction time limit driven by a controllable logical clock,
//! * the tuple layer (order-preserving typed tuples), subspaces, and the
//!   directory layer with its sliding-window prefix allocator.
//!
//! The simulator is single-process and deterministic: a logical clock
//! ([`Database::advance_clock`]) stands in for wall time so tests can push a
//! transaction past the 5-second limit without sleeping. All state lives
//! behind one [`Database`] handle, which is cheap to clone and safe to share
//! across threads (writers are serialized at commit, exactly as FDB's
//! resolver serializes commit validation).
//!
//! ```
//! use rl_fdb::{Database, tuple::Tuple};
//!
//! let db = Database::new();
//! let tx = db.create_transaction();
//! tx.set(b"hello", b"world");
//! tx.commit().unwrap();
//!
//! let tx = db.create_transaction();
//! assert_eq!(tx.get(b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! ```

pub mod atomic;
pub mod database;
pub mod directory;
pub mod error;
pub mod kv;
pub mod metrics;
pub mod range;
pub mod storage;
pub mod subspace;
pub mod sync;
pub mod transaction;
pub mod tuple;
pub mod version;

pub use database::{Database, DatabaseOptions, EngineKind, PagedConfig};
pub use error::{Error, Result};
pub use kv::{KeySelector, KeyValue};
pub use range::{RangeOptions, StreamingMode};
pub use storage::{EvictionPolicy, StorageEngine};
pub use subspace::Subspace;
pub use sync::{
    lock, lock_ranked, lock_ranked_indexed, read_ranked, write_ranked, LockRank, RankedGuard,
    RankedReadGuard, RankedWriteGuard,
};
pub use transaction::Transaction;
pub use version::Versionstamp;

/// Increment a binary key to the next possible key in lexicographic order
/// (append a zero byte). The resulting key is the exclusive-start successor:
/// `k < key_after(k)` and no key sorts strictly between them.
pub fn key_after(key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 1);
    k.extend_from_slice(key);
    k.push(0);
    k
}

/// Return the first key that is not prefixed by `prefix` ("strinc" in the
/// FDB client). Strips trailing `0xFF` bytes and increments the last byte.
///
/// Returns `None` when the prefix consists solely of `0xFF` bytes, in which
/// case every key greater than the prefix is still prefixed by it (there is
/// no upper bound short of the end of keyspace).
pub fn strinc(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut p = prefix.to_vec();
    while let Some(&last) = p.last() {
        if last == 0xFF {
            p.pop();
        } else {
            *p.last_mut().unwrap() += 1;
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn key_after_appends_zero() {
        assert_eq!(key_after(b"abc"), b"abc\x00");
        assert_eq!(key_after(b""), b"\x00");
    }

    #[test]
    fn strinc_increments_last_byte() {
        assert_eq!(strinc(b"abc").unwrap(), b"abd");
        assert_eq!(strinc(b"a\xff").unwrap(), b"b");
        assert_eq!(strinc(b"\xff\xff"), None);
        assert_eq!(strinc(b""), None);
    }

    #[test]
    fn strinc_bounds_prefix_range() {
        let prefix = b"ab";
        let upper = strinc(prefix).unwrap();
        assert!(b"ab".as_slice() < upper.as_slice());
        assert!(b"ab\xff\xff\xff".as_slice() < upper.as_slice());
        assert!(b"ac".as_slice() >= upper.as_slice());
    }
}
