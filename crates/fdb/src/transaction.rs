//! Transactions: MVCC snapshot reads, buffered writes with
//! read-your-writes, conflict ranges, atomic mutations, and size/time
//! accounting.
//!
//! A transaction obtains a read version at creation (the latest commit
//! version, as a `getReadVersion` call would) and observes an instantaneous
//! snapshot of the database at that version. Writes are buffered locally —
//! exactly as the FDB client buffers them — and shipped at commit together
//! with the read/write conflict ranges. Reads within the transaction see
//! its own writes (read-your-writes).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::atomic::{self, MutationType};
use crate::database::{Database, KEY_SIZE_LIMIT, VALUE_SIZE_LIMIT};
use crate::error::{Error, Result};
use crate::kv::{KeySelector, KeyValue};
use crate::range::RangeOptions;
use crate::sync::{lock_ranked, LockRank};

/// One buffered write command, in program order.
#[derive(Debug, Clone)]
pub(crate) enum Command {
    Set {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Clear {
        key: Vec<u8>,
    },
    ClearRange {
        begin: Vec<u8>,
        end: Vec<u8>,
    },
    Atomic {
        key: Vec<u8>,
        op: MutationType,
        param: Vec<u8>,
    },
    /// SET_VERSIONSTAMPED_KEY: `key_payload[offset..offset+10]` is replaced
    /// by the transaction version at commit.
    VersionstampedKey {
        key_payload: Vec<u8>,
        offset: usize,
        value: Vec<u8>,
    },
    /// SET_VERSIONSTAMPED_VALUE: placeholder inside the value.
    VersionstampedValue {
        key: Vec<u8>,
        value_payload: Vec<u8>,
        offset: usize,
    },
}

/// A per-key operation for read-your-writes resolution.
#[derive(Debug, Clone)]
enum KeyOp {
    Set(Vec<u8>),
    Clear,
    Atomic(MutationType, Vec<u8>),
}

/// Per-transaction attribution: what *this* transaction read and wrote.
///
/// The database's [`Metrics`](crate::metrics::Metrics) block aggregates
/// the same quantities process-wide; this struct scopes them to a single
/// transaction so workloads can be attributed (which tenant read how many
/// keys, how much of a commit was index overhead, …). Maintained as plain
/// integers under the transaction's existing state lock, so keeping it
/// costs nothing measurable even with observability disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnTrace {
    /// Keys returned to this transaction by point and range reads.
    pub keys_read: u64,
    /// Bytes of keys+values returned by reads.
    pub bytes_read: u64,
    /// Keys written at commit (0 until a successful commit).
    pub keys_written: u64,
    /// Bytes of keys+values written at commit.
    pub bytes_written: u64,
    /// Point/range read operations issued.
    pub read_ops: u64,
    /// Record fetches reported by the record layer via
    /// [`Transaction::note_record_fetch`].
    pub record_fetches: u64,
}

#[derive(Debug, Default)]
struct TxState {
    /// Flat command log, replayed at commit in program order.
    commands: Vec<Command>,
    /// Per-key op log (seq, op) for read-your-writes.
    writes_by_key: BTreeMap<Vec<u8>, Vec<(u64, KeyOp)>>,
    /// Cleared ranges with their sequence numbers.
    cleared: Vec<(Vec<u8>, Vec<u8>, u64)>,
    seq: u64,
    read_conflicts: Vec<(Vec<u8>, Vec<u8>)>,
    write_conflicts: Vec<(Vec<u8>, Vec<u8>)>,
    /// Approximate transaction size (keys + values + conflict-range keys).
    size: usize,
    committed: bool,
    commit_version: Option<u64>,
    /// Position within the group-commit batch that carried this
    /// transaction (the middle 2 bytes of its versionstamp).
    commit_order: u16,
    /// Per-transaction read/write attribution (see [`TxnTrace`]).
    trace: TxnTrace,
    /// Free-form attribution tag for this transaction's span (tenant,
    /// subspace, workload name…).
    tag: Option<String>,
}

/// A FoundationDB transaction handle.
///
/// Cheap to create; all methods take `&self` (internal locking), matching
/// the way the real client is used from async code.
pub struct Transaction {
    db: Database,
    read_version: u64,
    start_ms: u64,
    /// Span-clock start (µs since the rl_obs epoch); 0 when tracing is off.
    start_us: u64,
    state: Mutex<TxState>,
    /// Client-side counter for versionstamp user versions (the Record
    /// Layer assigns one per record written in a transaction, §7).
    user_version: std::sync::atomic::AtomicU16,
}

/// Result of resolving read-your-writes for one key.
fn effective_value(
    underlying: Option<&[u8]>,
    ops: &[(u64, KeyOp)],
    clear_seqs: &[u64],
) -> Result<Option<Vec<u8>>> {
    // Merge per-key ops and covering range-clears in sequence order.
    let mut merged: Vec<(u64, Option<&KeyOp>)> = ops.iter().map(|(s, op)| (*s, Some(op))).collect();
    merged.extend(clear_seqs.iter().map(|s| (*s, None)));
    merged.sort_by_key(|(s, _)| *s);

    let mut cur: Option<Vec<u8>> = underlying.map(<[u8]>::to_vec);
    for (_, op) in merged {
        match op {
            None => cur = None, // range clear
            Some(KeyOp::Set(v)) => cur = Some(v.clone()),
            Some(KeyOp::Clear) => cur = None,
            Some(KeyOp::Atomic(mt, param)) => {
                cur = atomic::apply(*mt, cur.as_deref(), param)?;
            }
        }
    }
    Ok(cur)
}

impl Transaction {
    pub(crate) fn new(db: Database, read_version: u64, start_ms: u64) -> Self {
        Transaction {
            db,
            read_version,
            start_ms,
            start_us: if rl_obs::enabled() {
                rl_obs::now_us()
            } else {
                0
            },
            state: Mutex::new(TxState::default()),
            user_version: std::sync::atomic::AtomicU16::new(0),
        }
    }

    /// Allocate the next 2-byte user version for versionstamps minted in
    /// this transaction, keeping every stamped key/value unique.
    pub fn next_user_version(&self) -> u16 {
        self.user_version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The MVCC read version this transaction reads at.
    pub fn read_version(&self) -> u64 {
        self.read_version
    }

    /// The database-wide instrumentation counters, so layers above the
    /// key-value substrate can report logical events (e.g. record fetches)
    /// into the same metrics block the substrate tallies key traffic into.
    pub fn metrics(&self) -> &crate::metrics::SharedMetrics {
        self.db.metrics()
    }

    /// Snapshot of this transaction's own read/write attribution.
    pub fn trace(&self) -> TxnTrace {
        lock_ranked(&self.state, LockRank::TransactionState).trace
    }

    /// Attach a free-form attribution tag (tenant, subspace, workload…)
    /// carried by the span this transaction emits at commit.
    pub fn set_tag(&self, tag: &str) {
        lock_ranked(&self.state, LockRank::TransactionState).tag = Some(tag.to_string());
    }

    /// Count one record fetch against this transaction's trace (called by
    /// the record layer; a no-op when observability is disabled, so the
    /// extra lock acquisition costs nothing on the common path).
    pub fn note_record_fetch(&self) {
        if rl_obs::enabled() {
            lock_ranked(&self.state, LockRank::TransactionState)
                .trace
                .record_fetches += 1;
        }
    }

    /// The commit version, available after a successful commit.
    pub fn committed_version(&self) -> Option<u64> {
        lock_ranked(&self.state, LockRank::TransactionState).commit_version
    }

    /// The 10-byte transaction versionstamp (8-byte commit version, then
    /// the 2-byte batch order), available after commit.
    pub fn versionstamp(&self) -> Option<[u8; 10]> {
        let st = lock_ranked(&self.state, LockRank::TransactionState);
        let order = st.commit_order;
        st.commit_version.map(|v| {
            let mut out = [0u8; 10];
            out[0..8].copy_from_slice(&v.to_be_bytes());
            out[8..10].copy_from_slice(&order.to_be_bytes());
            out
        })
    }

    fn check_open(&self, st: &TxState) -> Result<()> {
        if st.committed {
            return Err(Error::UsedDuringCommit);
        }
        if self.db.clock_ms().saturating_sub(self.start_ms)
            > self.db.options().transaction_time_limit_ms
        {
            return Err(Error::TransactionTooOld);
        }
        Ok(())
    }

    fn validate_key(&self, key: &[u8]) -> Result<()> {
        if key.len() > KEY_SIZE_LIMIT {
            return Err(Error::KeyTooLarge {
                size: key.len(),
                limit: KEY_SIZE_LIMIT,
            });
        }
        Ok(())
    }

    fn validate_value(&self, value: &[u8]) -> Result<()> {
        if value.len() > VALUE_SIZE_LIMIT {
            return Err(Error::ValueTooLarge {
                size: value.len(),
                limit: VALUE_SIZE_LIMIT,
            });
        }
        Ok(())
    }

    // ---------------------------------------------------------------- reads

    /// Read a key, adding it to the read conflict set.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_inner(key, false)
    }

    /// Read a key at snapshot isolation: no read conflict is added, so a
    /// concurrent overwrite of this key will not abort this transaction.
    pub fn get_snapshot(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_inner(key, true)
    }

    fn get_inner(&self, key: &[u8], snapshot: bool) -> Result<Option<Vec<u8>>> {
        let _t = rl_obs::Timer::start("get");
        self.validate_key(key)?;
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        self.check_open(&st)?;
        if !snapshot {
            let end = crate::key_after(key);
            st.read_conflicts.push((key.to_vec(), end));
            st.size += key.len() + 12;
        }
        let underlying = self.db.storage_get(key, self.read_version)?;
        self.db.metrics().add_read_op();
        st.trace.read_ops += 1;
        let clear_seqs: Vec<u64> = st
            .cleared
            .iter()
            .filter(|(a, b, _)| a.as_slice() <= key && key < b.as_slice())
            .map(|(_, _, s)| *s)
            .collect();
        let ops = st.writes_by_key.get(key).map(Vec::as_slice).unwrap_or(&[]);
        let v = effective_value(underlying.as_deref(), ops, &clear_seqs)?;
        if let Some(ref val) = v {
            let bytes = (key.len() + val.len()) as u64;
            self.db.metrics().add_keys_read(1, bytes);
            st.trace.keys_read += 1;
            st.trace.bytes_read += bytes;
        }
        Ok(v)
    }

    /// Range read `[begin, end)` with read-your-writes, adding the scanned
    /// range to the read conflict set.
    pub fn get_range(
        &self,
        begin: &[u8],
        end: &[u8],
        options: RangeOptions,
    ) -> Result<Vec<KeyValue>> {
        self.get_range_inner(begin, end, options, false)
    }

    /// Range read at snapshot isolation (no read conflict).
    pub fn get_range_snapshot(
        &self,
        begin: &[u8],
        end: &[u8],
        options: RangeOptions,
    ) -> Result<Vec<KeyValue>> {
        self.get_range_inner(begin, end, options, true)
    }

    fn get_range_inner(
        &self,
        begin: &[u8],
        end: &[u8],
        options: RangeOptions,
        snapshot: bool,
    ) -> Result<Vec<KeyValue>> {
        let _t = rl_obs::Timer::start("get_range");
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        self.check_open(&st)?;
        if begin >= end {
            return Ok(Vec::new());
        }

        let underlying = self.db.storage_range(begin, end, self.read_version)?;
        self.db.metrics().add_read_op();
        st.trace.read_ops += 1;

        // Merge the snapshot with buffered writes: candidate keys are the
        // union of snapshot keys and written keys inside the range.
        let mut candidates: BTreeMap<Vec<u8>, Option<Vec<u8>>> =
            underlying.into_iter().map(|(k, v)| (k, Some(v))).collect();
        let written_keys: Vec<Vec<u8>> = st
            .writes_by_key
            .range::<[u8], _>((
                std::ops::Bound::Included(begin),
                std::ops::Bound::Excluded(end),
            ))
            .map(|(k, _)| k.clone())
            .collect();
        for k in written_keys {
            candidates.entry(k).or_insert(None);
        }

        let mut merged: Vec<KeyValue> = Vec::new();
        for (k, underlying_val) in candidates {
            let clear_seqs: Vec<u64> = st
                .cleared
                .iter()
                .filter(|(a, b, _)| a.as_slice() <= k.as_slice() && k.as_slice() < b.as_slice())
                .map(|(_, _, s)| *s)
                .collect();
            let ops = st.writes_by_key.get(&k).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(v) = effective_value(underlying_val.as_deref(), ops, &clear_seqs)? {
                merged.push(KeyValue { key: k, value: v });
            }
        }
        if options.reverse {
            merged.reverse();
        }
        if options.limit > 0 && merged.len() > options.limit {
            merged.truncate(options.limit);
        }

        // Conflict range: the portion of [begin, end) actually observed.
        if !snapshot {
            let (ca, cb) = if options.limit > 0 && merged.len() == options.limit {
                if options.reverse {
                    (merged.last().unwrap().key.clone(), end.to_vec())
                } else {
                    (
                        begin.to_vec(),
                        crate::key_after(&merged.last().unwrap().key),
                    )
                }
            } else {
                (begin.to_vec(), end.to_vec())
            };
            st.size += ca.len() + cb.len() + 12;
            st.read_conflicts.push((ca, cb));
        }

        let bytes: u64 = merged
            .iter()
            .map(|kv| (kv.key.len() + kv.value.len()) as u64)
            .sum();
        self.db.metrics().add_keys_read(merged.len() as u64, bytes);
        st.trace.keys_read += merged.len() as u64;
        st.trace.bytes_read += bytes;
        Ok(merged)
    }

    /// Resolve a key selector against the merged (snapshot + buffered
    /// writes) view of the database.
    pub fn get_key(&self, selector: &KeySelector) -> Result<Option<Vec<u8>>> {
        self.get_key_inner(selector, false)
    }

    /// Key-selector resolution at snapshot isolation.
    pub fn get_key_snapshot(&self, selector: &KeySelector) -> Result<Option<Vec<u8>>> {
        self.get_key_inner(selector, true)
    }

    fn get_key_inner(&self, selector: &KeySelector, snapshot: bool) -> Result<Option<Vec<u8>>> {
        // Anchor: last key < sel.key (or <= with or_equal).
        let mut cur = self.merged_prev_key(&selector.key, selector.or_equal)?;
        let mut remaining = selector.offset;
        while remaining > 0 {
            let from = cur.clone().map_or_else(Vec::new, |k| crate::key_after(&k));
            match self.merged_next_key(&from)? {
                Some(k) => cur = Some(k),
                None => {
                    cur = None;
                    break;
                }
            }
            remaining -= 1;
        }
        while remaining < 0 {
            match &cur {
                Some(k) => {
                    let kk = k.clone();
                    cur = self.merged_prev_key(&kk, false)?;
                }
                None => break,
            }
            remaining += 1;
        }
        if !snapshot {
            // Conservative conflict range around the resolved position.
            let mut st = lock_ranked(&self.state, LockRank::TransactionState);
            self.check_open(&st)?;
            if let Some(ref k) = cur {
                st.read_conflicts.push((k.clone(), crate::key_after(k)));
            }
        }
        Ok(cur)
    }

    /// First merged-view key `>= from`, or `None`.
    fn merged_next_key(&self, from: &[u8]) -> Result<Option<Vec<u8>>> {
        // Probe with widening snapshot ranges merged against writes.
        let end = vec![0xFFu8; 16]; // beyond any normal application key
        let kvs = self.get_range_snapshot(from, &end, RangeOptions::new().limit(1))?;
        Ok(kvs.into_iter().next().map(|kv| kv.key))
    }

    /// Last merged-view key `< key` (or `<= key` with `inclusive`).
    fn merged_prev_key(&self, key: &[u8], inclusive: bool) -> Result<Option<Vec<u8>>> {
        let end = if inclusive {
            crate::key_after(key)
        } else {
            key.to_vec()
        };
        let kvs = self.get_range_snapshot(&[], &end, RangeOptions::new().limit(1).reverse(true))?;
        Ok(kvs.into_iter().next().map(|kv| kv.key))
    }

    // --------------------------------------------------------------- writes

    /// Buffer a set, adding a write conflict on the key.
    pub fn set(&self, key: &[u8], value: &[u8]) {
        let _ = self.try_set(key, value);
    }

    /// Fallible variant of [`set`](Self::set) surfacing size-limit errors.
    pub fn try_set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.validate_key(key)?;
        self.validate_value(value)?;
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        self.check_open(&st)?;
        st.seq += 1;
        let seq = st.seq;
        st.commands.push(Command::Set {
            key: key.to_vec(),
            value: value.to_vec(),
        });
        st.writes_by_key
            .entry(key.to_vec())
            .or_default()
            .push((seq, KeyOp::Set(value.to_vec())));
        st.write_conflicts
            .push((key.to_vec(), crate::key_after(key)));
        st.size += key.len() + value.len() + 28;
        Ok(())
    }

    /// Buffer a single-key clear.
    pub fn clear(&self, key: &[u8]) {
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        if self.check_open(&st).is_err() {
            return;
        }
        st.seq += 1;
        let seq = st.seq;
        st.commands.push(Command::Clear { key: key.to_vec() });
        st.writes_by_key
            .entry(key.to_vec())
            .or_default()
            .push((seq, KeyOp::Clear));
        st.write_conflicts
            .push((key.to_vec(), crate::key_after(key)));
        st.size += key.len() + 28;
    }

    /// Buffer a range clear of `[begin, end)`.
    pub fn clear_range(&self, begin: &[u8], end: &[u8]) {
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        if self.check_open(&st).is_err() || begin >= end {
            return;
        }
        st.seq += 1;
        let seq = st.seq;
        st.commands.push(Command::ClearRange {
            begin: begin.to_vec(),
            end: end.to_vec(),
        });
        st.cleared.push((begin.to_vec(), end.to_vec(), seq));
        st.write_conflicts.push((begin.to_vec(), end.to_vec()));
        st.size += begin.len() + end.len() + 28;
        self.db.metrics().add_range_clear();
    }

    /// Buffer an atomic mutation. Atomic mutations add a *write* conflict
    /// but no *read* conflict, so concurrent mutations to the same key never
    /// conflict with each other (§2).
    pub fn mutate(&self, op: MutationType, key: &[u8], param: &[u8]) -> Result<()> {
        self.validate_key(key)?;
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        self.check_open(&st)?;
        st.seq += 1;
        let seq = st.seq;
        match op {
            MutationType::SetVersionstampedKey => {
                let (payload, offset) = atomic::split_versionstamp_operand(key)?;
                st.commands.push(Command::VersionstampedKey {
                    key_payload: payload.clone(),
                    offset,
                    value: param.to_vec(),
                });
                // The final key is unknown until commit; conservatively add
                // a write conflict over the placeholder form.
                st.write_conflicts
                    .push((payload.clone(), crate::key_after(&payload)));
                st.size += payload.len() + param.len() + 28;
            }
            MutationType::SetVersionstampedValue => {
                let (payload, offset) = atomic::split_versionstamp_operand(param)?;
                st.commands.push(Command::VersionstampedValue {
                    key: key.to_vec(),
                    value_payload: payload.clone(),
                    offset,
                });
                // Read-your-writes sees the placeholder form.
                st.writes_by_key
                    .entry(key.to_vec())
                    .or_default()
                    .push((seq, KeyOp::Set(payload.clone())));
                st.write_conflicts
                    .push((key.to_vec(), crate::key_after(key)));
                st.size += key.len() + payload.len() + 28;
            }
            _ => {
                st.commands.push(Command::Atomic {
                    key: key.to_vec(),
                    op,
                    param: param.to_vec(),
                });
                st.writes_by_key
                    .entry(key.to_vec())
                    .or_default()
                    .push((seq, KeyOp::Atomic(op, param.to_vec())));
                st.write_conflicts
                    .push((key.to_vec(), crate::key_after(key)));
                st.size += key.len() + param.len() + 28;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------ conflict ranges

    /// Explicitly add a read conflict range (used with snapshot reads to
    /// conflict only on distinguished keys, §10.1).
    pub fn add_read_conflict_range(&self, begin: &[u8], end: &[u8]) {
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        st.size += begin.len() + end.len() + 12;
        st.read_conflicts.push((begin.to_vec(), end.to_vec()));
    }

    /// Add a read conflict on a single key.
    pub fn add_read_conflict_key(&self, key: &[u8]) {
        self.add_read_conflict_range(key, &crate::key_after(key));
    }

    /// Explicitly add a write conflict range.
    pub fn add_write_conflict_range(&self, begin: &[u8], end: &[u8]) {
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        st.size += begin.len() + end.len() + 12;
        st.write_conflicts.push((begin.to_vec(), end.to_vec()));
    }

    /// Current approximate transaction size in bytes.
    pub fn approximate_size(&self) -> usize {
        lock_ranked(&self.state, LockRank::TransactionState).size
    }

    /// Whether any writes are buffered.
    pub fn is_read_only(&self) -> bool {
        lock_ranked(&self.state, LockRank::TransactionState)
            .commands
            .is_empty()
    }

    // --------------------------------------------------------------- commit

    /// Validate conflicts and apply buffered writes. On success the
    /// transaction's versionstamp and committed version become available.
    pub fn commit(&self) -> Result<()> {
        let _t = rl_obs::Timer::start("commit");
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        if st.committed {
            return Err(Error::UsedDuringCommit);
        }
        if self.db.clock_ms().saturating_sub(self.start_ms)
            > self.db.options().transaction_time_limit_ms
        {
            self.db.metrics().record_commit(false, false);
            self.emit_txn_span(&st, "error");
            return Err(Error::TransactionTooOld);
        }
        let limit = self.db.options().transaction_size_limit;
        if st.size > limit {
            self.db.metrics().record_commit(false, false);
            self.emit_txn_span(&st, "error");
            return Err(Error::TransactionTooLarge {
                size: st.size,
                limit,
            });
        }
        // Read-only transactions commit trivially without validation: they
        // already saw a consistent snapshot.
        if st.commands.is_empty() && st.write_conflicts.is_empty() {
            st.committed = true;
            self.db.metrics().record_commit(true, false);
            self.emit_txn_span(&st, "committed");
            return Ok(());
        }
        match self.db.commit_internal(
            self.read_version,
            &st.read_conflicts,
            &st.write_conflicts,
            &st.commands,
        ) {
            Ok((version, batch_order, keys_written, bytes_written)) => {
                st.committed = true;
                st.commit_version = Some(version);
                st.commit_order = batch_order;
                st.trace.keys_written = keys_written;
                st.trace.bytes_written = bytes_written;
                self.emit_txn_span(&st, "committed");
                Ok(())
            }
            Err(e) => {
                let outcome = if matches!(e, Error::NotCommitted) {
                    "conflict"
                } else {
                    "error"
                };
                self.emit_txn_span(&st, outcome);
                Err(e)
            }
        }
    }

    /// Push this transaction's span (its trace counters plus an outcome
    /// marker) into the global ring. No-op when observability is off.
    fn emit_txn_span(&self, st: &TxState, outcome: &'static str) {
        if !rl_obs::enabled() {
            return;
        }
        let t = &st.trace;
        rl_obs::push_span(rl_obs::Span {
            op: "txn",
            tag: st.tag.clone().unwrap_or_default(),
            start_us: self.start_us,
            dur_us: rl_obs::now_us().saturating_sub(self.start_us),
            counters: vec![
                ("keys_read", t.keys_read),
                ("bytes_read", t.bytes_read),
                ("keys_written", t.keys_written),
                ("bytes_written", t.bytes_written),
                ("read_ops", t.read_ops),
                ("record_fetches", t.record_fetches),
                (outcome, 1),
            ],
        });
    }

    /// Discard all buffered writes (the transaction can't be reused; create
    /// a new one from the database).
    pub fn cancel(&self) {
        let mut st = lock_ranked(&self.state, LockRank::TransactionState);
        st.commands.clear();
        st.writes_by_key.clear();
        st.cleared.clear();
        st.committed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    #[test]
    fn read_your_writes_point() {
        let db = Database::new();
        let tx = db.create_transaction();
        assert_eq!(tx.get(b"k").unwrap(), None);
        tx.set(b"k", b"v");
        assert_eq!(tx.get(b"k").unwrap(), Some(b"v".to_vec()));
        tx.clear(b"k");
        assert_eq!(tx.get(b"k").unwrap(), None);
    }

    #[test]
    fn read_your_writes_atomic_chain() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.mutate(MutationType::Add, b"ctr", &5u64.to_le_bytes())
            .unwrap();
        tx.mutate(MutationType::Add, b"ctr", &3u64.to_le_bytes())
            .unwrap();
        let v = tx.get(b"ctr").unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 8);
    }

    #[test]
    fn read_your_writes_clear_range_then_set() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"a1", b"x");
        tx.set(b"a2", b"y");
        tx.commit().unwrap();

        let tx = db.create_transaction();
        tx.set(b"a3", b"z");
        tx.clear_range(b"a", b"b");
        tx.set(b"a2", b"new");
        let r = tx.get_range(b"a", b"b", RangeOptions::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, b"a2");
        assert_eq!(r[0].value, b"new");
    }

    #[test]
    fn range_merge_includes_buffered_and_respects_limit_reverse() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"b", b"1");
        tx.set(b"d", b"2");
        tx.commit().unwrap();

        let tx = db.create_transaction();
        tx.set(b"c", b"buf");
        let r = tx.get_range(b"a", b"z", RangeOptions::default()).unwrap();
        let keys: Vec<_> = r.iter().map(|kv| kv.key.clone()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);

        let r = tx
            .get_range(b"a", b"z", RangeOptions::new().reverse(true).limit(2))
            .unwrap();
        let keys: Vec<_> = r.iter().map(|kv| kv.key.clone()).collect();
        assert_eq!(keys, vec![b"d".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn key_selectors_resolve_on_merged_view() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"b", b"1");
        tx.set(b"f", b"2");
        tx.commit().unwrap();

        let tx = db.create_transaction();
        tx.set(b"d", b"buf");
        assert_eq!(
            tx.get_key(&KeySelector::first_greater_or_equal(b"c".to_vec()))
                .unwrap(),
            Some(b"d".to_vec())
        );
        assert_eq!(
            tx.get_key(&KeySelector::first_greater_than(b"d".to_vec()))
                .unwrap(),
            Some(b"f".to_vec())
        );
        assert_eq!(
            tx.get_key(&KeySelector::last_less_than(b"d".to_vec()))
                .unwrap(),
            Some(b"b".to_vec())
        );
        assert_eq!(
            tx.get_key(&KeySelector::last_less_or_equal(b"d".to_vec()))
                .unwrap(),
            Some(b"d".to_vec())
        );
    }

    #[test]
    fn key_and_value_size_limits() {
        let db = Database::new();
        let tx = db.create_transaction();
        let big_key = vec![0u8; KEY_SIZE_LIMIT + 1];
        assert!(matches!(
            tx.try_set(&big_key, b"v"),
            Err(Error::KeyTooLarge { .. })
        ));
        let big_val = vec![0u8; VALUE_SIZE_LIMIT + 1];
        assert!(matches!(
            tx.try_set(b"k", &big_val),
            Err(Error::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn cancel_discards_writes() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.cancel();
        let tx2 = db.create_transaction();
        assert_eq!(tx2.get(b"k").unwrap(), None);
    }

    #[test]
    fn committed_transaction_rejects_further_use() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        tx.commit().unwrap();
        assert!(matches!(tx.get(b"k"), Err(Error::UsedDuringCommit)));
        assert!(matches!(tx.commit(), Err(Error::UsedDuringCommit)));
    }

    #[test]
    fn versionstamp_available_after_commit() {
        let db = Database::new();
        let tx = db.create_transaction();
        tx.set(b"k", b"v");
        assert_eq!(tx.versionstamp(), None);
        tx.commit().unwrap();
        let vs = tx.versionstamp().unwrap();
        let committed = tx.committed_version().unwrap();
        assert_eq!(u64::from_be_bytes(vs[0..8].try_into().unwrap()), committed);
    }
}
