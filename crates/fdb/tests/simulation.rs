//! Simulator-level integration tests: MVCC window expiry, compaction,
//! metrics accounting, selector edge cases, and interleaved-transaction
//! serializability checks.

use rl_fdb::atomic::MutationType;
use rl_fdb::database::{DatabaseOptions, VERSIONS_PER_MS};
use rl_fdb::{Database, Error, KeySelector, RangeOptions};

#[test]
fn mvcc_history_compacts_but_recent_readers_still_work() {
    let opts = DatabaseOptions {
        compaction_interval: 8,
        mvcc_window_versions: 1_000 * VERSIONS_PER_MS,
        ..DatabaseOptions::default()
    };
    let db = Database::with_options(opts);

    for round in 0..100u32 {
        let tx = db.create_transaction();
        tx.set(b"hot", format!("v{round}").as_bytes());
        tx.commit().unwrap();
        db.advance_clock(50);
    }
    // Latest value visible; long-expired read versions rejected.
    let tx = db.create_transaction();
    assert_eq!(tx.get(b"hot").unwrap(), Some(b"v99".to_vec()));
    assert!(matches!(
        db.create_transaction_at(1),
        Err(Error::TransactionTooOld)
    ));
    // Future versions rejected too.
    assert!(matches!(
        db.create_transaction_at(u64::MAX),
        Err(Error::FutureVersion)
    ));
}

#[test]
fn metrics_account_reads_writes_and_conflicts() {
    let db = Database::new();
    let m = db.metrics();
    let base = m.snapshot();

    let tx = db.create_transaction();
    tx.set(b"a", b"1");
    tx.set(b"b", b"2");
    tx.commit().unwrap();
    let after_write = m.snapshot().delta(&base);
    assert_eq!(after_write.keys_written, 2);
    assert_eq!(after_write.commits_succeeded, 1);

    let tx = db.create_transaction();
    let _ = tx.get_range(b"a", b"z", RangeOptions::default()).unwrap();
    let after_read = m.snapshot().delta(&base);
    assert_eq!(after_read.keys_read, 2);

    // Manufacture a conflict.
    let t1 = db.create_transaction();
    let _ = t1.get(b"a").unwrap();
    let t2 = db.create_transaction();
    t2.set(b"a", b"x");
    t2.commit().unwrap();
    t1.set(b"c", b"y");
    assert!(t1.commit().is_err());
    let after_conflict = m.snapshot().delta(&base);
    assert_eq!(after_conflict.conflicts, 1);
}

#[test]
fn key_selector_edges() {
    let db = Database::new();
    let tx = db.create_transaction();
    for k in [b"b", b"d", b"f"] {
        tx.set(k, b"v");
    }
    tx.commit().unwrap();

    let tx = db.create_transaction();
    // Before the first key.
    assert_eq!(
        tx.get_key(&KeySelector::last_less_than(b"a".to_vec()))
            .unwrap(),
        None
    );
    assert_eq!(
        tx.get_key(&KeySelector::first_greater_or_equal(b"a".to_vec()))
            .unwrap(),
        Some(b"b".to_vec())
    );
    // After the last key.
    assert_eq!(
        tx.get_key(&KeySelector::first_greater_than(b"f".to_vec()))
            .unwrap(),
        None
    );
    assert_eq!(
        tx.get_key(&KeySelector::last_less_or_equal(b"z".to_vec()))
            .unwrap(),
        Some(b"f".to_vec())
    );
    // Multi-step offsets.
    assert_eq!(
        tx.get_key(&KeySelector::first_greater_or_equal(b"a".to_vec()).add(2))
            .unwrap(),
        Some(b"f".to_vec())
    );
}

#[test]
fn serializability_of_interleaved_swaps() {
    // Classic write-skew-free check: two transactions each read both keys
    // and swap them; under strict serializability only one may commit.
    let db = Database::new();
    let tx = db.create_transaction();
    tx.set(b"x", b"1");
    tx.set(b"y", b"2");
    tx.commit().unwrap();

    let t1 = db.create_transaction();
    let t2 = db.create_transaction();
    let x1 = t1.get(b"x").unwrap().unwrap();
    let y1 = t1.get(b"y").unwrap().unwrap();
    let x2 = t2.get(b"x").unwrap().unwrap();
    let y2 = t2.get(b"y").unwrap().unwrap();
    t1.set(b"x", &y1);
    t1.set(b"y", &x1);
    t2.set(b"x", &y2);
    t2.set(b"y", &x2);
    assert!(t1.commit().is_ok());
    assert!(t2.commit().is_err(), "second swap must conflict");

    let tx = db.create_transaction();
    assert_eq!(tx.get(b"x").unwrap(), Some(b"2".to_vec()));
    assert_eq!(tx.get(b"y").unwrap(), Some(b"1".to_vec()));
}

#[test]
fn atomic_ops_interleave_with_sets_in_program_order() {
    let db = Database::new();
    let tx = db.create_transaction();
    tx.mutate(MutationType::Add, b"k", &5u64.to_le_bytes())
        .unwrap();
    tx.set(b"k", &100u64.to_le_bytes());
    tx.mutate(MutationType::Add, b"k", &1u64.to_le_bytes())
        .unwrap();
    tx.commit().unwrap();
    let tx = db.create_transaction();
    let v = tx.get(b"k").unwrap().unwrap();
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 101);
}

#[test]
fn clear_range_vs_concurrent_write_conflicts() {
    let db = Database::new();
    let tx = db.create_transaction();
    tx.set(b"p1", b"v");
    tx.set(b"p2", b"v");
    tx.commit().unwrap();

    // Reader scans the range; a clear-range commits behind it.
    let t1 = db.create_transaction();
    let _ = t1.get_range(b"p", b"q", RangeOptions::default()).unwrap();
    let t2 = db.create_transaction();
    t2.clear_range(b"p", b"q");
    t2.commit().unwrap();
    t1.set(b"other", b"x");
    assert!(matches!(t1.commit(), Err(Error::NotCommitted)));
}

#[test]
fn snapshot_range_plus_manual_conflict_key() {
    // The §10.1 pattern: snapshot-read a range, conflict only on the
    // distinguished key you depend on.
    let db = Database::new();
    let tx = db.create_transaction();
    tx.set(b"s1", b"v");
    tx.set(b"s2", b"v");
    tx.commit().unwrap();

    let t1 = db.create_transaction();
    let _ = t1
        .get_range_snapshot(b"s", b"t", RangeOptions::default())
        .unwrap();
    t1.add_read_conflict_key(b"s1");
    // Concurrent write to the *other* key: no conflict.
    let t2 = db.create_transaction();
    t2.set(b"s2", b"changed");
    t2.commit().unwrap();
    t1.set(b"out", b"1");
    t1.commit().unwrap();

    // But a write to the distinguished key does conflict.
    let t3 = db.create_transaction();
    let _ = t3
        .get_range_snapshot(b"s", b"t", RangeOptions::default())
        .unwrap();
    t3.add_read_conflict_key(b"s1");
    let t4 = db.create_transaction();
    t4.set(b"s1", b"changed");
    t4.commit().unwrap();
    t3.set(b"out2", b"1");
    assert!(matches!(t3.commit(), Err(Error::NotCommitted)));
}

#[test]
fn read_only_transactions_always_commit() {
    let db = Database::new();
    let t1 = db.create_transaction();
    let _ = t1.get(b"anything").unwrap();
    // A conflicting write lands...
    let t2 = db.create_transaction();
    t2.set(b"anything", b"v");
    t2.commit().unwrap();
    // ...but a read-only transaction already saw a consistent snapshot.
    t1.commit().unwrap();
}
