//! Integration: the paged engine's I/O counters surface through
//! [`rl_fdb::metrics::MetricsSnapshot`] after a committed workload —
//! `page_hits`/`page_misses`/`log_appends` must be live and mutually
//! consistent, not dead struct fields.
//!
//! The engine is requested explicitly (not via `RL_ENGINE`) so the test
//! exercises the disk-backed path regardless of how the suite is run.

use rl_fdb::storage::EvictionPolicy;
use rl_fdb::{Database, DatabaseOptions, EngineKind, PagedConfig};

fn paged_db() -> Database {
    // A deliberately tiny pool (8 × 4 kB) so a ~200 kB workload cannot
    // stay resident: reads after the write phase must miss and evict.
    let mut cfg = PagedConfig::ephemeral(EvictionPolicy::default());
    cfg.pool_pages = 8;
    Database::with_options(DatabaseOptions {
        engine: EngineKind::Paged(cfg),
        ..DatabaseOptions::default()
    })
}

#[test]
fn paged_engine_reports_io_metrics() {
    let db = paged_db();
    let before = db.metrics().snapshot();

    // A write-then-read workload big enough to touch many pages: 40
    // committed batches of 25 keys with 200-byte values (~200 kB total,
    // several times the 4 kB page size).
    let batches = 40u64;
    for b in 0..batches {
        let tx = db.create_transaction();
        for i in 0..25u64 {
            let key = format!("paged-metrics/{b:04}/{i:04}");
            tx.set(key.as_bytes(), &[b as u8; 200]);
        }
        tx.commit().unwrap();
    }
    for b in 0..batches {
        let tx = db.create_transaction();
        for i in 0..25u64 {
            let key = format!("paged-metrics/{b:04}/{i:04}");
            let got = tx.get(key.as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(&[b as u8; 200][..]));
        }
        tx.commit().unwrap();
    }

    let delta = db.metrics().snapshot().delta(&before);

    // Commit pipeline counters.
    assert_eq!(delta.commits_succeeded, 2 * batches);
    assert_eq!(delta.keys_written, 25 * batches);

    // Buffer pool counters: the workload must have touched the pool, and
    // every page ever read from disk was a recorded miss.
    assert!(
        delta.page_hits + delta.page_misses > 0,
        "buffer pool saw no traffic: {delta:?}"
    );
    assert!(
        delta.page_misses > 0,
        "a cold pool must miss at least once: {delta:?}"
    );

    // WAL counters: each committed writing batch appends at least one
    // frame, so appends must be at least the number of writing commits.
    assert!(
        delta.log_appends >= batches,
        "expected >= {batches} WAL appends, got {}",
        delta.log_appends
    );

    // Evictions imply write-back work happened; flushes also accrue at
    // checkpoints, so flushes can only exceed or equal forced evictions
    // of dirty pages — never be counted without pool traffic.
    if delta.page_evictions > 0 {
        assert!(
            delta.page_hits + delta.page_misses >= delta.page_evictions,
            "evictions without matching pool traffic: {delta:?}"
        );
    }
}

#[test]
fn in_memory_engine_reports_zero_io_metrics() {
    let db = Database::with_options(DatabaseOptions {
        engine: EngineKind::InMemory,
        ..DatabaseOptions::default()
    });
    let tx = db.create_transaction();
    tx.set(b"mem/a", b"1");
    tx.commit().unwrap();

    let snap = db.metrics().snapshot();
    assert_eq!(snap.page_hits, 0);
    assert_eq!(snap.page_misses, 0);
    assert_eq!(snap.log_appends, 0);
    assert_eq!(snap.commits_succeeded, 1);
}
