//! The CloudKit service: per-(user, application) record stores with
//! system fields and zone-scoped primary keys (§8, Figure 3).

use std::sync::Arc;

use record_layer::expr::{EvalContext, KeyExpression};
use record_layer::metadata::{Index, RecordMetaData, RecordMetaDataBuilder};
use record_layer::store::{RecordStore, StoredRecord};
use record_layer::Result;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::version::Versionstamp;
use rl_fdb::{Database, Subspace, Transaction};
use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor, Value};

/// The CloudKit record type name used for generic records.
pub const RECORD_TYPE: &str = "CKRecord";

/// Configuration for a CloudKit deployment.
#[derive(Debug, Clone)]
pub struct CloudKitConfig {
    /// Extra user-defined field names indexed with VALUE indexes (CloudKit
    /// translates the application schema into Record Layer metadata, §8).
    /// Must evolve append-only across deployments: each entry's position
    /// determines its metadata version, so removing or reordering entries
    /// produces a schema the §5 staleness check cannot tell apart from the
    /// original.
    pub indexed_fields: Vec<String>,
    /// Whether to maintain the quota-management size index (§8 "system"
    /// indexes).
    pub quota_index: bool,
}

impl Default for CloudKitConfig {
    fn default() -> Self {
        CloudKitConfig {
            indexed_fields: vec![],
            quota_index: true,
        }
    }
}

/// A simplified CloudKit record: a name, a zone, and string/int fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordData {
    pub zone: String,
    pub name: String,
    pub string_fields: Vec<(String, String)>,
    pub int_fields: Vec<(String, i64)>,
}

impl RecordData {
    pub fn new(zone: impl Into<String>, name: impl Into<String>) -> Self {
        RecordData {
            zone: zone.into(),
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn string_field(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.string_fields.push((name.into(), value.into()));
        self
    }

    pub fn int_field(mut self, name: impl Into<String>, value: i64) -> Self {
        self.int_fields.push((name.into(), value));
        self
    }
}

/// The CloudKit service head: stateless, like the Record Layer itself —
/// clone freely across threads.
#[derive(Clone)]
pub struct CloudKit {
    db: Database,
    metadata: Arc<RecordMetaData>,
}

/// Build the generic CloudKit message descriptor: system fields plus a
/// bag of user fields (field1..field8 strings, num1..num4 ints keep the
/// schema self-contained for the simulation).
fn cloudkit_pool() -> DescriptorPool {
    let mut fields = vec![
        FieldDescriptor::optional("zone", 1, FieldType::String),
        FieldDescriptor::optional("record_name", 2, FieldType::String),
        // System fields CloudKit adds: creation/modification tracking and
        // the incarnation of the writing user (§8.1).
        FieldDescriptor::optional("created_at", 3, FieldType::Int64),
        FieldDescriptor::optional("modified_at", 4, FieldType::Int64),
        FieldDescriptor::optional("incarnation", 5, FieldType::Int64),
        // Legacy Cassandra-era update counter, present only on migrated
        // records (drives the function key expression below).
        FieldDescriptor::optional("update_counter", 6, FieldType::Int64),
    ];
    for i in 0..8 {
        fields.push(FieldDescriptor::optional(
            format!("field{i}"),
            10 + i,
            FieldType::String,
        ));
    }
    for i in 0..4 {
        fields.push(FieldDescriptor::optional(
            format!("num{i}"),
            20 + i,
            FieldType::Int64,
        ));
    }
    let mut pool = DescriptorPool::new();
    pool.add_message(MessageDescriptor::new(RECORD_TYPE, fields).unwrap())
        .unwrap();
    pool
}

/// The sync key expression from §8.1: a function of (incarnation, version,
/// update_counter) — `(0, update_counter)` for records last written by the
/// legacy system, `(incarnation, version)` otherwise. This keeps legacy
/// order intact and sorts all legacy changes before new ones, with no
/// business logic in the application.
fn sync_key_expression() -> KeyExpression {
    KeyExpression::function("incarnation_sync_key", 3, |ctx: &EvalContext<'_>| {
        let zone = ctx
            .message
            .get("zone")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let legacy_counter = ctx.message.get("update_counter").and_then(Value::as_i64);
        let tuple = match legacy_counter {
            Some(counter) => Tuple::new()
                .push(zone)
                .push(0i64)
                .push(TupleElement::Versionstamp(Versionstamp::complete(
                    counter as u64,
                    0,
                    0,
                ))),
            None => {
                let incarnation = ctx
                    .message
                    .get("incarnation")
                    .and_then(Value::as_i64)
                    .unwrap_or(1);
                let version = ctx.version.unwrap_or_else(|| Versionstamp::incomplete(0));
                Tuple::new().push(zone).push(incarnation).push(version)
            }
        };
        Ok(vec![tuple])
    })
}

/// Build the Record Layer metadata CloudKit uses for every record store.
pub fn cloudkit_metadata(config: &CloudKitConfig) -> RecordMetaData {
    let mut builder = RecordMetaDataBuilder::new(cloudkit_pool())
        // Zone name prefixes the primary key for efficient per-zone access
        // (§8): pk = (zone, record_name).
        .record_type(
            RECORD_TYPE,
            KeyExpression::concat_fields("zone", "record_name"),
        )
        // The sync index: (zone, incarnation, version) → record (§8.1).
        .index(
            RECORD_TYPE,
            Index::version("ck_sync", sync_key_expression()),
        );
    if config.quota_index {
        // System index tracking record count per zone for quota management
        // (stand-in for the size-by-type index described in §8).
        builder = builder.index(
            RECORD_TYPE,
            Index::count("ck_zone_count", KeyExpression::field("zone")),
        );
    }
    // Each user-defined field index is a later evolution of the shared
    // schema (§5): bumping the metadata version per field lets stores
    // created under an older config detect an appended index when they
    // open and leave it disabled until an online build backfills it.
    // Versions are positional, so this relies on `indexed_fields` being
    // append-only (see CloudKitConfig); §5 versioning is single-stream
    // and cannot represent a replaced or reordered field list.
    for (step, field) in config.indexed_fields.iter().enumerate() {
        builder = builder.version(2 + step as u64).index(
            RECORD_TYPE,
            Index::value(
                format!("ck_user_{field}"),
                KeyExpression::concat(vec![
                    KeyExpression::field("zone"),
                    KeyExpression::field(field),
                ]),
            ),
        );
    }
    builder.build().expect("cloudkit metadata is valid")
}

impl CloudKit {
    pub fn new(db: &Database, config: &CloudKitConfig) -> Self {
        CloudKit {
            db: db.clone(),
            metadata: Arc::new(cloudkit_metadata(config)),
        }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn metadata(&self) -> &RecordMetaData {
        &self.metadata
    }

    /// The subspace of one (user, application) record store — the Figure 3
    /// keyspace layout. Each pair is an isolated logical database.
    pub fn store_subspace(&self, user: i64, application: &str) -> Subspace {
        Subspace::from_tuple(&Tuple::new().push("ck").push(user).push(application))
    }

    /// Open the record store for (user, application) in a transaction.
    pub fn open_store<'a>(
        &'a self,
        tx: &'a Transaction,
        user: i64,
        application: &str,
    ) -> Result<RecordStore<'a>> {
        RecordStore::open_or_create(tx, &self.store_subspace(user, application), &self.metadata)
    }

    /// The current incarnation of a user (1 if never moved). §8.1.
    pub fn incarnation(&self, tx: &Transaction, user: i64) -> Result<i64> {
        let key = Subspace::from_tuple(&Tuple::new().push("ck_meta").push(user))
            .pack(&Tuple::new().push("incarnation"));
        match tx.get(&key).map_err(record_layer::Error::Fdb)? {
            Some(v) => Ok(Tuple::unpack(&v)
                .map_err(record_layer::Error::Fdb)?
                .get(0)
                .and_then(TupleElement::as_int)
                .unwrap_or(1)),
            None => Ok(1),
        }
    }

    /// Bump the user's incarnation — done whenever the user's data is
    /// moved to a different cluster (§8.1).
    pub fn bump_incarnation(&self, tx: &Transaction, user: i64) -> Result<i64> {
        let next = self.incarnation(tx, user)? + 1;
        let key = Subspace::from_tuple(&Tuple::new().push("ck_meta").push(user))
            .pack(&Tuple::new().push("incarnation"));
        tx.try_set(&key, &Tuple::new().push(next).pack())
            .map_err(record_layer::Error::Fdb)?;
        Ok(next)
    }

    /// Save a record into a user's application store, stamping system
    /// fields (incarnation, modification time).
    pub fn save(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        data: &RecordData,
    ) -> Result<StoredRecord> {
        let incarnation = self.incarnation(tx, user)?;
        let store = self.open_store(tx, user, application)?;
        let mut msg = store.new_record(RECORD_TYPE)?;
        msg.set("zone", data.zone.as_str())?;
        msg.set("record_name", data.name.as_str())?;
        msg.set("incarnation", incarnation)?;
        msg.set("modified_at", self.db.clock_ms() as i64)?;
        for (k, v) in &data.string_fields {
            msg.set(k, v.as_str())?;
        }
        for (k, v) in &data.int_fields {
            msg.set(k, *v)?;
        }
        store.save_record(msg)
    }

    /// Load a record by zone and name.
    pub fn load(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        zone: &str,
        name: &str,
    ) -> Result<Option<StoredRecord>> {
        let store = self.open_store(tx, user, application)?;
        store.load_record(&Tuple::new().push(zone).push(name))
    }

    /// Delete a record.
    pub fn delete(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        zone: &str,
        name: &str,
    ) -> Result<bool> {
        let store = self.open_store(tx, user, application)?;
        store.delete_record(&Tuple::new().push(zone).push(name))
    }

    /// Number of records in a zone, from the quota system index.
    pub fn zone_record_count(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        zone: &str,
    ) -> Result<i64> {
        let store = self.open_store(tx, user, application)?;
        let v = store.evaluate_aggregate("ck_zone_count", &Tuple::new().push(zone))?;
        Ok(v.as_long().unwrap_or(0))
    }

    /// Move a tenant: copy the (user, application) key range verbatim to a
    /// destination database — "moving a tenant is as simple as copying the
    /// appropriate range of data" (§1) — then bump the incarnation on the
    /// destination so future sync versions sort after the move.
    pub fn move_tenant(&self, dest: &CloudKit, user: i64, application: &str) -> Result<usize> {
        let sub = self.store_subspace(user, application);
        let (begin, end) = sub.range_inclusive();
        let kvs = record_layer::run(&self.db, |tx| {
            tx.get_range(&begin, &end, rl_fdb::RangeOptions::default())
                .map_err(record_layer::Error::Fdb)
        })?;
        let count = kvs.len();
        record_layer::run(&dest.db, |tx| {
            for kv in &kvs {
                tx.try_set(&kv.key, &kv.value)
                    .map_err(record_layer::Error::Fdb)?;
            }
            Ok(())
        })?;
        record_layer::run(&dest.db, |tx| {
            dest.bump_incarnation(tx, user)?;
            Ok(())
        })?;
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_layer::run;

    #[test]
    fn per_user_per_app_stores_are_isolated() {
        let db = Database::new();
        let ck = CloudKit::new(&db, &CloudKitConfig::default());
        run(&db, |tx| {
            ck.save(
                tx,
                1,
                "notes",
                &RecordData::new("z", "a").string_field("field0", "u1"),
            )?;
            ck.save(
                tx,
                2,
                "notes",
                &RecordData::new("z", "a").string_field("field0", "u2"),
            )?;
            ck.save(
                tx,
                1,
                "photos",
                &RecordData::new("z", "a").string_field("field0", "p1"),
            )?;
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            let r = ck.load(tx, 1, "notes", "z", "a")?.unwrap();
            assert_eq!(r.message.get("field0").and_then(Value::as_str), Some("u1"));
            let r = ck.load(tx, 2, "notes", "z", "a")?.unwrap();
            assert_eq!(r.message.get("field0").and_then(Value::as_str), Some("u2"));
            let r = ck.load(tx, 1, "photos", "z", "a")?.unwrap();
            assert_eq!(r.message.get("field0").and_then(Value::as_str), Some("p1"));
            Ok(())
        })
        .unwrap();
        // Subspaces do not overlap (Figure 3 isolation).
        let a = ck.store_subspace(1, "notes");
        let b = ck.store_subspace(2, "notes");
        assert!(!a.contains(b.prefix()) && !b.contains(a.prefix()));
    }

    #[test]
    fn zone_prefixed_primary_keys() {
        let db = Database::new();
        let ck = CloudKit::new(&db, &CloudKitConfig::default());
        let rec = run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("zoneA", "rec1"))
        })
        .unwrap();
        assert_eq!(rec.primary_key, Tuple::from(("zoneA", "rec1")));
    }

    #[test]
    fn quota_index_counts_per_zone() {
        let db = Database::new();
        let ck = CloudKit::new(&db, &CloudKitConfig::default());
        run(&db, |tx| {
            for i in 0..5 {
                ck.save(tx, 1, "app", &RecordData::new("za", format!("r{i}")))?;
            }
            for i in 0..3 {
                ck.save(tx, 1, "app", &RecordData::new("zb", format!("r{i}")))?;
            }
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            assert_eq!(ck.zone_record_count(tx, 1, "app", "za")?, 5);
            assert_eq!(ck.zone_record_count(tx, 1, "app", "zb")?, 3);
            ck.delete(tx, 1, "app", "za", "r0")?;
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            assert_eq!(ck.zone_record_count(tx, 1, "app", "za")?, 4);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn incarnation_starts_at_one_and_bumps() {
        let db = Database::new();
        let ck = CloudKit::new(&db, &CloudKitConfig::default());
        run(&db, |tx| {
            assert_eq!(ck.incarnation(tx, 7)?, 1);
            assert_eq!(ck.bump_incarnation(tx, 7)?, 2);
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            assert_eq!(ck.incarnation(tx, 7)?, 2);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn user_defined_field_indexes() {
        let db = Database::new();
        let config = CloudKitConfig {
            indexed_fields: vec!["field0".into()],
            ..Default::default()
        };
        let ck = CloudKit::new(&db, &config);
        run(&db, |tx| {
            ck.save(
                tx,
                1,
                "app",
                &RecordData::new("z", "a").string_field("field0", "x"),
            )?;
            ck.save(
                tx,
                1,
                "app",
                &RecordData::new("z", "b").string_field("field0", "y"),
            )?;
            Ok(())
        })
        .unwrap();
        // Query through the planner using the user index.
        run(&db, |tx| {
            let store = ck.open_store(tx, 1, "app")?;
            let planner = record_layer::plan::RecordQueryPlanner::new(ck.metadata());
            let query = record_layer::query::RecordQuery::new()
                .record_type(RECORD_TYPE)
                .filter(record_layer::query::QueryComponent::and(vec![
                    record_layer::query::QueryComponent::field(
                        "zone",
                        record_layer::query::Comparison::Equals(TupleElement::String("z".into())),
                    ),
                    record_layer::query::QueryComponent::field(
                        "field0",
                        record_layer::query::Comparison::Equals(TupleElement::String("y".into())),
                    ),
                ]));
            let plan = planner.plan(&query)?;
            assert!(
                plan.describe().contains("IndexScan(ck_user_field0)"),
                "{}",
                plan.describe()
            );
            let results = plan.execute_all(&store)?;
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].primary_key, Tuple::from(("z", "b")));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn move_tenant_copies_range_and_bumps_incarnation() {
        let src_db = Database::new();
        let dst_db = Database::new();
        let src = CloudKit::new(&src_db, &CloudKitConfig::default());
        let dst = CloudKit::new(&dst_db, &CloudKitConfig::default());
        run(&src_db, |tx| {
            for i in 0..10 {
                src.save(tx, 5, "app", &RecordData::new("z", format!("r{i}")))?;
            }
            Ok(())
        })
        .unwrap();
        let copied = src.move_tenant(&dst, 5, "app").unwrap();
        assert!(copied > 10, "records + indexes + header: {copied}");
        run(&dst_db, |tx| {
            let r = dst.load(tx, 5, "app", "z", "r3")?;
            assert!(r.is_some(), "record must exist on destination");
            assert_eq!(dst.incarnation(tx, 5)?, 2);
            Ok(())
        })
        .unwrap();
    }
}
