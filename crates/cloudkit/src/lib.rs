//! # cloudkit-sim — a CloudKit-style multi-tenant service layer (§8)
//!
//! CloudKit is the paper's flagship Record Layer client: a container per
//! application, a record store per (user, application) pair — billions of
//! logical databases — records organized into *zones*, change-tracking
//! ("sync") built on VERSION indexes, and cross-cluster move support via
//! per-user *incarnations*.
//!
//! This crate reproduces that service layer over `record-layer`, plus the
//! two pre-FoundationDB baselines that Table 1 compares against:
//!
//! * [`baseline::ZoneCasBackend`] — the Cassandra-era design: all updates
//!   to a zone serialized through a per-zone update counter maintained
//!   with compare-and-set, giving zone-level concurrency only.
//! * [`baseline::AsyncIndexer`] — the Solr-era design: secondary indexes
//!   updated asynchronously, giving eventual consistency that queries can
//!   observe.
//!
//! ## Example
//!
//! ```
//! use cloudkit_sim::{CloudKit, CloudKitConfig, RecordData, SyncToken};
//! use rl_fdb::Database;
//!
//! let db = Database::new();
//! let ck = CloudKit::new(&db, &CloudKitConfig::default());
//! record_layer::run(&db, |tx| {
//!     ck.save(tx, 42, "com.example.app", &RecordData::new("default", "note-1"))?;
//!     Ok(())
//! }).unwrap();
//! let (changes, _token) = record_layer::run(&db, |tx| {
//!     ck.sync(tx, 42, "com.example.app", "default", &SyncToken::start(), 10)
//! }).unwrap();
//! assert_eq!(changes.len(), 1);
//! ```

pub mod baseline;
pub mod service;
pub mod sync;

pub use service::{CloudKit, CloudKitConfig, RecordData};
pub use sync::{SyncChange, SyncToken};
