//! The pre-FoundationDB baselines from Table 1 (§8.1).
//!
//! **ZoneCasBackend** models CloudKit-on-Cassandra: atomic multi-record
//! batches within a zone are implemented by serializing *all* updates to
//! the zone through a per-zone update counter maintained with
//! compare-and-set. Two consequences the paper calls out:
//! there is no concurrency within a zone (even for different records), and
//! zone size is bounded by a partition. We reproduce the concurrency
//! behaviour: every writer reads and overwrites the counter key, so
//! concurrent writers to one zone conflict and retry — in contrast to the
//! Record Layer path, where only true record conflicts abort.
//!
//! **AsyncIndexer** models Solr-maintained secondary indexes: index
//! updates are queued and applied later, so queries running between a
//! write and the indexer's catch-up observe stale results — the "eventual"
//! index consistency row of Table 1.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use rl_fdb::sync::lock;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::{Database, RangeOptions, Subspace};

/// Cassandra-style zone backend with CAS-serialized zone updates.
#[derive(Clone)]
pub struct ZoneCasBackend {
    db: Database,
    subspace: Subspace,
}

impl ZoneCasBackend {
    pub fn new(db: &Database, subspace: Subspace) -> Self {
        ZoneCasBackend {
            db: db.clone(),
            subspace,
        }
    }

    fn counter_key(&self, zone: &str) -> Vec<u8> {
        self.subspace.pack(&Tuple::new().push("ctr").push(zone))
    }

    fn record_key(&self, zone: &str, name: &str) -> Vec<u8> {
        self.subspace
            .pack(&Tuple::new().push("rec").push(zone).push(name))
    }

    fn sync_key(&self, zone: &str, counter: i64) -> Vec<u8> {
        self.subspace
            .pack(&Tuple::new().push("sync").push(zone).push(counter))
    }

    /// Save a record: read-CAS the zone counter (serializing the zone),
    /// write the record and the counter-ordered sync entry. Returns the
    /// number of commit attempts (1 = no contention).
    pub fn save(&self, zone: &str, name: &str, payload: &[u8]) -> rl_fdb::Result<u64> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let tx = self.db.create_transaction();
            // The CAS read: this is what serializes the whole zone.
            let current = tx
                .get(&self.counter_key(zone))?
                .map(|v| {
                    let mut buf = [0u8; 8];
                    buf[..v.len().min(8)].copy_from_slice(&v[..v.len().min(8)]);
                    i64::from_le_bytes(buf)
                })
                .unwrap_or(0);
            let next = current + 1;
            tx.set(&self.counter_key(zone), &next.to_le_bytes());
            tx.set(&self.record_key(zone, name), payload);
            tx.set(&self.sync_key(zone, next), name.as_bytes());
            match tx.commit() {
                Ok(()) => return Ok(attempts),
                Err(e) if e.is_retryable() => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Read a record.
    pub fn load(&self, zone: &str, name: &str) -> rl_fdb::Result<Option<Vec<u8>>> {
        let tx = self.db.create_transaction();
        tx.get(&self.record_key(zone, name))
    }

    /// Sync: scan the update-counter index after `since`.
    pub fn sync(&self, zone: &str, since: i64) -> rl_fdb::Result<Vec<(i64, String)>> {
        let tx = self.db.create_transaction();
        let sub = self
            .subspace
            .subspace(&Tuple::new().push("sync").push(zone));
        let begin = sub.pack(&Tuple::new().push(since + 1));
        let (_, end) = sub.range();
        let kvs = tx.get_range(&begin, &end, RangeOptions::default())?;
        kvs.into_iter()
            .map(|kv| {
                let t = sub.unpack(&kv.key)?;
                let counter = t.get(0).and_then(TupleElement::as_int).unwrap_or(0);
                Ok((counter, String::from_utf8_lossy(&kv.value).into_owned()))
            })
            .collect()
    }
}

/// One queued index mutation.
#[derive(Debug, Clone)]
enum IndexOp {
    Put { field_value: String, record: String },
    Remove { field_value: String, record: String },
}

/// Solr-style asynchronous secondary index: writes enqueue, a background
/// "indexer" applies them later, queries see whatever has been applied.
#[derive(Clone, Default)]
pub struct AsyncIndexer {
    state: Arc<Mutex<AsyncIndexState>>,
}

#[derive(Default)]
struct AsyncIndexState {
    queue: VecDeque<IndexOp>,
    /// field value → record names (the "index").
    applied: std::collections::BTreeMap<String, Vec<String>>,
}

impl AsyncIndexer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the write path: enqueue the index update (the write
    /// itself returns before the index reflects it).
    pub fn enqueue_put(&self, field_value: &str, record: &str) {
        lock(&self.state).queue.push_back(IndexOp::Put {
            field_value: field_value.to_string(),
            record: record.to_string(),
        });
    }

    pub fn enqueue_remove(&self, field_value: &str, record: &str) {
        lock(&self.state).queue.push_back(IndexOp::Remove {
            field_value: field_value.to_string(),
            record: record.to_string(),
        });
    }

    /// The background job: apply up to `n` pending updates.
    pub fn apply_pending(&self, n: usize) -> usize {
        let mut st = lock(&self.state);
        let mut applied = 0;
        while applied < n {
            let Some(op) = st.queue.pop_front() else {
                break;
            };
            match op {
                IndexOp::Put {
                    field_value,
                    record,
                } => {
                    let entries = st.applied.entry(field_value).or_default();
                    if !entries.contains(&record) {
                        entries.push(record);
                    }
                }
                IndexOp::Remove {
                    field_value,
                    record,
                } => {
                    if let Some(entries) = st.applied.get_mut(&field_value) {
                        entries.retain(|r| r != &record);
                    }
                }
            }
            applied += 1;
        }
        applied
    }

    /// Query the (possibly stale) index.
    pub fn query(&self, field_value: &str) -> Vec<String> {
        lock(&self.state)
            .applied
            .get(field_value)
            .cloned()
            .unwrap_or_default()
    }

    /// How many updates have not yet been applied.
    pub fn lag(&self) -> usize {
        lock(&self.state).queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_cas_serializes_writers_in_a_zone() {
        let db = Database::new();
        let backend = ZoneCasBackend::new(&db, Subspace::from_bytes(b"cas".to_vec()));
        // Two deliberately interleaved writers to the same zone: both read
        // the counter before either commits — exactly one must retry.
        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        let key = backend.counter_key("z");
        let _ = t1.get(&key).unwrap();
        let _ = t2.get(&key).unwrap();
        t1.set(&key, &1i64.to_le_bytes());
        t2.set(&key, &1i64.to_le_bytes());
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(rl_fdb::Error::NotCommitted));
    }

    #[test]
    fn zone_cas_writers_to_different_zones_do_not_interfere() {
        let db = Database::new();
        let backend = ZoneCasBackend::new(&db, Subspace::from_bytes(b"cas".to_vec()));
        let a1 = backend.save("za", "r1", b"v").unwrap();
        let a2 = backend.save("zb", "r1", b"v").unwrap();
        assert_eq!(a1, 1);
        assert_eq!(a2, 1);
    }

    #[test]
    fn zone_cas_sync_orders_by_counter() {
        let db = Database::new();
        let backend = ZoneCasBackend::new(&db, Subspace::from_bytes(b"cas".to_vec()));
        backend.save("z", "a", b"1").unwrap();
        backend.save("z", "b", b"2").unwrap();
        backend.save("z", "a", b"3").unwrap();
        let all = backend.sync("z", 0).unwrap();
        let names: Vec<&str> = all.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "a"]);
        let tail = backend.sync("z", 2).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(backend.load("z", "a").unwrap().unwrap(), b"3");
    }

    #[test]
    fn async_indexer_is_eventually_consistent() {
        let idx = AsyncIndexer::new();
        idx.enqueue_put("red", "rec1");
        // The Table 1 failure mode: query before the indexer catches up
        // misses the record.
        assert!(idx.query("red").is_empty());
        assert_eq!(idx.lag(), 1);
        idx.apply_pending(10);
        assert_eq!(idx.query("red"), vec!["rec1".to_string()]);
        assert_eq!(idx.lag(), 0);
        // Removal also lags.
        idx.enqueue_remove("red", "rec1");
        assert_eq!(idx.query("red"), vec!["rec1".to_string()]);
        idx.apply_pending(10);
        assert!(idx.query("red").is_empty());
    }
}
