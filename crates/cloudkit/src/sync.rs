//! Change tracking ("sync", §8.1): bring a device up to date by scanning
//! the VERSION-backed sync index from the last seen position.
//!
//! The sync index maps `(zone, incarnation, version)` to changed records.
//! Because versions are totally ordered within a cluster and incarnations
//! order across cluster moves, a client that remembers its last
//! [`SyncToken`] sees every subsequent change exactly once.

use record_layer::cursor::{Continuation, CursorResult, ExecuteProperties, RecordCursor};
use record_layer::store::TupleRange;
use record_layer::Result;
use rl_fdb::tuple::Tuple;
use rl_fdb::Transaction;

use crate::service::CloudKit;

/// An opaque position in a zone's change stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncToken(Option<Vec<u8>>);

impl SyncToken {
    /// Start from the beginning of the zone's history.
    pub fn start() -> Self {
        SyncToken(None)
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.clone().unwrap_or_default()
    }

    pub fn from_bytes(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            SyncToken(None)
        } else {
            SyncToken(Some(bytes.to_vec()))
        }
    }
}

/// One change surfaced by sync.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncChange {
    /// Primary key of the changed record: (zone, record_name).
    pub primary_key: Tuple,
    /// The (incarnation, version-or-counter) ordering key.
    pub ordering: Tuple,
}

impl CloudKit {
    /// Fetch up to `limit` changes to a zone after `token`, returning the
    /// changes and the token to resume from. Scanning the VERSION index is
    /// the entire implementation (§8.1: "To perform a sync, CloudKit
    /// simply scans the VERSION index").
    pub fn sync(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        zone: &str,
        token: &SyncToken,
        limit: usize,
    ) -> Result<(Vec<SyncChange>, SyncToken)> {
        let store = self.open_store(tx, user, application)?;
        let range = match &token.0 {
            None => TupleRange::prefix(Tuple::new().push(zone)),
            Some(bytes) => {
                let last = Tuple::unpack(bytes).map_err(record_layer::Error::Fdb)?;
                TupleRange::between(Some((last, false)), Some((Tuple::new().push(zone), true)))
            }
        };
        let mut cursor = store.scan_index(
            "ck_sync",
            &range,
            &Continuation::Start,
            false,
            &ExecuteProperties::new().with_return_limit(limit),
        )?;
        let mut changes = Vec::new();
        let mut last_key: Option<Tuple> = None;
        for _ in 0..limit {
            match cursor.next()? {
                CursorResult::Next { value: entry, .. } => {
                    last_key = Some(entry.key.clone());
                    changes.push(SyncChange {
                        primary_key: entry.primary_key,
                        // ordering = (incarnation, version) behind the zone.
                        ordering: entry.key.suffix(1),
                    });
                }
                CursorResult::NoNext { .. } => break,
            }
        }
        let next = match last_key {
            Some(k) => SyncToken(Some(k.pack())),
            None => token.clone(),
        };
        Ok((changes, next))
    }

    /// Write a legacy record as the Cassandra-era system would have: with
    /// an `update_counter` and no version-based ordering. Used to test the
    /// migration path (§8.1's function key expression).
    pub fn save_legacy(
        &self,
        tx: &Transaction,
        user: i64,
        application: &str,
        zone: &str,
        name: &str,
        update_counter: i64,
    ) -> Result<()> {
        let store = self.open_store(tx, user, application)?;
        let mut msg = store.new_record(crate::service::RECORD_TYPE)?;
        msg.set("zone", zone)?;
        msg.set("record_name", name)?;
        msg.set("update_counter", update_counter)?;
        store.save_record(msg)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CloudKitConfig, RecordData};
    use record_layer::run;
    use rl_fdb::tuple::TupleElement;
    use rl_fdb::Database;

    fn setup() -> (Database, CloudKit) {
        let db = Database::new();
        let ck = CloudKit::new(&db, &CloudKitConfig::default());
        (db, ck)
    }

    #[test]
    fn sync_returns_changes_in_order_and_resumes() {
        let (db, ck) = setup();
        run(&db, |tx| {
            for i in 0..5 {
                ck.save(tx, 1, "app", &RecordData::new("z", format!("r{i}")))?;
            }
            Ok(())
        })
        .unwrap();
        let (changes, token) =
            run(&db, |tx| ck.sync(tx, 1, "app", "z", &SyncToken::start(), 3)).unwrap();
        assert_eq!(changes.len(), 3);
        let names: Vec<String> = changes
            .iter()
            .map(|c| c.primary_key.get(1).unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["r0", "r1", "r2"]);

        let (rest, token2) = run(&db, |tx| ck.sync(tx, 1, "app", "z", &token, 10)).unwrap();
        assert_eq!(rest.len(), 2);
        // Nothing more afterwards.
        let (none, _) = run(&db, |tx| ck.sync(tx, 1, "app", "z", &token2, 10)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn resave_moves_change_to_end() {
        let (db, ck) = setup();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("z", "a"))?;
            ck.save(tx, 1, "app", &RecordData::new("z", "b"))?;
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("z", "a"))?; // touch a again
            Ok(())
        })
        .unwrap();
        let (changes, _) = run(&db, |tx| {
            ck.sync(tx, 1, "app", "z", &SyncToken::start(), 10)
        })
        .unwrap();
        let names: Vec<&str> = changes
            .iter()
            .map(|c| c.primary_key.get(1).unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["b", "a"],
            "a must appear once, at its new position"
        );
    }

    #[test]
    fn zones_have_independent_streams() {
        let (db, ck) = setup();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("za", "1"))?;
            ck.save(tx, 1, "app", &RecordData::new("zb", "2"))?;
            ck.save(tx, 1, "app", &RecordData::new("za", "3"))?;
            Ok(())
        })
        .unwrap();
        let (a_changes, _) = run(&db, |tx| {
            ck.sync(tx, 1, "app", "za", &SyncToken::start(), 10)
        })
        .unwrap();
        assert_eq!(a_changes.len(), 2);
        let (b_changes, _) = run(&db, |tx| {
            ck.sync(tx, 1, "app", "zb", &SyncToken::start(), 10)
        })
        .unwrap();
        assert_eq!(b_changes.len(), 1);
    }

    #[test]
    fn legacy_records_sort_before_new_ones() {
        // §8.1: the function key expression maps legacy update-counter
        // records to (0, counter), new records to (incarnation >= 1,
        // version); legacy order is preserved and precedes everything new.
        let (db, ck) = setup();
        run(&db, |tx| {
            ck.save_legacy(tx, 1, "app", "z", "old2", 200)?;
            ck.save_legacy(tx, 1, "app", "z", "old1", 100)?;
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("z", "new1"))?;
            Ok(())
        })
        .unwrap();
        let (changes, _) = run(&db, |tx| {
            ck.sync(tx, 1, "app", "z", &SyncToken::start(), 10)
        })
        .unwrap();
        let names: Vec<&str> = changes
            .iter()
            .map(|c| c.primary_key.get(1).unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["old1", "old2", "new1"]);
        // Legacy ordering keys carry incarnation 0.
        assert_eq!(changes[0].ordering.get(0), Some(&TupleElement::Int(0)));
    }

    #[test]
    fn incarnation_orders_changes_across_moves() {
        let (db, ck) = setup();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("z", "before_move"))?;
            Ok(())
        })
        .unwrap();
        // Simulate a move to another cluster: bump the incarnation (the
        // new cluster's versions restart, which we approximate by using
        // the same database — incarnation alone must keep ordering).
        run(&db, |tx| {
            ck.bump_incarnation(tx, 1)?;
            Ok(())
        })
        .unwrap();
        run(&db, |tx| {
            ck.save(tx, 1, "app", &RecordData::new("z", "after_move"))?;
            Ok(())
        })
        .unwrap();
        let (changes, _) = run(&db, |tx| {
            ck.sync(tx, 1, "app", "z", &SyncToken::start(), 10)
        })
        .unwrap();
        let names: Vec<&str> = changes
            .iter()
            .map(|c| c.primary_key.get(1).unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["before_move", "after_move"]);
        assert_eq!(changes[0].ordering.get(0), Some(&TupleElement::Int(1)));
        assert_eq!(changes[1].ordering.get(0), Some(&TupleElement::Int(2)));
    }
}
