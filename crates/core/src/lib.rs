//! # record-layer — the FoundationDB Record Layer, reproduced in Rust
//!
//! This crate implements the primary contribution of *"FoundationDB Record
//! Layer: A Multi-Tenant Structured Datastore"* (SIGMOD 2019): a
//! record-oriented, schema-managed, transactionally-indexed datastore built
//! as a stateless library over an ordered transactional key-value store
//! (here, the [`rl_fdb`] simulator).
//!
//! ## Tour
//!
//! * [`metadata`] — record types, index definitions, metadata versioning
//!   and schema evolution (§5).
//! * [`expr`] — key expressions: `field`, `nest`, `concat`, fan-out of
//!   repeated fields, record-type keys, versions, grouping, and
//!   client-defined function expressions (Appendix A).
//! * [`store`] — the record store abstraction (§4): one contiguous
//!   subspace holding records (split across keys when large), indexes,
//!   per-record commit versions, and the store header.
//! * [`index`] — index maintainers (§6–7): VALUE, the atomic-mutation
//!   family (COUNT, COUNT_UPDATES, COUNT_NON_NULL, SUM, MIN_EVER,
//!   MAX_EVER), VERSION, RANK (a durable skip list), and TEXT (a bunched
//!   inverted index), plus the online index builder.
//! * [`cursor`] — streaming cursors with continuations and enforced scan
//!   limits (§8.2): every operation can be paused and resumed across
//!   transactions, keeping the layer stateless.
//! * [`query`] / [`plan`] — the declarative query API and the cost-based
//!   planner that turns filters into index scans, covering scans, unions,
//!   streaming intersections, and residual filters (Appendix C). Plan
//!   choice is driven by persistent per-index statistics the store's
//!   write path maintains; `RecordQueryPlan::explain()` renders the plan
//!   tree with estimated costs.
//! * [`keyspace`] — the KeySpace API for carving up the global keyspace
//!   like a filesystem (§4).
//!
//! ## Example
//!
//! ```
//! use record_layer::expr::KeyExpression;
//! use record_layer::metadata::RecordMetaDataBuilder;
//! use record_layer::store::RecordStore;
//! use rl_fdb::tuple::Tuple;
//! use rl_fdb::{Database, Subspace};
//! use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};
//!
//! let mut pool = DescriptorPool::new();
//! pool.add_message(MessageDescriptor::new(
//!     "User",
//!     vec![
//!         FieldDescriptor::optional("id", 1, FieldType::Int64),
//!         FieldDescriptor::optional("name", 2, FieldType::String),
//!     ],
//! ).unwrap()).unwrap();
//! let metadata = RecordMetaDataBuilder::new(pool)
//!     .record_type("User", KeyExpression::field("id"))
//!     .build().unwrap();
//!
//! let db = Database::new();
//! let space = Subspace::from_bytes(b"doc".to_vec());
//! record_layer::run(&db, |tx| {
//!     let store = RecordStore::open_or_create(tx, &space, &metadata)?;
//!     let mut user = store.new_record("User")?;
//!     user.set("id", 1i64).unwrap();
//!     user.set("name", "ada").unwrap();
//!     store.save_record(user)?;
//!     Ok(())
//! }).unwrap();
//!
//! let name = record_layer::run(&db, |tx| {
//!     let store = RecordStore::open_or_create(tx, &space, &metadata)?;
//!     let rec = store.load_record(&Tuple::from((1i64,)))?.unwrap();
//!     Ok(rec.message.get("name").and_then(|v| v.as_str().map(String::from)))
//! }).unwrap();
//! assert_eq!(name.as_deref(), Some("ada"));
//! ```

pub mod cursor;
pub mod error;
pub mod expr;
pub mod index;
pub mod keyspace;
pub mod metadata;
pub mod plan;
pub mod query;
pub mod serialize;
pub mod store;

pub use error::{Error, Result};

/// Retry loop for Record Layer work: runs `f` in a fresh transaction,
/// commits, and retries on retryable errors (conflicts, stale read
/// versions) — the layer-level analogue of the FDB bindings' `run`.
pub fn run<T>(
    db: &rl_fdb::Database,
    mut f: impl FnMut(&rl_fdb::Transaction) -> Result<T>,
) -> Result<T> {
    const MAX_RETRIES: usize = 64;
    let mut last = Error::Fdb(rl_fdb::Error::NotCommitted);
    for _ in 0..MAX_RETRIES {
        let tx = db.create_transaction();
        match f(&tx) {
            Ok(v) => match tx.commit() {
                Ok(()) => return Ok(v),
                Err(e) if e.is_retryable() => last = Error::Fdb(e),
                Err(e) => return Err(Error::Fdb(e)),
            },
            Err(e) if e.is_retryable() => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::cursor::{
        Continuation, CursorResult, ExecuteProperties, NoNextReason, RecordCursor,
    };
    pub use crate::error::{Error, Result};
    pub use crate::expr::{FanType, KeyExpression};
    pub use crate::index::IndexState;
    pub use crate::metadata::{
        Index, IndexType, RecordMetaData, RecordMetaDataBuilder, RecordType,
    };
    pub use crate::plan::{
        BoxedCursorExt, CostModel, RecordQueryPlan, RecordQueryPlanner, StatisticsSource,
    };
    pub use crate::query::{Comparison, QueryComponent, RecordQuery, TextComparison};
    pub use crate::store::{RecordStore, StoredRecord};
}
