//! Key expressions (Appendix A): functions from a record to one or more
//! tuples, used to define primary keys and index keys.
//!
//! A key expression defines a logical path through a record; applying it to
//! a record extracts field values and produces a tuple. Expressions over
//! repeated fields may *fan out*, producing multiple tuples — one index
//! entry per element.

use std::sync::Arc;

use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::version::Versionstamp;
use rl_message::{DynamicMessage, Value};

use crate::error::{Error, Result};

/// How a repeated field is turned into tuple values (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanType {
    /// The field is singular (or treated as a single value).
    Scalar,
    /// A repeated field produces one tuple per element.
    Fanout,
    /// A repeated field produces a single tuple whose entry is the list of
    /// all elements (encoded as a nested tuple).
    Concatenate,
}

/// Everything a key expression can be evaluated against: the record's
/// message, its record type name, and (for `Version` expressions) its
/// commit version.
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    pub message: &'a DynamicMessage,
    pub record_type: &'a str,
    pub version: Option<Versionstamp>,
}

impl<'a> EvalContext<'a> {
    pub fn new(message: &'a DynamicMessage, record_type: &'a str) -> Self {
        EvalContext {
            message,
            record_type,
            version: None,
        }
    }

    pub fn with_version(mut self, version: Option<Versionstamp>) -> Self {
        self.version = version;
        self
    }
}

/// A client-defined function from record to tuples (§8.1 uses one to merge
/// legacy update-counter sync data with version-based sync data).
#[derive(Clone)]
pub struct FunctionKeyExpression {
    pub name: String,
    pub column_count: usize,
    #[allow(clippy::type_complexity)]
    pub function: Arc<dyn Fn(&EvalContext<'_>) -> Result<Vec<Tuple>> + Send + Sync>,
}

impl std::fmt::Debug for FunctionKeyExpression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "function({})", self.name)
    }
}

impl PartialEq for FunctionKeyExpression {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.column_count == other.column_count
    }
}

/// A key expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyExpression {
    /// Produces the empty tuple (used for ungrouped aggregate indexes).
    Empty,
    /// A (possibly repeated) field of the record.
    Field { name: String, fan_type: FanType },
    /// Descend into a nested message field and apply `inner` there.
    Nest {
        field: String,
        fan_type: FanType,
        inner: Box<KeyExpression>,
    },
    /// Concatenation: sub-expression tuples joined left-to-right; multiple
    /// values fan out as a Cartesian product.
    Concat(Vec<KeyExpression>),
    /// A value unique to the record's type, letting primary keys emulate
    /// per-table extents (§10.2, Appendix A).
    RecordTypeKey,
    /// The record's 12-byte commit version (§7 VERSION indexes).
    Version,
    /// A literal constant element.
    Literal(TupleElement),
    /// Client-defined function.
    Function(FunctionKeyExpression),
    /// Grouping wrapper for aggregate indexes: the final `grouped_count`
    /// columns of `inner` are the aggregated operand, the leading columns
    /// are the group key.
    Grouping {
        inner: Box<KeyExpression>,
        grouped_count: usize,
    },
    /// Covering-index helper: the leading `key` columns form the index
    /// entry's key (after which the primary key is appended), the `value`
    /// columns are stored in the entry's value.
    KeyWithValue {
        key: Box<KeyExpression>,
        value: Box<KeyExpression>,
    },
}

impl KeyExpression {
    // ------------------------------------------------------- constructors

    /// `field("name")` — a scalar field.
    pub fn field(name: impl Into<String>) -> Self {
        KeyExpression::Field {
            name: name.into(),
            fan_type: FanType::Scalar,
        }
    }

    /// A repeated field producing one tuple per element.
    pub fn field_fanout(name: impl Into<String>) -> Self {
        KeyExpression::Field {
            name: name.into(),
            fan_type: FanType::Fanout,
        }
    }

    /// A repeated field producing a single list-valued entry.
    pub fn field_concat(name: impl Into<String>) -> Self {
        KeyExpression::Field {
            name: name.into(),
            fan_type: FanType::Concatenate,
        }
    }

    /// `field(parent).nest(inner)` — descend into a nested message.
    pub fn nest(field: impl Into<String>, inner: KeyExpression) -> Self {
        KeyExpression::Nest {
            field: field.into(),
            fan_type: FanType::Scalar,
            inner: Box::new(inner),
        }
    }

    /// Nested descent that fans out over a repeated message field.
    pub fn nest_fanout(field: impl Into<String>, inner: KeyExpression) -> Self {
        KeyExpression::Nest {
            field: field.into(),
            fan_type: FanType::Fanout,
            inner: Box::new(inner),
        }
    }

    /// Concatenate sub-expressions.
    pub fn concat(parts: Vec<KeyExpression>) -> Self {
        KeyExpression::Concat(parts)
    }

    /// Shorthand for concatenating two scalar fields.
    pub fn concat_fields(a: impl Into<String>, b: impl Into<String>) -> Self {
        KeyExpression::Concat(vec![KeyExpression::field(a), KeyExpression::field(b)])
    }

    /// Group this expression for an aggregate index: the last
    /// `grouped_count` columns are the operand.
    pub fn group_by(self, grouped_count: usize) -> Self {
        KeyExpression::Grouping {
            inner: Box::new(self),
            grouped_count,
        }
    }

    /// Attach covering-value columns.
    pub fn with_value(self, value: KeyExpression) -> Self {
        KeyExpression::KeyWithValue {
            key: Box::new(self),
            value: Box::new(value),
        }
    }

    /// A named client-defined function expression.
    pub fn function(
        name: impl Into<String>,
        column_count: usize,
        f: impl Fn(&EvalContext<'_>) -> Result<Vec<Tuple>> + Send + Sync + 'static,
    ) -> Self {
        KeyExpression::Function(FunctionKeyExpression {
            name: name.into(),
            column_count,
            function: Arc::new(f),
        })
    }

    // --------------------------------------------------------- evaluation

    /// Number of tuple columns each produced tuple contains.
    pub fn column_count(&self) -> usize {
        match self {
            KeyExpression::Empty => 0,
            KeyExpression::Field { .. } => 1,
            KeyExpression::Nest { inner, .. } => inner.column_count(),
            KeyExpression::Concat(parts) => parts.iter().map(KeyExpression::column_count).sum(),
            KeyExpression::RecordTypeKey => 1,
            KeyExpression::Version => 1,
            KeyExpression::Literal(_) => 1,
            KeyExpression::Function(f) => f.column_count,
            KeyExpression::Grouping { inner, .. } => inner.column_count(),
            KeyExpression::KeyWithValue { key, value } => key.column_count() + value.column_count(),
        }
    }

    /// For a `Grouping` expression, the number of trailing operand columns
    /// (0 for non-grouping expressions).
    pub fn grouped_count(&self) -> usize {
        match self {
            KeyExpression::Grouping { grouped_count, .. } => *grouped_count,
            _ => 0,
        }
    }

    /// For a `KeyWithValue` expression, the number of leading key columns;
    /// otherwise all columns are key columns.
    pub fn key_column_count(&self) -> usize {
        match self {
            KeyExpression::KeyWithValue { key, .. } => key.column_count(),
            other => other.column_count(),
        }
    }

    /// Whether this expression needs the record's commit version.
    pub fn uses_version(&self) -> bool {
        match self {
            KeyExpression::Version => true,
            KeyExpression::Nest { inner, .. } => inner.uses_version(),
            KeyExpression::Concat(parts) => parts.iter().any(KeyExpression::uses_version),
            KeyExpression::Grouping { inner, .. } => inner.uses_version(),
            KeyExpression::KeyWithValue { key, value } => {
                key.uses_version() || value.uses_version()
            }
            KeyExpression::Function(_) => true, // conservative: functions may use it
            _ => false,
        }
    }

    /// Evaluate against a record, producing one or more tuples.
    pub fn evaluate(&self, ctx: &EvalContext<'_>) -> Result<Vec<Tuple>> {
        match self {
            KeyExpression::Empty => Ok(vec![Tuple::new()]),
            KeyExpression::Field { name, fan_type } => evaluate_field(ctx.message, name, *fan_type),
            KeyExpression::Nest {
                field,
                fan_type,
                inner,
            } => evaluate_nest(ctx, field, *fan_type, inner),
            KeyExpression::Concat(parts) => {
                let mut results: Vec<Tuple> = vec![Tuple::new()];
                for part in parts {
                    let part_tuples = part.evaluate(ctx)?;
                    let mut next = Vec::with_capacity(results.len() * part_tuples.len());
                    for base in &results {
                        for ext in &part_tuples {
                            next.push(base.clone().concat(ext));
                        }
                    }
                    results = next;
                }
                Ok(results)
            }
            KeyExpression::RecordTypeKey => Ok(vec![Tuple::new().push(ctx.record_type)]),
            KeyExpression::Version => {
                let version = ctx.version.unwrap_or_else(|| Versionstamp::incomplete(0));
                Ok(vec![Tuple::new().push(version)])
            }
            KeyExpression::Literal(el) => Ok(vec![Tuple::new().push(el.clone())]),
            KeyExpression::Function(f) => (f.function)(ctx),
            KeyExpression::Grouping { inner, .. } => inner.evaluate(ctx),
            KeyExpression::KeyWithValue { key, value } => {
                // Evaluated as the concatenation; the index maintainer
                // splits key columns from value columns.
                KeyExpression::Concat(vec![(**key).clone(), (**value).clone()]).evaluate(ctx)
            }
        }
    }

    /// Evaluate, requiring exactly one tuple (for primary keys).
    pub fn evaluate_single(&self, ctx: &EvalContext<'_>) -> Result<Tuple> {
        let mut tuples = self.evaluate(ctx)?;
        if tuples.len() != 1 {
            return Err(Error::KeyExpression(format!(
                "expected a single tuple, got {} (fan-out expression used as primary key?)",
                tuples.len()
            )));
        }
        Ok(tuples.remove(0))
    }

    /// Flatten into per-column descriptions for planner matching. Returns
    /// `None` when the expression contains parts the planner cannot match
    /// structurally (functions, literals).
    pub fn flatten(&self) -> Option<Vec<KeyPart>> {
        let mut out = Vec::new();
        self.flatten_into(&mut Vec::new(), &mut out).then_some(out)
    }

    fn flatten_into(&self, prefix: &mut Vec<String>, out: &mut Vec<KeyPart>) -> bool {
        match self {
            KeyExpression::Empty => true,
            KeyExpression::Field { name, fan_type } => {
                let mut path = prefix.clone();
                path.push(name.clone());
                out.push(KeyPart::Field {
                    path,
                    fan_type: *fan_type,
                });
                true
            }
            KeyExpression::Nest {
                field,
                fan_type,
                inner,
            } => {
                if *fan_type == FanType::Fanout {
                    // Fan-out nesting changes multiplicity; represent the
                    // inner fields but mark them fanned.
                    prefix.push(field.clone());
                    let start = out.len();
                    let ok = inner.flatten_into(prefix, out);
                    prefix.pop();
                    if ok {
                        for part in &mut out[start..] {
                            if let KeyPart::Field { fan_type, .. } = part {
                                *fan_type = FanType::Fanout;
                            }
                        }
                    }
                    ok
                } else {
                    prefix.push(field.clone());
                    let ok = inner.flatten_into(prefix, out);
                    prefix.pop();
                    ok
                }
            }
            KeyExpression::Concat(parts) => parts.iter().all(|p| p.flatten_into(prefix, out)),
            KeyExpression::RecordTypeKey => {
                out.push(KeyPart::RecordType);
                true
            }
            KeyExpression::Version => {
                out.push(KeyPart::Version);
                true
            }
            KeyExpression::Grouping { inner, .. } => inner.flatten_into(prefix, out),
            KeyExpression::KeyWithValue { key, value } => {
                key.flatten_into(prefix, out) && value.flatten_into(prefix, out)
            }
            KeyExpression::Literal(_) | KeyExpression::Function(_) => false,
        }
    }
}

/// One column of a flattened key expression, used for index matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPart {
    /// A (possibly nested) field path, e.g. `["parent", "a"]`.
    Field {
        path: Vec<String>,
        fan_type: FanType,
    },
    /// The record-type column.
    RecordType,
    /// The version column.
    Version,
}

/// Convert a message field [`Value`] to a tuple element.
pub fn value_to_element(value: &Value) -> Result<TupleElement> {
    Ok(match value {
        Value::I32(v) => TupleElement::Int(i64::from(*v)),
        Value::I64(v) => TupleElement::Int(*v),
        Value::U32(v) => TupleElement::Int(i64::from(*v)),
        Value::U64(v) => TupleElement::Int(
            i64::try_from(*v)
                .map_err(|_| Error::KeyExpression(format!("u64 value {v} overflows index key")))?,
        ),
        Value::F32(v) => TupleElement::Float(*v),
        Value::F64(v) => TupleElement::Double(*v),
        Value::Bool(v) => TupleElement::Bool(*v),
        Value::String(v) => TupleElement::String(v.clone()),
        Value::Bytes(v) => TupleElement::Bytes(v.clone()),
        Value::Enum(v) => TupleElement::Int(i64::from(*v)),
        Value::Message(_) => {
            return Err(Error::KeyExpression(
                "cannot index a whole nested message; use nest() to reach a scalar".into(),
            ))
        }
    })
}

fn evaluate_field(msg: &DynamicMessage, name: &str, fan_type: FanType) -> Result<Vec<Tuple>> {
    let descriptor = msg.descriptor();
    let field = descriptor
        .field_by_name(name)
        .ok_or_else(|| Error::KeyExpression(format!("no field {name} on {}", msg.type_name())))?;
    if field.is_repeated() {
        let values = msg.get_repeated(name);
        match fan_type {
            FanType::Fanout => values
                .iter()
                .map(|v| Ok(Tuple::new().push(value_to_element(v)?)))
                .collect(),
            FanType::Concatenate => {
                let mut list = Tuple::new();
                for v in values {
                    list.add(value_to_element(v)?);
                }
                Ok(vec![Tuple::new().push(list)])
            }
            FanType::Scalar => Err(Error::KeyExpression(format!(
                "field {name} is repeated; use Fanout or Concatenate"
            ))),
        }
    } else {
        match msg.get(name) {
            Some(v) => Ok(vec![Tuple::new().push(value_to_element(v)?)]),
            None => Ok(vec![Tuple::new().push(TupleElement::Null)]),
        }
    }
}

fn evaluate_nest(
    ctx: &EvalContext<'_>,
    field: &str,
    fan_type: FanType,
    inner: &KeyExpression,
) -> Result<Vec<Tuple>> {
    let descriptor = ctx.message.descriptor();
    let fd = descriptor.field_by_name(field).ok_or_else(|| {
        Error::KeyExpression(format!("no field {field} on {}", ctx.message.type_name()))
    })?;
    if fd.is_repeated() {
        if fan_type != FanType::Fanout {
            return Err(Error::KeyExpression(format!(
                "nested repeated field {field} requires Fanout"
            )));
        }
        let mut out = Vec::new();
        for v in ctx.message.get_repeated(field) {
            let nested = v
                .as_message()
                .ok_or_else(|| Error::KeyExpression(format!("field {field} is not a message")))?;
            let sub_ctx = EvalContext {
                message: nested,
                record_type: ctx.record_type,
                version: ctx.version,
            };
            out.extend(inner.evaluate(&sub_ctx)?);
        }
        Ok(out)
    } else {
        match ctx.message.get(field) {
            Some(v) => {
                let nested = v.as_message().ok_or_else(|| {
                    Error::KeyExpression(format!("field {field} is not a message"))
                })?;
                let sub_ctx = EvalContext {
                    message: nested,
                    record_type: ctx.record_type,
                    version: ctx.version,
                };
                inner.evaluate(&sub_ctx)
            }
            // Missing nested message: null columns.
            None => Ok(vec![Tuple::from_elements(vec![
                TupleElement::Null;
                inner.column_count()
            ])]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    /// The paper's Figure 4 example.
    fn example_pool() -> DescriptorPool {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "Example.Nested",
                vec![
                    FieldDescriptor::optional("a", 1, FieldType::Int64),
                    FieldDescriptor::optional("b", 2, FieldType::String),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool.add_message(
            MessageDescriptor::new(
                "Example",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::repeated("elem", 2, FieldType::String),
                    FieldDescriptor::optional(
                        "parent",
                        3,
                        FieldType::Message("Example.Nested".into()),
                    ),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool
    }

    fn example_record(pool: &DescriptorPool) -> DynamicMessage {
        let mut nested = DynamicMessage::new(pool.message("Example.Nested").unwrap());
        nested.set("a", 1415i64).unwrap();
        nested.set("b", "child").unwrap();
        let mut msg = DynamicMessage::new(pool.message("Example").unwrap());
        msg.set("id", 1066i64).unwrap();
        msg.push("elem", "first").unwrap();
        msg.push("elem", "second").unwrap();
        msg.push("elem", "third").unwrap();
        msg.set("parent", nested).unwrap();
        msg
    }

    #[test]
    fn paper_examples() {
        // The exact worked examples from Appendix A.
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");

        // field("id") yields (1066).
        let r = KeyExpression::field("id").evaluate(&ctx).unwrap();
        assert_eq!(r, vec![Tuple::from((1066i64,))]);

        // field("parent").nest("a") yields (1415).
        let r = KeyExpression::nest("parent", KeyExpression::field("a"))
            .evaluate(&ctx)
            .unwrap();
        assert_eq!(r, vec![Tuple::from((1415i64,))]);

        // field("elem", Concatenate) yields (["first","second","third"]).
        let r = KeyExpression::field_concat("elem").evaluate(&ctx).unwrap();
        let expected = Tuple::new().push(Tuple::new().push("first").push("second").push("third"));
        assert_eq!(r, vec![expected]);

        // field("elem", Fanout) yields three tuples.
        let r = KeyExpression::field_fanout("elem").evaluate(&ctx).unwrap();
        assert_eq!(
            r,
            vec![
                Tuple::from(("first",)),
                Tuple::from(("second",)),
                Tuple::from(("third",)),
            ]
        );

        // concat(field("id"), field("parent").nest("b")) -> (1066, "child").
        let r = KeyExpression::concat(vec![
            KeyExpression::field("id"),
            KeyExpression::nest("parent", KeyExpression::field("b")),
        ])
        .evaluate(&ctx)
        .unwrap();
        assert_eq!(r, vec![Tuple::from((1066i64, "child"))]);
    }

    #[test]
    fn concat_fans_out_as_cartesian_product() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");
        let r = KeyExpression::concat(vec![
            KeyExpression::field("id"),
            KeyExpression::field_fanout("elem"),
        ])
        .evaluate(&ctx)
        .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], Tuple::from((1066i64, "first")));
        assert_eq!(r[2], Tuple::from((1066i64, "third")));
    }

    #[test]
    fn record_type_key() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");
        let r = KeyExpression::RecordTypeKey.evaluate(&ctx).unwrap();
        assert_eq!(r, vec![Tuple::from(("Example",))]);
    }

    #[test]
    fn missing_scalar_field_yields_null() {
        let pool = example_pool();
        let msg = DynamicMessage::new(pool.message("Example").unwrap());
        let ctx = EvalContext::new(&msg, "Example");
        let r = KeyExpression::field("id").evaluate(&ctx).unwrap();
        assert_eq!(r, vec![Tuple::new().push(TupleElement::Null)]);
    }

    #[test]
    fn missing_nested_message_yields_null_columns() {
        let pool = example_pool();
        let msg = DynamicMessage::new(pool.message("Example").unwrap());
        let ctx = EvalContext::new(&msg, "Example");
        let expr = KeyExpression::nest(
            "parent",
            KeyExpression::concat(vec![KeyExpression::field("a"), KeyExpression::field("b")]),
        );
        let r = expr.evaluate(&ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].len(), 2);
        assert!(matches!(r[0].get(0), Some(TupleElement::Null)));
    }

    #[test]
    fn empty_repeated_fanout_produces_no_tuples() {
        let pool = example_pool();
        let msg = DynamicMessage::new(pool.message("Example").unwrap());
        let ctx = EvalContext::new(&msg, "Example");
        let r = KeyExpression::field_fanout("elem").evaluate(&ctx).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn scalar_fan_on_repeated_field_errors() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");
        assert!(KeyExpression::field("elem").evaluate(&ctx).is_err());
    }

    #[test]
    fn evaluate_single_rejects_fanout() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");
        assert!(KeyExpression::field_fanout("elem")
            .evaluate_single(&ctx)
            .is_err());
        assert!(KeyExpression::field("id").evaluate_single(&ctx).is_ok());
    }

    #[test]
    fn version_expression_uses_context_version() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let vs = Versionstamp::complete(77, 0, 1);
        let ctx = EvalContext::new(&msg, "Example").with_version(Some(vs));
        let r = KeyExpression::Version.evaluate(&ctx).unwrap();
        assert_eq!(r[0].get(0).unwrap().as_versionstamp(), Some(&vs));
        // Without a version, an incomplete placeholder is produced.
        let ctx = EvalContext::new(&msg, "Example");
        let r = KeyExpression::Version.evaluate(&ctx).unwrap();
        assert!(!r[0]
            .get(0)
            .unwrap()
            .as_versionstamp()
            .unwrap()
            .is_complete());
    }

    #[test]
    fn function_expression_runs_closure() {
        let pool = example_pool();
        let msg = example_record(&pool);
        let ctx = EvalContext::new(&msg, "Example");
        let expr = KeyExpression::function("double_id", 1, |ctx| {
            let id = ctx.message.get("id").and_then(Value::as_i64).unwrap_or(0);
            Ok(vec![Tuple::new().push(id * 2)])
        });
        let r = expr.evaluate(&ctx).unwrap();
        assert_eq!(r, vec![Tuple::from((2132i64,))]);
    }

    #[test]
    fn column_counts() {
        assert_eq!(KeyExpression::field("a").column_count(), 1);
        assert_eq!(KeyExpression::concat_fields("a", "b").column_count(), 2);
        assert_eq!(
            KeyExpression::nest("p", KeyExpression::concat_fields("a", "b")).column_count(),
            2
        );
        assert_eq!(KeyExpression::Empty.column_count(), 0);
        let grouped = KeyExpression::concat_fields("g", "v").group_by(1);
        assert_eq!(grouped.column_count(), 2);
        assert_eq!(grouped.grouped_count(), 1);
        let kwv = KeyExpression::field("k").with_value(KeyExpression::field("v"));
        assert_eq!(kwv.column_count(), 2);
        assert_eq!(kwv.key_column_count(), 1);
    }

    #[test]
    fn flatten_produces_field_paths() {
        let expr = KeyExpression::concat(vec![
            KeyExpression::field("id"),
            KeyExpression::nest("parent", KeyExpression::field("a")),
        ]);
        let parts = expr.flatten().unwrap();
        assert_eq!(
            parts,
            vec![
                KeyPart::Field {
                    path: vec!["id".into()],
                    fan_type: FanType::Scalar
                },
                KeyPart::Field {
                    path: vec!["parent".into(), "a".into()],
                    fan_type: FanType::Scalar
                },
            ]
        );
        // Functions cannot be flattened.
        let f = KeyExpression::function("f", 1, |_| Ok(vec![Tuple::new()]));
        assert!(f.flatten().is_none());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(
            value_to_element(&Value::I32(-3)).unwrap(),
            TupleElement::Int(-3)
        );
        assert_eq!(
            value_to_element(&Value::String("s".into())).unwrap(),
            TupleElement::String("s".into())
        );
        assert!(value_to_element(&Value::U64(u64::MAX)).is_err());
    }
}
