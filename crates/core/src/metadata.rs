//! Record store metadata: record types, index definitions, versioning, and
//! schema evolution (§5).
//!
//! Metadata is versioned in a single-stream, non-branching, monotonically
//! increasing fashion. Because one schema may be shared by millions of
//! record stores, metadata lives apart from the data (optionally in its own
//! store — see [`MetaDataStore`]) and every record store tracks the highest
//! metadata version it was accessed with in its header.

use std::collections::{BTreeMap, BTreeSet};

use rl_message::{validate_evolution, DescriptorPool};

use crate::error::{Error, Result};
use crate::expr::KeyExpression;
use crate::query::QueryComponent;

/// The index types the layer supports natively (§7). Clients can register
/// custom maintainers through [`crate::index::IndexRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexType {
    /// Standard mapping from field value(s) to primary key.
    Value,
    /// Number of records (atomic ADD).
    Count,
    /// Number of times the indexed field has been updated (atomic ADD).
    CountUpdates,
    /// Number of records where the field is not null (atomic ADD).
    CountNonNull,
    /// Sum of the field across records (atomic ADD).
    Sum,
    /// Largest value ever assigned to the field (atomic BYTE_MAX).
    MaxEver,
    /// Smallest value ever assigned to the field (atomic BYTE_MIN).
    MinEver,
    /// Entries ordered by commit version (versionstamped keys).
    Version,
    /// Dynamic order statistics via a durable skip list (Appendix B).
    Rank,
    /// Full-text inverted index with bunched postings (Appendix B).
    Text,
    /// A client-registered index type, dispatched by name.
    Custom,
}

impl IndexType {
    /// Aggregate indexes maintained with conflict-free atomic mutations.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            IndexType::Count
                | IndexType::CountUpdates
                | IndexType::CountNonNull
                | IndexType::Sum
                | IndexType::MaxEver
                | IndexType::MinEver
        )
    }
}

/// Options modifying index behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexOptions {
    /// Reject writes that would create two entries with the same index key
    /// (VALUE indexes only).
    pub unique: bool,
    /// Tokenizer name for TEXT indexes ("whitespace" or "ngram").
    pub text_tokenizer: String,
    /// N-gram size when the tokenizer is "ngram".
    pub ngram_size: usize,
    /// Maximum bunch size for TEXT postings (Appendix B; Table 2 uses 20).
    pub text_bunch_size: usize,
    /// Number of skip-list levels for RANK indexes.
    pub rank_levels: usize,
    /// Custom index type name (when `index_type == Custom`).
    pub custom_type: String,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            unique: false,
            text_tokenizer: "whitespace".into(),
            ngram_size: 3,
            text_bunch_size: 20,
            rank_levels: 6,
            custom_type: String::new(),
        }
    }
}

/// An index definition: a type plus a key expression, optionally limited to
/// a subset of record types and filtered to a subset of records.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    pub name: String,
    pub index_type: IndexType,
    pub key_expression: KeyExpression,
    /// Record types this index applies to; empty = all record types in the
    /// store (indexes can span multiple record types, §7).
    pub record_types: BTreeSet<String>,
    /// Records failing this predicate are excluded from the index ("sparse"
    /// indexes via index filters, §6).
    pub filter: Option<QueryComponent>,
    /// Metadata version at which this index was added (drives reindexing
    /// decisions when stores catch up to newer metadata).
    pub added_version: u64,
    pub options: IndexOptions,
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        index_type: IndexType,
        key_expression: KeyExpression,
    ) -> Self {
        Index {
            name: name.into(),
            index_type,
            key_expression,
            record_types: BTreeSet::new(),
            filter: None,
            added_version: 0,
            options: IndexOptions::default(),
        }
    }

    pub fn value(name: impl Into<String>, key_expression: KeyExpression) -> Self {
        Index::new(name, IndexType::Value, key_expression)
    }

    /// COUNT index grouped by `group` (use [`KeyExpression::Empty`] for a
    /// store-wide count).
    pub fn count(name: impl Into<String>, group: KeyExpression) -> Self {
        let grouped = group.group_by(0);
        Index::new(name, IndexType::Count, grouped)
    }

    /// SUM of `operand` grouped by `group`.
    pub fn sum(name: impl Into<String>, group: KeyExpression, operand: KeyExpression) -> Self {
        let grouped_count = operand.column_count();
        let expr = KeyExpression::concat(vec![group, operand]).group_by(grouped_count);
        Index::new(name, IndexType::Sum, expr)
    }

    /// MAX_EVER of `operand` grouped by `group`.
    pub fn max_ever(name: impl Into<String>, group: KeyExpression, operand: KeyExpression) -> Self {
        let grouped_count = operand.column_count();
        let expr = KeyExpression::concat(vec![group, operand]).group_by(grouped_count);
        Index::new(name, IndexType::MaxEver, expr)
    }

    /// MIN_EVER of `operand` grouped by `group`.
    pub fn min_ever(name: impl Into<String>, group: KeyExpression, operand: KeyExpression) -> Self {
        let grouped_count = operand.column_count();
        let expr = KeyExpression::concat(vec![group, operand]).group_by(grouped_count);
        Index::new(name, IndexType::MinEver, expr)
    }

    /// COUNT_NON_NULL of `operand` grouped by `group`.
    pub fn count_non_null(
        name: impl Into<String>,
        group: KeyExpression,
        operand: KeyExpression,
    ) -> Self {
        let grouped_count = operand.column_count();
        let expr = KeyExpression::concat(vec![group, operand]).group_by(grouped_count);
        Index::new(name, IndexType::CountNonNull, expr)
    }

    /// COUNT_UPDATES of `operand` grouped by `group`.
    pub fn count_updates(
        name: impl Into<String>,
        group: KeyExpression,
        operand: KeyExpression,
    ) -> Self {
        let grouped_count = operand.column_count();
        let expr = KeyExpression::concat(vec![group, operand]).group_by(grouped_count);
        Index::new(name, IndexType::CountUpdates, expr)
    }

    /// VERSION index; `key_expression` should contain
    /// [`KeyExpression::Version`] somewhere (§7).
    pub fn version(name: impl Into<String>, key_expression: KeyExpression) -> Self {
        Index::new(name, IndexType::Version, key_expression)
    }

    /// RANK index over `key_expression` (Appendix B).
    pub fn rank(name: impl Into<String>, key_expression: KeyExpression) -> Self {
        Index::new(name, IndexType::Rank, key_expression)
    }

    /// TEXT index over a string field (Appendix B).
    pub fn text(name: impl Into<String>, key_expression: KeyExpression) -> Self {
        Index::new(name, IndexType::Text, key_expression)
    }

    pub fn with_unique(mut self) -> Self {
        self.options.unique = true;
        self
    }

    pub fn with_filter(mut self, filter: QueryComponent) -> Self {
        self.filter = Some(filter);
        self
    }

    pub fn with_options(mut self, options: IndexOptions) -> Self {
        self.options = options;
        self
    }

    /// Whether this index applies to records of `record_type`.
    pub fn applies_to(&self, record_type: &str) -> bool {
        self.record_types.is_empty() || self.record_types.contains(record_type)
    }

    /// Whether this index spans more than one record type.
    pub fn is_multi_type(&self) -> bool {
        self.record_types.is_empty() || self.record_types.len() > 1
    }
}

/// A record type: a message type in the pool plus its primary key
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordType {
    pub name: String,
    pub primary_key: KeyExpression,
    /// Metadata version at which the type was added.
    pub since_version: u64,
}

/// Versioned metadata for a record store: the schema (§4–5).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMetaData {
    version: u64,
    pool: DescriptorPool,
    record_types: BTreeMap<String, RecordType>,
    indexes: BTreeMap<String, Index>,
    /// Split records larger than a single value across contiguous keys.
    pub split_long_records: bool,
    /// Maintain a per-record commit version next to the record (§4).
    pub store_record_versions: bool,
}

impl RecordMetaData {
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn pool(&self) -> &DescriptorPool {
        &self.pool
    }

    pub fn record_type(&self, name: &str) -> Result<&RecordType> {
        self.record_types
            .get(name)
            .ok_or_else(|| Error::UnknownRecordType(name.to_string()))
    }

    pub fn record_types(&self) -> impl Iterator<Item = &RecordType> {
        self.record_types.values()
    }

    pub fn index(&self, name: &str) -> Result<&Index> {
        self.indexes
            .get(name)
            .ok_or_else(|| Error::UnknownIndex(name.to_string()))
    }

    pub fn indexes(&self) -> impl Iterator<Item = &Index> {
        self.indexes.values()
    }

    /// All indexes that must be maintained for records of `record_type`.
    pub fn indexes_for_type(&self, record_type: &str) -> Vec<&Index> {
        self.indexes
            .values()
            .filter(|i| i.applies_to(record_type))
            .collect()
    }

    /// Validate that `self` is a legal evolution of `older` (§5): version
    /// strictly increases, the descriptor pool evolves compatibly, record
    /// types are never dropped, and primary keys never change.
    pub fn validate_evolution_from(&self, older: &RecordMetaData) -> Result<()> {
        if self.version <= older.version {
            return Err(Error::MetaData(format!(
                "metadata version must increase ({} -> {})",
                older.version, self.version
            )));
        }
        let errs = validate_evolution(&older.pool, &self.pool);
        if !errs.is_empty() {
            return Err(Error::InvalidEvolution(errs));
        }
        for (name, old_rt) in &older.record_types {
            let Some(new_rt) = self.record_types.get(name) else {
                return Err(Error::MetaData(format!("record type {name} was removed")));
            };
            if new_rt.primary_key != old_rt.primary_key {
                return Err(Error::MetaData(format!(
                    "primary key of record type {name} changed"
                )));
            }
        }
        for (name, old_idx) in &older.indexes {
            if let Some(new_idx) = self.indexes.get(name) {
                if new_idx.key_expression != old_idx.key_expression
                    || new_idx.index_type != old_idx.index_type
                {
                    return Err(Error::MetaData(format!(
                        "index {name} changed definition; drop and add under a new name instead"
                    )));
                }
            }
            // Dropped indexes are fine: their subspace is range-cleared.
        }
        Ok(())
    }
}

/// Builder for [`RecordMetaData`].
#[derive(Debug, Clone)]
pub struct RecordMetaDataBuilder {
    version: u64,
    pool: DescriptorPool,
    record_types: BTreeMap<String, RecordType>,
    indexes: BTreeMap<String, Index>,
    split_long_records: bool,
    store_record_versions: bool,
}

impl RecordMetaDataBuilder {
    pub fn new(pool: DescriptorPool) -> Self {
        RecordMetaDataBuilder {
            version: 1,
            pool,
            record_types: BTreeMap::new(),
            indexes: BTreeMap::new(),
            split_long_records: true,
            store_record_versions: true,
        }
    }

    /// Continue evolving existing metadata: copies everything and bumps the
    /// version.
    pub fn from_existing(metadata: &RecordMetaData) -> Self {
        RecordMetaDataBuilder {
            version: metadata.version + 1,
            pool: metadata.pool.clone(),
            record_types: metadata.record_types.clone(),
            indexes: metadata.indexes.clone(),
            split_long_records: metadata.split_long_records,
            store_record_versions: metadata.store_record_versions,
        }
    }

    pub fn version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Replace the descriptor pool (for schema evolution).
    pub fn pool(mut self, pool: DescriptorPool) -> Self {
        self.pool = pool;
        self
    }

    /// Define a record type with its primary key.
    pub fn record_type(mut self, name: impl Into<String>, primary_key: KeyExpression) -> Self {
        let name = name.into();
        self.record_types.insert(
            name.clone(),
            RecordType {
                name,
                primary_key,
                since_version: self.version,
            },
        );
        self
    }

    /// Define an index on a single record type.
    pub fn index(mut self, record_type: impl Into<String>, mut index: Index) -> Self {
        index.record_types.insert(record_type.into());
        index.added_version = self.version;
        self.indexes.insert(index.name.clone(), index);
        self
    }

    /// Define an index spanning the given record types.
    pub fn multi_type_index(mut self, record_types: &[&str], mut index: Index) -> Self {
        index.record_types = record_types.iter().map(|s| s.to_string()).collect();
        index.added_version = self.version;
        self.indexes.insert(index.name.clone(), index);
        self
    }

    /// Define an index spanning *all* record types (universal).
    pub fn universal_index(mut self, mut index: Index) -> Self {
        index.record_types.clear();
        index.added_version = self.version;
        self.indexes.insert(index.name.clone(), index);
        self
    }

    /// Remove an index (its data is cleared when stores catch up).
    pub fn drop_index(mut self, name: &str) -> Self {
        self.indexes.remove(name);
        self
    }

    pub fn split_long_records(mut self, split: bool) -> Self {
        self.split_long_records = split;
        self
    }

    pub fn store_record_versions(mut self, store: bool) -> Self {
        self.store_record_versions = store;
        self
    }

    /// Validate and produce the metadata.
    pub fn build(self) -> Result<RecordMetaData> {
        self.pool.validate().map_err(Error::Message)?;
        for rt in self.record_types.values() {
            if self.pool.message(&rt.name).is_none() {
                return Err(Error::MetaData(format!(
                    "record type {} has no message descriptor in the pool",
                    rt.name
                )));
            }
        }
        for index in self.indexes.values() {
            for rt in &index.record_types {
                if !self.record_types.contains_key(rt) {
                    return Err(Error::MetaData(format!(
                        "index {} references unknown record type {rt}",
                        index.name
                    )));
                }
            }
            if index.index_type.is_atomic()
                && !matches!(index.key_expression, KeyExpression::Grouping { .. })
            {
                return Err(Error::MetaData(format!(
                    "atomic index {} must use a grouping key expression",
                    index.name
                )));
            }
        }
        Ok(RecordMetaData {
            version: self.version,
            pool: self.pool,
            record_types: self.record_types,
            indexes: self.indexes,
            split_long_records: self.split_long_records,
            store_record_versions: self.store_record_versions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_message::{FieldDescriptor, FieldType, MessageDescriptor};

    fn pool() -> DescriptorPool {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "User",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("name", 2, FieldType::String),
                    FieldDescriptor::optional("score", 3, FieldType::Int64),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool.add_message(
            MessageDescriptor::new(
                "Order",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("name", 2, FieldType::String),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool
    }

    fn basic_metadata() -> RecordMetaData {
        RecordMetaDataBuilder::new(pool())
            .record_type("User", KeyExpression::field("id"))
            .record_type("Order", KeyExpression::field("id"))
            .index(
                "User",
                Index::value("by_name", KeyExpression::field("name")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let md = basic_metadata();
        assert_eq!(md.version(), 1);
        assert!(md.record_type("User").is_ok());
        assert!(matches!(
            md.record_type("Nope"),
            Err(Error::UnknownRecordType(_))
        ));
        assert!(md.index("by_name").is_ok());
        assert!(matches!(md.index("nope"), Err(Error::UnknownIndex(_))));
    }

    #[test]
    fn indexes_for_type_respects_scoping() {
        let md = RecordMetaDataBuilder::new(pool())
            .record_type("User", KeyExpression::field("id"))
            .record_type("Order", KeyExpression::field("id"))
            .index("User", Index::value("u", KeyExpression::field("name")))
            .universal_index(Index::value("all_names", KeyExpression::field("name")))
            .multi_type_index(
                &["User", "Order"],
                Index::value("both", KeyExpression::field("name")),
            )
            .build()
            .unwrap();
        let user_indexes: Vec<_> = md
            .indexes_for_type("User")
            .iter()
            .map(|i| i.name.clone())
            .collect();
        assert!(user_indexes.contains(&"u".to_string()));
        assert!(user_indexes.contains(&"all_names".to_string()));
        assert!(user_indexes.contains(&"both".to_string()));
        let order_indexes: Vec<_> = md
            .indexes_for_type("Order")
            .iter()
            .map(|i| i.name.clone())
            .collect();
        assert!(!order_indexes.contains(&"u".to_string()));
        assert!(order_indexes.contains(&"both".to_string()));
    }

    #[test]
    fn unknown_record_type_in_index_rejected() {
        let err = RecordMetaDataBuilder::new(pool())
            .record_type("User", KeyExpression::field("id"))
            .index("Ghost", Index::value("x", KeyExpression::field("name")))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::MetaData(_)));
    }

    #[test]
    fn missing_descriptor_rejected() {
        let err = RecordMetaDataBuilder::new(pool())
            .record_type("Ghost", KeyExpression::field("id"))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::MetaData(_)));
    }

    #[test]
    fn atomic_index_requires_grouping() {
        let mut bad = Index::new("s", IndexType::Sum, KeyExpression::field("score"));
        bad.record_types.insert("User".into());
        let err = RecordMetaDataBuilder::new(pool())
            .record_type("User", KeyExpression::field("id"))
            .index("User", bad)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::MetaData(_)));
        // The constructor produces a valid grouping automatically.
        let ok = RecordMetaDataBuilder::new(pool())
            .record_type("User", KeyExpression::field("id"))
            .index(
                "User",
                Index::sum("s", KeyExpression::Empty, KeyExpression::field("score")),
            )
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn evolution_valid_addition() {
        let v1 = basic_metadata();
        let v2 = RecordMetaDataBuilder::from_existing(&v1)
            .index(
                "User",
                Index::value("by_score", KeyExpression::field("score")),
            )
            .build()
            .unwrap();
        assert_eq!(v2.version(), 2);
        v2.validate_evolution_from(&v1).unwrap();
        assert_eq!(v2.index("by_score").unwrap().added_version, 2);
    }

    #[test]
    fn evolution_version_must_increase() {
        let v1 = basic_metadata();
        let same = basic_metadata();
        assert!(same.validate_evolution_from(&v1).is_err());
    }

    #[test]
    fn evolution_rejects_removed_record_type() {
        let v1 = basic_metadata();
        let mut b = RecordMetaDataBuilder::from_existing(&v1);
        b.record_types.remove("Order");
        let v2 = b.build().unwrap();
        assert!(v2.validate_evolution_from(&v1).is_err());
    }

    #[test]
    fn evolution_rejects_primary_key_change() {
        let v1 = basic_metadata();
        let v2 = RecordMetaDataBuilder::from_existing(&v1)
            .record_type("User", KeyExpression::field("name"))
            .build()
            .unwrap();
        assert!(v2.validate_evolution_from(&v1).is_err());
    }

    #[test]
    fn evolution_rejects_index_redefinition_but_allows_drop() {
        let v1 = basic_metadata();
        // Redefining by_name is invalid.
        let v2 = RecordMetaDataBuilder::from_existing(&v1)
            .index(
                "User",
                Index::value("by_name", KeyExpression::field("score")),
            )
            .build()
            .unwrap();
        assert!(v2.validate_evolution_from(&v1).is_err());
        // Dropping it is fine.
        let v3 = RecordMetaDataBuilder::from_existing(&v1)
            .drop_index("by_name")
            .build()
            .unwrap();
        v3.validate_evolution_from(&v1).unwrap();
    }

    #[test]
    fn evolution_rejects_descriptor_violation() {
        let v1 = basic_metadata();
        // New pool drops a field.
        let mut new_pool = DescriptorPool::new();
        new_pool
            .add_message(
                MessageDescriptor::new(
                    "User",
                    vec![FieldDescriptor::optional("id", 1, FieldType::Int64)],
                )
                .unwrap(),
            )
            .unwrap();
        new_pool
            .add_message(
                MessageDescriptor::new(
                    "Order",
                    vec![
                        FieldDescriptor::optional("id", 1, FieldType::Int64),
                        FieldDescriptor::optional("name", 2, FieldType::String),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let v2 = RecordMetaDataBuilder::from_existing(&v1)
            .pool(new_pool)
            .build()
            .unwrap();
        assert!(matches!(
            v2.validate_evolution_from(&v1),
            Err(Error::InvalidEvolution(_))
        ));
    }

    #[test]
    fn index_applies_to() {
        let mut idx = Index::value("i", KeyExpression::field("f"));
        assert!(idx.applies_to("Anything"));
        idx.record_types.insert("User".into());
        assert!(idx.applies_to("User"));
        assert!(!idx.applies_to("Order"));
    }
}
