//! Query planning and execution (Appendix C).
//!
//! The planner turns a declarative [`RecordQuery`] into a tree of concrete
//! operations — index scans, full scans, residual filters, unions,
//! intersections, text scans — that execute as streaming cursors with
//! continuations. Plans are plain data ([`RecordQueryPlan`]): clients can
//! cache them and re-execute with bound continuations, the moral
//! equivalent of a SQL `PREPARE` statement.
//!
//! This is the paper's shipped heuristic planner; the Cascades-style
//! rewrite (Appendix C "future directions") is future work here too.

use std::collections::BTreeSet;

use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};

use crate::cursor::{Continuation, CursorResult, ExecuteProperties, NoNextReason, RecordCursor};
use crate::error::{Error, Result};
use crate::expr::{FanType, KeyExpression, KeyPart};
use crate::metadata::{IndexType, RecordMetaData};
use crate::query::{Comparison, QueryComponent, RecordQuery, TextComparison};
use crate::store::{RecordStore, StoredRecord, TupleRange};

/// Key bounds for an index scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanBounds {
    Range(TupleRange),
    /// Equality prefix columns followed by a *string prefix* match on the
    /// next column (byte-level, exploiting tuple encoding).
    StringPrefix {
        prefix_cols: Tuple,
        prefix: String,
    },
}

impl ScanBounds {
    pub fn to_byte_range(&self, subspace: &Subspace) -> (Vec<u8>, Vec<u8>) {
        match self {
            ScanBounds::Range(r) => r.to_byte_range(subspace),
            ScanBounds::StringPrefix {
                prefix_cols,
                prefix,
            } => {
                // Pack the equality columns, then the string *without* its
                // terminator: every longer string shares these bytes.
                let mut begin = subspace.pack(prefix_cols);
                let with_str = Tuple::new().push(prefix.as_str()).pack();
                begin.extend_from_slice(&with_str[..with_str.len() - 1]);
                let mut end = begin.clone();
                end.push(0xFF);
                (begin, end)
            }
        }
    }
}

/// An executable query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordQueryPlan {
    /// Scan the record extent, filtering.
    FullScan {
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
        reverse: bool,
    },
    /// Scan an index range, fetch each record, apply residual filters.
    IndexScan {
        index_name: String,
        bounds: ScanBounds,
        reverse: bool,
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
    },
    /// Serve a full-text predicate from a TEXT index.
    TextScan {
        index_name: String,
        comparison: TextComparison,
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
    },
    /// Distinct union of sub-plans (OR queries).
    Union { children: Vec<RecordQueryPlan> },
    /// Records produced by every sub-plan (AND across different indexes).
    Intersection { children: Vec<RecordQueryPlan> },
}

impl RecordQueryPlan {
    /// Human-readable plan shape (for tests and EXPLAIN-style output).
    pub fn describe(&self) -> String {
        match self {
            RecordQueryPlan::FullScan { residual, .. } => {
                if residual.is_some() {
                    "Filter(FullScan)".to_string()
                } else {
                    "FullScan".to_string()
                }
            }
            RecordQueryPlan::IndexScan {
                index_name,
                residual,
                reverse,
                ..
            } => {
                let base = if *reverse {
                    format!("IndexScan({index_name}, reverse)")
                } else {
                    format!("IndexScan({index_name})")
                };
                if residual.is_some() {
                    format!("Filter({base})")
                } else {
                    base
                }
            }
            RecordQueryPlan::TextScan { index_name, .. } => format!("TextScan({index_name})"),
            RecordQueryPlan::Union { children } => {
                let inner: Vec<String> = children.iter().map(RecordQueryPlan::describe).collect();
                format!("Union({})", inner.join(", "))
            }
            RecordQueryPlan::Intersection { children } => {
                let inner: Vec<String> = children.iter().map(RecordQueryPlan::describe).collect();
                format!("Intersection({})", inner.join(", "))
            }
        }
    }

    /// Execute against a store, resuming from `continuation`. The
    /// `return_limit` in `props` is enforced at the top of the plan; scan
    /// and byte limits are shared by every cursor the plan spawns.
    pub fn execute<'a>(
        &self,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<PlanCursor<'a>> {
        let mut inner_props = props.clone();
        inner_props.return_limit = None;
        let cursor = self.execute_inner(store, continuation, &inner_props)?;
        Ok(match props.return_limit {
            Some(n) => Box::new(crate::cursor::TakeCursor::new(cursor, n)),
            None => cursor,
        })
    }

    fn execute_inner<'a>(
        &self,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<PlanCursor<'a>> {
        match self {
            RecordQueryPlan::FullScan {
                record_types,
                residual,
                reverse,
            } => {
                let scan = if *reverse {
                    store.scan_records_reverse(&TupleRange::all(), continuation, props)?
                } else {
                    store.scan_records(&TupleRange::all(), continuation, props)?
                };
                Ok(Box::new(FilteredRecordCursor {
                    inner: Box::new(scan),
                    record_types: record_types.clone(),
                    residual: residual.clone(),
                }))
            }
            RecordQueryPlan::IndexScan {
                index_name,
                bounds,
                reverse,
                record_types,
                residual,
            } => {
                let index = store.require_readable(index_name)?;
                let subspace = store.index_subspace(index);
                let (begin, end) = bounds.to_byte_range(&subspace);
                // Scan the index subspace's byte range, fetching records by
                // the primary key carried in each entry.
                let kv = crate::cursor::KeyValueCursor::new(
                    store.transaction(),
                    begin,
                    end,
                    *reverse,
                    props.snapshot,
                    props.limiter(),
                    continuation,
                )?;
                Ok(Box::new(IndexFetchCursor {
                    store: store.clone_parts(),
                    kv,
                    subspace,
                    key_columns: index.key_expression.key_column_count(),
                    record_types: record_types.clone(),
                    residual: residual.clone(),
                }))
            }
            RecordQueryPlan::TextScan {
                index_name,
                comparison,
                record_types,
                residual,
            } => {
                let pks = store.text_search(index_name, comparison)?;
                let mut records = Vec::new();
                for pk in pks {
                    if let Some(rec) = store.load_record(&pk)? {
                        let type_ok = record_types
                            .as_ref()
                            .map_or(true, |ts| ts.contains(&rec.record_type));
                        let residual_ok = match residual {
                            Some(r) => r.eval(&rec.record_type, &rec.message)?,
                            None => true,
                        };
                        if type_ok && residual_ok {
                            records.push(rec);
                        }
                    }
                }
                Ok(Box::new(crate::cursor::ListCursor::new(
                    records,
                    continuation,
                )?))
            }
            RecordQueryPlan::Union { children } => {
                UnionCursor::create(children, store, continuation, props)
            }
            RecordQueryPlan::Intersection { children } => {
                // Evaluate the first child fully, then stream the last
                // child filtered by membership.
                let mut pk_sets: Vec<BTreeSet<Vec<u8>>> = Vec::new();
                for child in &children[..children.len() - 1] {
                    let mut cursor = child.execute_inner(store, &Continuation::Start, props)?;
                    let mut set = BTreeSet::new();
                    loop {
                        match cursor.next()? {
                            CursorResult::Next { value, .. } => {
                                set.insert(value.primary_key.pack());
                            }
                            CursorResult::NoNext {
                                reason: NoNextReason::SourceExhausted,
                                ..
                            } => break,
                            CursorResult::NoNext {
                                reason,
                                continuation,
                            } => {
                                // Out-of-band stop inside the buffered side
                                // cannot be resumed precisely; surface it.
                                let _ = (reason, continuation);
                                return Err(Error::Unplannable(
                                    "scan limit hit while buffering intersection branch".into(),
                                ));
                            }
                        }
                    }
                    pk_sets.push(set);
                }
                let last = children
                    .last()
                    .unwrap()
                    .execute_inner(store, continuation, props)?;
                Ok(Box::new(IntersectionCursor {
                    inner: last,
                    pk_sets,
                }))
            }
        }
    }

    /// Execute and collect all records (convenience for tests/examples).
    pub fn execute_all(&self, store: &RecordStore<'_>) -> Result<Vec<StoredRecord>> {
        let mut cursor = self.execute(store, &Continuation::Start, &ExecuteProperties::new())?;
        let (records, _, _) = cursor.collect_remaining_boxed()?;
        Ok(records)
    }
}

/// Boxed cursor of query results.
pub type PlanCursor<'a> = Box<dyn RecordCursor<Item = StoredRecord> + 'a>;

/// Helper so boxed cursors can drain (trait objects can't use the default
/// `collect_remaining` which requires `Sized`).
pub trait BoxedCursorExt {
    fn collect_remaining_boxed(
        &mut self,
    ) -> Result<(Vec<StoredRecord>, NoNextReason, Continuation)>;
}

impl BoxedCursorExt for PlanCursor<'_> {
    fn collect_remaining_boxed(
        &mut self,
    ) -> Result<(Vec<StoredRecord>, NoNextReason, Continuation)> {
        let mut out = Vec::new();
        loop {
            match self.next()? {
                CursorResult::Next { value, .. } => out.push(value),
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => return Ok((out, reason, continuation)),
            }
        }
    }
}

// ----------------------------------------------------------- plan cursors

struct FilteredRecordCursor<'a> {
    inner: Box<dyn RecordCursor<Item = StoredRecord> + 'a>,
    record_types: Option<BTreeSet<String>>,
    residual: Option<QueryComponent>,
}

impl RecordCursor for FilteredRecordCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            match self.inner.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    if let Some(types) = &self.record_types {
                        if !types.contains(&value.record_type) {
                            continue;
                        }
                    }
                    if let Some(residual) = &self.residual {
                        if !residual.eval(&value.record_type, &value.message)? {
                            continue;
                        }
                    }
                    return Ok(CursorResult::Next {
                        value,
                        continuation,
                    });
                }
                stop @ CursorResult::NoNext { .. } => return Ok(stop),
            }
        }
    }
}

/// Scans index keys and fetches the indexed records (the "primary fetch").
struct IndexFetchCursor<'a> {
    store: StoreParts<'a>,
    kv: crate::cursor::KeyValueCursor<'a>,
    subspace: Subspace,
    key_columns: usize,
    record_types: Option<BTreeSet<String>>,
    residual: Option<QueryComponent>,
}

/// Cloneable store handle pieces needed by cursors that outlive the
/// `RecordStore` value (but not the transaction).
pub struct StoreParts<'a> {
    tx: &'a rl_fdb::Transaction,
    subspace: Subspace,
    metadata: &'a RecordMetaData,
}

impl<'a> RecordStore<'a> {
    fn clone_parts(&self) -> StoreParts<'a> {
        StoreParts {
            tx: self.transaction(),
            subspace: self.subspace().clone(),
            metadata: self.metadata_ref(),
        }
    }
}

impl<'a> StoreParts<'a> {
    fn open(&self) -> Result<RecordStore<'a>> {
        RecordStore::open_or_create(self.tx, &self.subspace, self.metadata)
    }
}

impl RecordCursor for IndexFetchCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            match self.kv.next()? {
                CursorResult::Next {
                    value: kv,
                    continuation,
                } => {
                    let t = self.subspace.unpack(&kv.key).map_err(Error::Fdb)?;
                    let pk = t.suffix(self.key_columns);
                    let store = self.store.open()?;
                    let Some(record) = store.load_record(&pk)? else {
                        continue; // index entry racing a delete
                    };
                    if let Some(types) = &self.record_types {
                        if !types.contains(&record.record_type) {
                            continue;
                        }
                    }
                    if let Some(residual) = &self.residual {
                        if !residual.eval(&record.record_type, &record.message)? {
                            continue;
                        }
                    }
                    return Ok(CursorResult::Next {
                        value: record,
                        continuation,
                    });
                }
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => {
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation,
                    })
                }
            }
        }
    }
}

/// Sequentially executes union branches, deduplicating by primary key.
/// The continuation encodes `(branch, inner continuation, seen pks)` so a
/// resumed union never returns a duplicate.
struct UnionCursor<'a> {
    children: Vec<RecordQueryPlan>,
    store: StoreParts<'a>,
    props: ExecuteProperties,
    branch: usize,
    current: PlanCursor<'a>,
    seen: BTreeSet<Vec<u8>>,
}

impl<'a> UnionCursor<'a> {
    fn create(
        children: &[RecordQueryPlan],
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<PlanCursor<'a>> {
        let (branch, inner, seen) = match continuation {
            Continuation::Start => (0usize, Continuation::Start, BTreeSet::new()),
            Continuation::End => (children.len(), Continuation::End, BTreeSet::new()),
            Continuation::At(bytes) => {
                let t = Tuple::unpack(bytes)
                    .map_err(|e| Error::InvalidContinuation(format!("union: {e}")))?;
                let branch = t
                    .get(0)
                    .and_then(TupleElement::as_int)
                    .ok_or_else(|| Error::InvalidContinuation("union branch".into()))?
                    as usize;
                let inner = Continuation::from_bytes(
                    t.get(1)
                        .and_then(TupleElement::as_bytes)
                        .ok_or_else(|| Error::InvalidContinuation("union inner".into()))?,
                )?;
                let seen = t
                    .get(2)
                    .and_then(TupleElement::as_tuple)
                    .map(|seen_t| {
                        seen_t
                            .elements()
                            .iter()
                            .filter_map(|e| e.as_bytes().map(<[u8]>::to_vec))
                            .collect()
                    })
                    .unwrap_or_default();
                (branch, inner, seen)
            }
        };
        let current: PlanCursor<'a> = if branch < children.len() {
            children[branch].execute_inner(store, &inner, props)?
        } else {
            Box::new(crate::cursor::ListCursor::new(
                Vec::new(),
                &Continuation::Start,
            )?)
        };
        Ok(Box::new(UnionCursor {
            children: children.to_vec(),
            store: store.clone_parts(),
            props: props.clone(),
            branch,
            current,
            seen,
        }))
    }

    fn encode_continuation(&self, inner: &Continuation) -> Continuation {
        let mut seen_t = Tuple::new();
        for pk in &self.seen {
            seen_t.add(pk.clone());
        }
        Continuation::At(
            Tuple::new()
                .push(self.branch as i64)
                .push(inner.to_bytes())
                .push(seen_t)
                .pack(),
        )
    }
}

impl RecordCursor for UnionCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            if self.branch >= self.children.len() {
                return Ok(CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    continuation: Continuation::End,
                });
            }
            match self.current.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    let pk = value.primary_key.pack();
                    if self.seen.insert(pk) {
                        let cont = self.encode_continuation(&continuation);
                        return Ok(CursorResult::Next {
                            value,
                            continuation: cont,
                        });
                    }
                }
                CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    ..
                } => {
                    self.branch += 1;
                    if self.branch < self.children.len() {
                        let store = self.store.open()?;
                        self.current = self.children[self.branch].execute_inner(
                            &store,
                            &Continuation::Start,
                            &self.props,
                        )?;
                    }
                }
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => {
                    let cont = self.encode_continuation(&continuation);
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation: cont,
                    });
                }
            }
        }
    }
}

struct IntersectionCursor<'a> {
    inner: PlanCursor<'a>,
    pk_sets: Vec<BTreeSet<Vec<u8>>>,
}

impl RecordCursor for IntersectionCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            match self.inner.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    let pk = value.primary_key.pack();
                    if self.pk_sets.iter().all(|s| s.contains(&pk)) {
                        return Ok(CursorResult::Next {
                            value,
                            continuation,
                        });
                    }
                }
                stop @ CursorResult::NoNext { .. } => return Ok(stop),
            }
        }
    }
}

// -------------------------------------------------------------- planner

/// The heuristic query planner.
pub struct RecordQueryPlanner<'m> {
    metadata: &'m RecordMetaData,
}

/// One sargable conjunct extracted from the filter.
#[derive(Debug, Clone)]
struct Conjunct {
    component: QueryComponent,
    /// Field path + fan type for index matching, when extractable.
    path: Option<(Vec<String>, FanType)>,
    comparison: Option<Comparison>,
}

impl<'m> RecordQueryPlanner<'m> {
    pub fn new(metadata: &'m RecordMetaData) -> Self {
        RecordQueryPlanner { metadata }
    }

    /// Plan a query. Fails with [`Error::UnsupportedSort`] when a requested
    /// sort has no supporting index (§3.1: no in-memory sorts).
    pub fn plan(&self, query: &RecordQuery) -> Result<RecordQueryPlan> {
        let types: Option<BTreeSet<String>> = if query.record_types.is_empty() {
            None
        } else {
            Some(query.record_types.iter().cloned().collect())
        };

        // OR at the top level: union the branch plans when each branch is
        // independently index-plannable.
        if let Some(QueryComponent::Or(branches)) = &query.filter {
            if query.sort.is_none() {
                let mut children = Vec::new();
                let mut all_indexed = true;
                for branch in branches {
                    let sub = RecordQuery {
                        record_types: query.record_types.clone(),
                        filter: Some(branch.clone()),
                        sort: None,
                        sort_reverse: false,
                    };
                    match self.plan(&sub)? {
                        plan @ (RecordQueryPlan::IndexScan { .. }
                        | RecordQueryPlan::TextScan { .. }) => children.push(plan),
                        _ => {
                            all_indexed = false;
                            break;
                        }
                    }
                }
                if all_indexed && !children.is_empty() {
                    return Ok(RecordQueryPlan::Union { children });
                }
            }
        }

        let conjuncts = Self::conjuncts(query.filter.as_ref());

        // Try every VALUE index; keep the best-scoring candidate.
        let mut best: Option<(usize, RecordQueryPlan)> = None;
        for index in self.metadata.indexes() {
            if index.index_type != IndexType::Value {
                continue;
            }
            if !self.index_covers_types(index, &types) {
                continue;
            }
            let Some(parts) = index.key_expression.flatten() else {
                continue;
            };
            if let Some((score, plan)) =
                self.match_index(index, &parts, &conjuncts, query, &types)?
            {
                if best.as_ref().map_or(true, |(s, _)| score > *s) {
                    best = Some((score, plan));
                }
            }
        }
        // An intersection of single-column index scans can cover more
        // conjuncts than the best single index; prefer it when it does.
        if query.sort.is_none() {
            if let Some(RecordQueryPlan::Intersection { children }) =
                self.plan_intersection(&conjuncts, &types)?
            {
                let intersection_score = children.len() * 2;
                if best.as_ref().map_or(true, |(s, _)| intersection_score > *s) {
                    return Ok(RecordQueryPlan::Intersection { children });
                }
            }
        }
        if let Some((score, plan)) = best {
            if score > 0 || query.sort.is_some() {
                return Ok(plan);
            }
        }

        // Sort requested but no index matched: maybe the primary key
        // supports it (full scan is pk-ordered); else unsupported.
        if let Some(sort) = &query.sort {
            if self.primary_key_satisfies_sort(&types, sort) {
                return Ok(RecordQueryPlan::FullScan {
                    record_types: types,
                    residual: query.filter.clone(),
                    reverse: query.sort_reverse,
                });
            }
            return Err(Error::UnsupportedSort(format!(
                "no readable index supports sort {sort:?}; the layer does not sort in memory"
            )));
        }

        // Text predicates: serve from a TEXT index when available.
        if let Some(plan) = self.plan_text(&conjuncts, &types)? {
            return Ok(plan);
        }

        // AND across two single-column indexes: intersection.
        if let Some(plan) = self.plan_intersection(&conjuncts, &types)? {
            return Ok(plan);
        }

        Ok(RecordQueryPlan::FullScan {
            record_types: types,
            residual: query.filter.clone(),
            reverse: false,
        })
    }

    fn conjuncts(filter: Option<&QueryComponent>) -> Vec<Conjunct> {
        let mut out = Vec::new();
        let mut stack: Vec<&QueryComponent> = Vec::new();
        if let Some(f) = filter {
            match f {
                QueryComponent::And(parts) => stack.extend(parts.iter()),
                other => stack.push(other),
            }
        }
        for component in stack {
            let (path, comparison) = match component {
                QueryComponent::Field { path, comparison } => (
                    Some((path.clone(), FanType::Scalar)),
                    Some(comparison.clone()),
                ),
                QueryComponent::OneOfThem { field, comparison } => (
                    Some((vec![field.clone()], FanType::Fanout)),
                    Some(comparison.clone()),
                ),
                _ => (None, None),
            };
            out.push(Conjunct {
                component: component.clone(),
                path,
                comparison,
            });
        }
        out
    }

    fn index_covers_types(
        &self,
        index: &crate::metadata::Index,
        types: &Option<BTreeSet<String>>,
    ) -> bool {
        match types {
            None => index.record_types.is_empty(), // all-types query needs a universal index
            Some(ts) => ts.iter().all(|t| index.applies_to(t)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn match_index(
        &self,
        index: &crate::metadata::Index,
        parts: &[KeyPart],
        conjuncts: &[Conjunct],
        query: &RecordQuery,
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<(usize, RecordQueryPlan)>> {
        let mut consumed = vec![false; conjuncts.len()];
        let mut eq_prefix = Tuple::new();
        let mut eq_count = 0usize;

        // Greedily consume equality conjuncts along the index's columns.
        for part in parts {
            let KeyPart::Field { path, fan_type } = part else {
                break;
            };
            let found = conjuncts.iter().enumerate().find(|(i, c)| {
                !consumed[*i]
                    && c.path
                        .as_ref()
                        .is_some_and(|(p, ft)| p == path && ft == fan_type)
                    && matches!(c.comparison, Some(Comparison::Equals(_)))
            });
            match found {
                Some((i, c)) => {
                    if let Some(Comparison::Equals(v)) = &c.comparison {
                        eq_prefix.add(v.clone());
                    }
                    consumed[i] = true;
                    eq_count += 1;
                }
                None => break,
            }
        }

        // One range/prefix comparison on the next column.
        let mut bounds = ScanBounds::Range(TupleRange::prefix(eq_prefix.clone()));
        let mut range_count = 0usize;
        if let Some(KeyPart::Field { path, fan_type }) = parts.get(eq_count) {
            let mut low: Option<(TupleElement, bool)> = None;
            let mut high: Option<(TupleElement, bool)> = None;
            let mut string_prefix: Option<String> = None;
            for (i, c) in conjuncts.iter().enumerate() {
                if consumed[i] || c.path.as_ref().map(|(p, ft)| (p, *ft)) != Some((path, *fan_type))
                {
                    continue;
                }
                match &c.comparison {
                    Some(Comparison::GreaterThan(v)) => {
                        low = Some((v.clone(), false));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::GreaterThanOrEquals(v)) => {
                        low = Some((v.clone(), true));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::LessThan(v)) => {
                        high = Some((v.clone(), false));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::LessThanOrEquals(v)) => {
                        high = Some((v.clone(), true));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::StartsWith(p)) if string_prefix.is_none() => {
                        string_prefix = Some(p.clone());
                        consumed[i] = true;
                        range_count += 1;
                    }
                    _ => {}
                }
            }
            if let Some(prefix) = string_prefix {
                bounds = ScanBounds::StringPrefix {
                    prefix_cols: eq_prefix.clone(),
                    prefix,
                };
            } else if low.is_some() || high.is_some() {
                let low_t = low.map(|(el, incl)| (eq_prefix.clone().push(el), incl));
                let high_t = high.map(|(el, incl)| (eq_prefix.clone().push(el), incl));
                bounds = ScanBounds::Range(TupleRange {
                    low: low_t.or_else(|| Some((eq_prefix.clone(), true))),
                    high: high_t.or_else(|| Some((eq_prefix.clone(), true))),
                });
            }
        }

        let matched = eq_count + range_count;

        // Sort satisfaction: the index's column order after the equality
        // prefix (or from the start) must begin with the sort columns.
        let mut reverse = false;
        if let Some(sort) = &query.sort {
            let Some(sort_parts) = sort.flatten() else {
                return Ok(None);
            };
            let tail = &parts[eq_count.min(parts.len())..];
            let satisfies = tail.len() >= sort_parts.len()
                && tail[..sort_parts.len()] == sort_parts[..]
                || parts.len() >= sort_parts.len() && parts[..sort_parts.len()] == sort_parts[..];
            if !satisfies {
                return Ok(None);
            }
            reverse = query.sort_reverse;
        } else if matched == 0 {
            return Ok(None);
        }

        // Residual: everything not consumed.
        let residual_parts: Vec<QueryComponent> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed[*i])
            .map(|(_, c)| c.component.clone())
            .collect();
        let residual = match residual_parts.len() {
            0 => None,
            1 => Some(residual_parts.into_iter().next().unwrap()),
            _ => Some(QueryComponent::And(residual_parts)),
        };

        let score = matched * 2 + usize::from(query.sort.is_some());
        Ok(Some((
            score,
            RecordQueryPlan::IndexScan {
                index_name: index.name.clone(),
                bounds,
                reverse,
                record_types: types.clone(),
                residual,
            },
        )))
    }

    fn primary_key_satisfies_sort(
        &self,
        types: &Option<BTreeSet<String>>,
        sort: &KeyExpression,
    ) -> bool {
        let Some(sort_parts) = sort.flatten() else {
            return false;
        };
        let mut candidates: Vec<&crate::metadata::RecordType> = Vec::new();
        match types {
            Some(ts) => {
                for t in ts {
                    match self.metadata.record_type(t) {
                        Ok(rt) => candidates.push(rt),
                        Err(_) => return false,
                    }
                }
            }
            None => candidates.extend(self.metadata.record_types()),
        }
        candidates.iter().all(|rt| {
            rt.primary_key.flatten().is_some_and(|pk| {
                pk.len() >= sort_parts.len() && pk[..sort_parts.len()] == sort_parts[..]
            })
        })
    }

    fn plan_text(
        &self,
        conjuncts: &[Conjunct],
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<RecordQueryPlan>> {
        for (i, c) in conjuncts.iter().enumerate() {
            let Some(Comparison::Text(cmp)) = &c.comparison else {
                continue;
            };
            let Some((path, _)) = &c.path else { continue };
            for index in self.metadata.indexes() {
                if index.index_type != IndexType::Text || !self.index_covers_types(index, types) {
                    continue;
                }
                let Some(parts) = index.key_expression.flatten() else {
                    continue;
                };
                let matches_field =
                    matches!(parts.first(), Some(KeyPart::Field { path: p, .. }) if p == path);
                if !matches_field {
                    continue;
                }
                let residual_parts: Vec<QueryComponent> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.component.clone())
                    .collect();
                let residual = match residual_parts.len() {
                    0 => None,
                    1 => Some(residual_parts.into_iter().next().unwrap()),
                    _ => Some(QueryComponent::And(residual_parts)),
                };
                return Ok(Some(RecordQueryPlan::TextScan {
                    index_name: index.name.clone(),
                    comparison: cmp.clone(),
                    record_types: types.clone(),
                    residual,
                }));
            }
        }
        Ok(None)
    }

    fn plan_intersection(
        &self,
        conjuncts: &[Conjunct],
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<RecordQueryPlan>> {
        // Find two equality conjuncts each served by a different
        // single-column index.
        let mut children = Vec::new();
        for c in conjuncts {
            let Some((path, fan)) = &c.path else { continue };
            if !matches!(c.comparison, Some(Comparison::Equals(_))) {
                continue;
            }
            for index in self.metadata.indexes() {
                if index.index_type != IndexType::Value || !self.index_covers_types(index, types) {
                    continue;
                }
                let Some(parts) = index.key_expression.flatten() else {
                    continue;
                };
                if parts.len() == 1
                    && matches!(&parts[0], KeyPart::Field { path: p, fan_type } if p == path && fan_type == fan)
                {
                    if let Some(Comparison::Equals(v)) = &c.comparison {
                        children.push(RecordQueryPlan::IndexScan {
                            index_name: index.name.clone(),
                            bounds: ScanBounds::Range(TupleRange::prefix(
                                Tuple::new().push(v.clone()),
                            )),
                            reverse: false,
                            record_types: types.clone(),
                            residual: None,
                        });
                    }
                    break;
                }
            }
        }
        if children.len() >= 2 && children.len() == conjuncts.len() {
            Ok(Some(RecordQueryPlan::Intersection { children }))
        } else {
            Ok(None)
        }
    }
}
