//! The default VALUE index type (§7): a mapping from indexed field values
//! to record primary keys, stored as `(index_subspace, key…, pk…) -> value`.

use rl_fdb::RangeOptions;

use crate::error::{Error, Result};
use crate::index::{
    evaluate_index_expr, to_index_entries, IndexContext, IndexEntry, IndexMaintainer,
};
use crate::store::StoredRecord;

/// Maintains VALUE indexes by diffing old and new entry sets, so unchanged
/// entries are untouched — the §6 optimization ("if an existing record and
/// a new record are of the same type and some of the indexed fields are the
/// same, the unchanged indexes are not updated").
pub struct ValueIndexMaintainer;

/// Compute the concrete index entries for a record under an index.
pub fn entries_for(ctx: &IndexContext<'_>, record: &StoredRecord) -> Result<Vec<IndexEntry>> {
    let tuples = evaluate_index_expr(ctx.index, record)?;
    Ok(to_index_entries(ctx.index, tuples, &record.primary_key))
}

impl IndexMaintainer for ValueIndexMaintainer {
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64> {
        let old_entries = old
            .map(|r| entries_for(ctx, r))
            .transpose()?
            .unwrap_or_default();
        let new_entries = new
            .map(|r| entries_for(ctx, r))
            .transpose()?
            .unwrap_or_default();
        let mut delta = 0i64;

        // Remove entries no longer produced.
        for entry in &old_entries {
            if !new_entries.contains(entry) {
                let key = ctx
                    .subspace
                    .pack(&entry.key.clone().concat(&entry.primary_key));
                ctx.tx.clear(&key);
                delta -= 1;
            }
        }
        // Insert fresh entries.
        for entry in &new_entries {
            if old_entries.contains(entry) {
                continue;
            }
            if ctx.index.options.unique {
                // A unique index key must map to at most one primary key:
                // scan the key's prefix for a foreign pk.
                let prefix = ctx.subspace.subspace(&entry.key);
                let (begin, end) = prefix.range();
                let existing = ctx
                    .tx
                    .get_range(&begin, &end, RangeOptions::new().limit(2))?;
                for kv in existing {
                    let t = prefix.unpack(&kv.key).map_err(Error::Fdb)?;
                    if t != entry.primary_key {
                        return Err(Error::UniquenessViolation {
                            index: ctx.index.name.clone(),
                        });
                    }
                }
            }
            let key = ctx
                .subspace
                .pack(&entry.key.clone().concat(&entry.primary_key));
            let value = if entry.value.is_empty() {
                Vec::new()
            } else {
                entry.value.pack()
            };
            ctx.tx.try_set(&key, &value)?;
            delta += 1;
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end in `store`-level and integration tests; the
    // entry-diff logic is additionally covered here via a fake context.
    use super::*;
    use crate::expr::KeyExpression;
    use crate::metadata::{Index, RecordMetaDataBuilder};
    use crate::store::RecordStore;
    use rl_fdb::tuple::Tuple;
    use rl_fdb::{Database, Subspace};
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    fn metadata() -> crate::metadata::RecordMetaData {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "T",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("a", 2, FieldType::String),
                    FieldDescriptor::optional("b", 3, FieldType::String),
                    FieldDescriptor::repeated("tags", 4, FieldType::String),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        RecordMetaDataBuilder::new(pool)
            .record_type("T", KeyExpression::field("id"))
            .index("T", Index::value("by_a", KeyExpression::field("a")))
            .index(
                "T",
                Index::value("by_tag", KeyExpression::field_fanout("tags")),
            )
            .build()
            .unwrap()
    }

    fn index_key_count(db: &Database, subspace: &Subspace) -> usize {
        let tx = db.create_transaction();
        let (b, e) = subspace.range_inclusive();
        tx.get_range(&b, &e, rl_fdb::RangeOptions::default())
            .unwrap()
            .len()
    }

    #[test]
    fn unchanged_entries_not_rewritten() {
        let db = Database::new();
        let md = metadata();
        let sub = Subspace::from_bytes(b"S".to_vec());

        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("T")?;
            rec.set("id", 1i64).unwrap();
            rec.set("a", "same").unwrap();
            rec.set("b", "x").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();

        let before = db.metrics().snapshot();
        // Update a non-indexed field: the by_a index key is unchanged and
        // must not be re-written.
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("T")?;
            rec.set("id", 1i64).unwrap();
            rec.set("a", "same").unwrap();
            rec.set("b", "changed").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
        let after = db.metrics().snapshot();
        let delta = after.delta(&before);
        // Record payload + version are rewritten, but no index keys: with
        // two indexes (by_a unchanged, by_tag empty) writes stay small.
        assert!(delta.keys_written <= 3, "too many writes: {delta:?}");
    }

    #[test]
    fn fanout_index_entry_per_element() {
        let db = Database::new();
        let md = metadata();
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("T")?;
            rec.set("id", 1i64).unwrap();
            rec.push("tags", "x").unwrap();
            rec.push("tags", "y").unwrap();
            rec.push("tags", "z").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
        let md2 = metadata();
        let tx = db.create_transaction();
        let store = RecordStore::open_or_create(&tx, &sub, &md2).unwrap();
        let tag_index_sub = store.index_subspace(md2.index("by_tag").unwrap());
        drop(tx);
        assert_eq!(index_key_count(&db, &tag_index_sub), 3);
    }

    #[test]
    fn delete_removes_entries() {
        let db = Database::new();
        let md = metadata();
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("T")?;
            rec.set("id", 1i64).unwrap();
            rec.set("a", "v").unwrap();
            rec.push("tags", "t1").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            assert!(store.delete_record(&Tuple::from((1i64,)))?);
            Ok(())
        })
        .unwrap();
        let tx = db.create_transaction();
        let store = RecordStore::open_or_create(&tx, &sub, &md).unwrap();
        for name in ["by_a", "by_tag"] {
            let isub = store.index_subspace(md.index(name).unwrap());
            let (b, e) = isub.range_inclusive();
            assert!(tx
                .get_range(&b, &e, rl_fdb::RangeOptions::default())
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn unique_index_rejects_duplicate_keys() {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "U",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("email", 2, FieldType::String),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let md = RecordMetaDataBuilder::new(pool)
            .record_type("U", KeyExpression::field("id"))
            .index(
                "U",
                Index::value("by_email", KeyExpression::field("email")).with_unique(),
            )
            .build()
            .unwrap();
        let db = Database::new();
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("U")?;
            rec.set("id", 1i64).unwrap();
            rec.set("email", "a@example.com").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
        let err = crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("U")?;
            rec.set("id", 2i64).unwrap();
            rec.set("email", "a@example.com").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, Error::UniquenessViolation { .. }));
        // Same record re-saved is fine.
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let mut rec = store.new_record("U")?;
            rec.set("id", 1i64).unwrap();
            rec.set("email", "a@example.com").unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
    }
}
