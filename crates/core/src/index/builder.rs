//! The online index builder (§6): builds or rebuilds an index in the
//! background, split across many transactions so no single transaction
//! exceeds the 5-second limit or the size limit.
//!
//! The index starts in *write-only* state (writes maintain it, queries
//! cannot use it), the builder scans the record extent in batches —
//! persisting its progress as a continuation inside the store, so a crashed
//! builder resumes exactly where it stopped — and finally flips the index
//! to *readable*.

use rl_fdb::subspace::Subspace;
use rl_fdb::Database;

use crate::cursor::{Continuation, CursorResult, ExecuteProperties, RecordCursor};
use crate::error::Result;
use crate::index::IndexState;
use crate::metadata::{IndexType, RecordMetaData};
use crate::store::{RecordStore, RecordStoreBuilder, TupleRange};

/// Builds one index of one record store across multiple transactions.
pub struct OnlineIndexBuilder<'m> {
    db: Database,
    store_subspace: Subspace,
    metadata: &'m RecordMetaData,
    index_name: String,
    /// Records per transaction (kept small so builds are incremental).
    batch_size: usize,
    /// Number of transactions committed by the last `build()` call.
    pub transactions_used: usize,
}

impl<'m> OnlineIndexBuilder<'m> {
    pub fn new(
        db: &Database,
        store_subspace: &Subspace,
        metadata: &'m RecordMetaData,
        index_name: impl Into<String>,
    ) -> Self {
        OnlineIndexBuilder {
            db: db.clone(),
            store_subspace: store_subspace.clone(),
            metadata,
            index_name: index_name.into(),
            batch_size: 64,
            transactions_used: 0,
        }
    }

    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    fn open<'a>(&self, tx: &'a rl_fdb::Transaction) -> Result<RecordStore<'a>>
    where
        'm: 'a,
    {
        RecordStoreBuilder::new().open_or_create(tx, &self.store_subspace, self.metadata)
    }

    fn progress_key(&self, store: &RecordStore<'_>) -> Result<Vec<u8>> {
        let index = self.metadata.index(&self.index_name)?;
        Ok(store
            .index_range_subspace(index)
            .pack(&rl_fdb::tuple::Tuple::new().push("progress")))
    }

    /// Run the full build: clear stale data, scan all records in batches,
    /// mark readable.
    pub fn build(&mut self) -> Result<()> {
        self.transactions_used = 0;

        // Phase 1: enter write-only and clear any stale index data, so
        // records written *during* the build maintain the index while the
        // scan backfills the rest.
        crate::run(&self.db, |tx| {
            let store = self.open(tx)?;
            let index = self.metadata.index(&self.index_name)?;
            store.set_index_state(&self.index_name, IndexState::WriteOnly)?;
            store.clear_index_data(index)?;
            Ok(())
        })?;
        self.transactions_used += 1;

        // Phase 2: batched scan, one transaction per batch, resuming from
        // the persisted continuation.
        loop {
            let finished = crate::run(&self.db, |tx| {
                let store = self.open(tx)?;
                let index = self.metadata.index(&self.index_name)?;
                let progress_key = self.progress_key(&store)?;
                let continuation = match tx.get(&progress_key).map_err(crate::Error::Fdb)? {
                    Some(bytes) => Continuation::from_bytes(&bytes)?,
                    None => Continuation::Start,
                };
                if continuation.is_end() {
                    return Ok(true);
                }
                let mut cursor = store.scan_records(
                    &TupleRange::all(),
                    &continuation,
                    &ExecuteProperties::new(),
                )?;
                let mut scanned = 0usize;
                let final_continuation = loop {
                    match cursor.next()? {
                        CursorResult::Next {
                            value: record,
                            continuation,
                        } => {
                            if index.applies_to(&record.record_type) {
                                store.update_one_index(index, &record)?;
                            }
                            scanned += 1;
                            if scanned >= self.batch_size {
                                break continuation;
                            }
                        }
                        CursorResult::NoNext { continuation, .. } => break continuation,
                    }
                };
                let done = final_continuation.is_end();
                tx.try_set(&progress_key, &final_continuation.to_bytes())
                    .map_err(crate::Error::Fdb)?;
                Ok(done)
            })?;
            self.transactions_used += 1;
            if finished {
                break;
            }
        }

        // Phase 3: flip to readable and drop the progress marker. For
        // key-per-entry index types, rebuild the entry-count statistic
        // exactly: records written while the backfill raced them were
        // maintained by both paths and double-counted in the additive
        // counter. (A single range read suffices in the simulator; a real
        // deployment would batch the recount like the backfill itself.)
        crate::run(&self.db, |tx| {
            let store = self.open(tx)?;
            let index = self.metadata.index(&self.index_name)?;
            if matches!(index.index_type, IndexType::Value | IndexType::Version) {
                let data = store.index_subspace(index);
                let (begin, end) = data.range_inclusive();
                let count = tx
                    .get_range_snapshot(&begin, &end, rl_fdb::RangeOptions::default())
                    .map_err(crate::Error::Fdb)?
                    .len() as u64;
                store.set_index_entry_count(&self.index_name, count)?;
            }
            let progress_key = self.progress_key(&store)?;
            tx.clear(&progress_key);
            store.set_index_state(&self.index_name, IndexState::Readable)?;
            Ok(())
        })?;
        self.transactions_used += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::KeyExpression;
    use crate::metadata::{Index, RecordMetaDataBuilder};
    use crate::store::{AggregateValue, RecordStore};
    use rl_fdb::tuple::Tuple;
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    fn pool() -> DescriptorPool {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "T",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("v", 2, FieldType::Int64),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool
    }

    fn metadata_v1() -> crate::metadata::RecordMetaData {
        RecordMetaDataBuilder::new(pool())
            .record_type("T", KeyExpression::field("id"))
            .build()
            .unwrap()
    }

    fn metadata_v2() -> crate::metadata::RecordMetaData {
        RecordMetaDataBuilder::from_existing(&metadata_v1())
            .index("T", Index::value("by_v", KeyExpression::field("v")))
            .index(
                "T",
                Index::sum("sum_v", KeyExpression::Empty, KeyExpression::field("v")),
            )
            .build()
            .unwrap()
    }

    fn seed(db: &Database, md: &crate::metadata::RecordMetaData, n: i64) {
        let sub = Subspace::from_bytes(b"S".to_vec());
        for i in 0..n {
            crate::run(db, |tx| {
                let store = RecordStore::open_or_create(tx, &sub, md)?;
                let mut rec = store.new_record("T")?;
                rec.set("id", i).unwrap();
                rec.set("v", i * 10).unwrap();
                store.save_record(rec)?;
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn new_index_on_populated_store_starts_disabled_then_builds() {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"S".to_vec());
        let v1 = metadata_v1();
        seed(&db, &v1, 50);

        let v2 = metadata_v2();
        // Opening with newer metadata marks the new indexes disabled (the
        // store already has records, §5).
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            assert_eq!(store.index_state("by_v")?, IndexState::Disabled);
            // Scanning a disabled index fails.
            assert!(store
                .scan_index(
                    "by_v",
                    &TupleRange::all(),
                    &Continuation::Start,
                    false,
                    &ExecuteProperties::new()
                )
                .is_err());
            Ok(())
        })
        .unwrap();

        let mut builder = OnlineIndexBuilder::new(&db, &sub, &v2, "by_v").batch_size(7);
        builder.build().unwrap();
        // 50 records / 7 per batch → several transactions, proving the
        // build spans transactions.
        assert!(
            builder.transactions_used > 3,
            "used {}",
            builder.transactions_used
        );

        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            assert_eq!(store.index_state("by_v")?, IndexState::Readable);
            let mut cursor = store.scan_index(
                "by_v",
                &TupleRange::all(),
                &Continuation::Start,
                false,
                &ExecuteProperties::new(),
            )?;
            let (entries, _, _) = cursor.collect_remaining()?;
            assert_eq!(entries.len(), 50);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn aggregate_index_build_produces_correct_sum() {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"S".to_vec());
        let v1 = metadata_v1();
        seed(&db, &v1, 20);
        let v2 = metadata_v2();
        crate::run(&db, |tx| {
            RecordStore::open_or_create(tx, &sub, &v2)?;
            Ok(())
        })
        .unwrap();
        OnlineIndexBuilder::new(&db, &sub, &v2, "sum_v")
            .batch_size(6)
            .build()
            .unwrap();
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            let sum = store.evaluate_aggregate("sum_v", &Tuple::new())?;
            // sum of 0,10,...,190 = 1900.
            assert_eq!(sum, AggregateValue::Long(1900));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn writes_during_build_are_not_lost() {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"S".to_vec());
        let v1 = metadata_v1();
        seed(&db, &v1, 10);
        let v2 = metadata_v2();
        crate::run(&db, |tx| {
            RecordStore::open_or_create(tx, &sub, &v2)?;
            Ok(())
        })
        .unwrap();

        // Put the index in write-only state manually, write a record (it
        // must maintain the index), then build.
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            store.set_index_state("by_v", IndexState::WriteOnly)?;
            let mut rec = store.new_record("T")?;
            rec.set("id", 100i64).unwrap();
            rec.set("v", 777i64).unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();

        OnlineIndexBuilder::new(&db, &sub, &v2, "by_v")
            .batch_size(4)
            .build()
            .unwrap();

        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            let mut cursor = store.scan_index(
                "by_v",
                &TupleRange::prefix(Tuple::from((777i64,))),
                &Continuation::Start,
                false,
                &ExecuteProperties::new(),
            )?;
            let (entries, _, _) = cursor.collect_remaining()?;
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].primary_key, Tuple::from((100i64,)));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn rebuild_replaces_stale_entries() {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"S".to_vec());
        let v2 = metadata_v2();
        seed(&db, &v2, 15); // store created at v2: indexes readable and maintained

        // Corrupt the index by clearing it directly, then rebuild.
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            let index = v2.index("by_v")?;
            store.clear_index_data(index)?;
            Ok(())
        })
        .unwrap();
        OnlineIndexBuilder::new(&db, &sub, &v2, "by_v")
            .batch_size(4)
            .build()
            .unwrap();
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &v2)?;
            let mut cursor = store.scan_index(
                "by_v",
                &TupleRange::all(),
                &Continuation::Start,
                false,
                &ExecuteProperties::new(),
            )?;
            let (entries, _, _) = cursor.collect_remaining()?;
            assert_eq!(entries.len(), 15);
            Ok(())
        })
        .unwrap();
    }
}
