//! VERSION indexes (§7): index entries containing the record's 12-byte
//! commit version, exposing the total ordering of operations within the
//! cluster. CloudKit's sync index is built on this type (§8.1).
//!
//! New records' versions are unknown until commit, so fresh entries are
//! written with `SET_VERSIONSTAMPED_KEY`: the database splices the commit
//! version into the key during commit. Old entries are removed with plain
//! clears since a stored record's version is known.

use rl_fdb::atomic::MutationType;
use rl_fdb::tuple::Tuple;

use crate::error::Result;
use crate::index::{evaluate_index_expr, to_index_entries, IndexContext, IndexMaintainer};
use crate::store::StoredRecord;

pub struct VersionIndexMaintainer;

/// Whether a tuple contains an incomplete versionstamp (somewhere).
fn has_incomplete(t: &Tuple) -> bool {
    t.elements().iter().any(|e| match e {
        rl_fdb::tuple::TupleElement::Versionstamp(v) => !v.is_complete(),
        rl_fdb::tuple::TupleElement::Tuple(inner) => has_incomplete(inner),
        _ => false,
    })
}

impl IndexMaintainer for VersionIndexMaintainer {
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64> {
        let mut delta = 0i64;
        if let Some(old) = old {
            let tuples = evaluate_index_expr(ctx.index, old)?;
            for entry in to_index_entries(ctx.index, tuples, &old.primary_key) {
                // The stored record's version is complete, so the entry key
                // is fully known and can be cleared directly.
                let key = ctx.subspace.pack(&entry.key.concat(&entry.primary_key));
                ctx.tx.clear(&key);
                delta -= 1;
            }
        }
        if let Some(new) = new {
            let tuples = evaluate_index_expr(ctx.index, new)?;
            for entry in to_index_entries(ctx.index, tuples, &new.primary_key) {
                let full = entry.key.concat(&entry.primary_key);
                let value = if entry.value.is_empty() {
                    Vec::new()
                } else {
                    entry.value.pack()
                };
                if has_incomplete(&full) {
                    let operand = ctx
                        .subspace
                        .pack_versionstamp_operand(&full)
                        .map_err(crate::Error::Fdb)?;
                    ctx.tx
                        .mutate(MutationType::SetVersionstampedKey, &operand, &value)?;
                } else {
                    ctx.tx.try_set(&ctx.subspace.pack(&full), &value)?;
                }
                delta += 1;
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use crate::cursor::{Continuation, ExecuteProperties, RecordCursor};
    use crate::expr::KeyExpression;
    use crate::metadata::{Index, RecordMetaDataBuilder};
    use crate::store::{RecordStore, TupleRange};
    use rl_fdb::tuple::{Tuple, TupleElement};
    use rl_fdb::{Database, Subspace};
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    fn metadata() -> crate::metadata::RecordMetaData {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "Doc",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("zone", 2, FieldType::String),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        RecordMetaDataBuilder::new(pool)
            .record_type("Doc", KeyExpression::field("id"))
            .index("Doc", Index::version("sync", KeyExpression::Version))
            .index(
                "Doc",
                Index::version(
                    "zone_sync",
                    KeyExpression::concat(vec![
                        KeyExpression::field("zone"),
                        KeyExpression::Version,
                    ]),
                ),
            )
            .build()
            .unwrap()
    }

    fn save(db: &Database, md: &crate::metadata::RecordMetaData, id: i64, zone: &str) {
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, md)?;
            let mut rec = store.new_record("Doc")?;
            rec.set("id", id).unwrap();
            rec.set("zone", zone).unwrap();
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
    }

    fn scan_sync(
        db: &Database,
        md: &crate::metadata::RecordMetaData,
        index: &str,
        range: TupleRange,
    ) -> Vec<(Tuple, Tuple)> {
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, md)?;
            let mut cursor = store.scan_index(
                index,
                &range,
                &Continuation::Start,
                false,
                &ExecuteProperties::new(),
            )?;
            let (entries, _, _) = cursor.collect_remaining()?;
            Ok(entries
                .into_iter()
                .map(|e| (e.key, e.primary_key))
                .collect())
        })
        .unwrap()
    }

    #[test]
    fn entries_ordered_by_commit_version() {
        let db = Database::new();
        let md = metadata();
        save(&db, &md, 1, "z");
        save(&db, &md, 2, "z");
        save(&db, &md, 3, "z");

        let entries = scan_sync(&db, &md, "sync", TupleRange::all());
        assert_eq!(entries.len(), 3);
        // Scanning the version index returns records in write order.
        let pks: Vec<i64> = entries
            .iter()
            .map(|(_, pk)| pk.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pks, vec![1, 2, 3]);
        // Versions are complete and strictly increasing.
        let versions: Vec<_> = entries
            .iter()
            .map(|(k, _)| *k.get(0).unwrap().as_versionstamp().unwrap())
            .collect();
        assert!(versions.iter().all(|v| v.is_complete()));
        assert!(versions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn update_moves_record_to_end_of_sync_order() {
        let db = Database::new();
        let md = metadata();
        save(&db, &md, 1, "z");
        save(&db, &md, 2, "z");
        save(&db, &md, 1, "z"); // re-save: old entry removed, new appended

        let entries = scan_sync(&db, &md, "sync", TupleRange::all());
        assert_eq!(entries.len(), 2, "old version entry must be removed");
        let pks: Vec<i64> = entries
            .iter()
            .map(|(_, pk)| pk.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pks, vec![2, 1]);
    }

    #[test]
    fn sync_scan_from_checkpoint_sees_only_new_changes() {
        // The CloudKit sync pattern (§8.1): remember the last seen
        // version, then scan the index from there.
        let db = Database::new();
        let md = metadata();
        save(&db, &md, 1, "z");
        save(&db, &md, 2, "z");
        let checkpoint = scan_sync(&db, &md, "sync", TupleRange::all())
            .last()
            .map(|(k, _)| k.clone())
            .unwrap();
        save(&db, &md, 3, "z");
        save(&db, &md, 4, "z");

        let news = scan_sync(
            &db,
            &md,
            "sync",
            TupleRange::between(Some((checkpoint, false)), None),
        );
        let pks: Vec<i64> = news
            .iter()
            .map(|(_, pk)| pk.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pks, vec![3, 4]);
    }

    #[test]
    fn zone_prefixed_version_index() {
        let db = Database::new();
        let md = metadata();
        save(&db, &md, 1, "a");
        save(&db, &md, 2, "b");
        save(&db, &md, 3, "a");

        let a_entries = scan_sync(
            &db,
            &md,
            "zone_sync",
            TupleRange::prefix(Tuple::from(("a",))),
        );
        let pks: Vec<i64> = a_entries
            .iter()
            .map(|(_, pk)| pk.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pks, vec![1, 3]);
        // Key layout: (zone, version).
        assert!(matches!(a_entries[0].0.get(0), Some(TupleElement::String(z)) if z == "a"));
    }

    #[test]
    fn record_version_matches_index_version() {
        let db = Database::new();
        let md = metadata();
        save(&db, &md, 1, "z");
        let sub = Subspace::from_bytes(b"S".to_vec());
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            let rec = store.load_record(&Tuple::from((1i64,)))?.unwrap();
            let stored_version = rec.version.unwrap();
            let mut cursor = store.scan_index(
                "sync",
                &TupleRange::all(),
                &Continuation::Start,
                false,
                &ExecuteProperties::new(),
            )?;
            let (entries, _, _) = cursor.collect_remaining()?;
            let index_version = *entries[0].key.get(0).unwrap().as_versionstamp().unwrap();
            assert_eq!(stored_version, index_version);
            Ok(())
        })
        .unwrap();
    }
}
