//! Index definition and maintenance (§6) and the built-in index types
//! (§7, Appendix B).
//!
//! Indexes are durable data structures maintained *in the same transaction*
//! as the record change itself, so they are always consistent with the
//! data. Each index type is implemented by an [`IndexMaintainer`]; the
//! [`IndexRegistry`] maps index types to maintainers and is the extension
//! point through which clients plug in custom index types.

pub mod atomic;
pub mod builder;
pub mod rank;
pub mod text;
pub mod value;
pub mod version;

use std::collections::BTreeMap;
use std::sync::Arc;

use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::Tuple;
use rl_fdb::Transaction;

use crate::error::{Error, Result};
use crate::expr::EvalContext;
use crate::metadata::{Index, IndexType, RecordMetaData};
use crate::store::StoredRecord;

/// Lifecycle state of an index (§6 online index building).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// Not maintained and not readable (e.g. newly added to a store with
    /// existing records, before the online build starts).
    Disabled,
    /// Maintained by writes but not usable by queries (being built).
    WriteOnly,
    /// Fully built: maintained and usable.
    Readable,
}

impl IndexState {
    pub fn to_byte(self) -> u8 {
        match self {
            IndexState::Disabled => 0,
            IndexState::WriteOnly => 1,
            IndexState::Readable => 2,
        }
    }

    pub fn from_byte(b: u8) -> Result<IndexState> {
        match b {
            0 => Ok(IndexState::Disabled),
            1 => Ok(IndexState::WriteOnly),
            2 => Ok(IndexState::Readable),
            other => Err(Error::MetaData(format!("invalid index state byte {other}"))),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            IndexState::Disabled => "disabled",
            IndexState::WriteOnly => "write-only",
            IndexState::Readable => "readable",
        }
    }

    /// Whether writes must maintain the index in this state.
    pub fn is_maintained(self) -> bool {
        !matches!(self, IndexState::Disabled)
    }
}

/// Everything a maintainer needs to update one index within a transaction.
pub struct IndexContext<'a> {
    pub tx: &'a Transaction,
    pub index: &'a Index,
    /// The subspace dedicated to this index within the record store.
    pub subspace: Subspace,
    pub metadata: &'a RecordMetaData,
}

/// A maintainer updates the durable structure of one index type when
/// records change. Updates are *streaming*: they use only the contents of
/// the changed record (§6).
pub trait IndexMaintainer: Send + Sync {
    /// Apply the index delta for a record change: `old == None` is an
    /// insert, `new == None` a delete, both `Some` an update.
    ///
    /// Returns the net change in the number of scannable index entries,
    /// which the store folds into the index's persistent entry-count
    /// statistic (read by the cost-based planner). Aggregate indexes that
    /// keep one key per group report 0: their size is not a function of
    /// scan work.
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64>;
}

/// Evaluate an index's key expression against a record, yielding the raw
/// (unsplit) tuples.
pub fn evaluate_index_expr(index: &Index, record: &StoredRecord) -> Result<Vec<Tuple>> {
    // Index filters make the index sparse: filtered-out records produce no
    // entries at all (§6).
    if let Some(filter) = &index.filter {
        if !filter.eval(&record.record_type, &record.message)? {
            return Ok(Vec::new());
        }
    }
    let ctx = EvalContext::new(&record.message, &record.record_type).with_version(record.version);
    index.key_expression.evaluate(&ctx)
}

/// An index entry as produced by evaluation: the key columns (with the
/// primary key appended by VALUE-like maintainers) and any covering value
/// columns.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Entry key columns *excluding* the appended primary key.
    pub key: Tuple,
    /// Covering value columns (empty unless the index uses KeyWithValue).
    pub value: Tuple,
    /// The indexed record's primary key.
    pub primary_key: Tuple,
}

/// Split evaluated tuples into (key, value) pairs according to the index's
/// KeyWithValue boundary, and attach the record's primary key.
pub fn to_index_entries(index: &Index, tuples: Vec<Tuple>, primary_key: &Tuple) -> Vec<IndexEntry> {
    let key_columns = index.key_expression.key_column_count();
    tuples
        .into_iter()
        .map(|t| IndexEntry {
            key: t.prefix(key_columns),
            value: t.suffix(key_columns),
            primary_key: primary_key.clone(),
        })
        .collect()
}

/// The registry mapping index types to maintainers. `Custom` index types
/// dispatch on `IndexOptions::custom_type` names, which is how clients
/// "plug in" new index types (§3.1 extensibility).
#[derive(Clone)]
pub struct IndexRegistry {
    builtin: BTreeMap<&'static str, Arc<dyn IndexMaintainer>>,
    custom: BTreeMap<String, Arc<dyn IndexMaintainer>>,
}

impl std::fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexRegistry")
            .field("builtin", &self.builtin.keys().collect::<Vec<_>>())
            .field("custom", &self.custom.keys().collect::<Vec<_>>())
            .finish()
    }
}

fn type_key(t: IndexType) -> &'static str {
    match t {
        IndexType::Value => "value",
        IndexType::Count => "count",
        IndexType::CountUpdates => "count_updates",
        IndexType::CountNonNull => "count_non_null",
        IndexType::Sum => "sum",
        IndexType::MaxEver => "max_ever",
        IndexType::MinEver => "min_ever",
        IndexType::Version => "version",
        IndexType::Rank => "rank",
        IndexType::Text => "text",
        IndexType::Custom => "custom",
    }
}

impl Default for IndexRegistry {
    fn default() -> Self {
        let mut builtin: BTreeMap<&'static str, Arc<dyn IndexMaintainer>> = BTreeMap::new();
        builtin.insert("value", Arc::new(value::ValueIndexMaintainer));
        builtin.insert(
            "count",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::Count)),
        );
        builtin.insert(
            "count_updates",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::CountUpdates)),
        );
        builtin.insert(
            "count_non_null",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::CountNonNull)),
        );
        builtin.insert(
            "sum",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::Sum)),
        );
        builtin.insert(
            "max_ever",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::MaxEver)),
        );
        builtin.insert(
            "min_ever",
            Arc::new(atomic::AtomicIndexMaintainer::new(IndexType::MinEver)),
        );
        builtin.insert("version", Arc::new(version::VersionIndexMaintainer));
        builtin.insert("rank", Arc::new(rank::RankIndexMaintainer));
        builtin.insert("text", Arc::new(text::TextIndexMaintainer));
        IndexRegistry {
            builtin,
            custom: BTreeMap::new(),
        }
    }
}

impl IndexRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a client-defined maintainer under a custom type name.
    pub fn register_custom(
        &mut self,
        name: impl Into<String>,
        maintainer: Arc<dyn IndexMaintainer>,
    ) {
        self.custom.insert(name.into(), maintainer);
    }

    /// Resolve the maintainer for an index definition.
    pub fn maintainer(&self, index: &Index) -> Result<Arc<dyn IndexMaintainer>> {
        if index.index_type == IndexType::Custom {
            return self
                .custom
                .get(&index.options.custom_type)
                .cloned()
                .ok_or_else(|| {
                    Error::MetaData(format!(
                        "no registered maintainer for custom index type {:?}",
                        index.options.custom_type
                    ))
                });
        }
        self.builtin
            .get(type_key(index.index_type))
            .cloned()
            .ok_or_else(|| Error::MetaData(format!("no maintainer for {:?}", index.index_type)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::KeyExpression;

    #[test]
    fn state_bytes_roundtrip() {
        for s in [
            IndexState::Disabled,
            IndexState::WriteOnly,
            IndexState::Readable,
        ] {
            assert_eq!(IndexState::from_byte(s.to_byte()).unwrap(), s);
        }
        assert!(IndexState::from_byte(9).is_err());
    }

    #[test]
    fn state_maintenance_rules() {
        assert!(!IndexState::Disabled.is_maintained());
        assert!(IndexState::WriteOnly.is_maintained());
        assert!(IndexState::Readable.is_maintained());
    }

    #[test]
    fn registry_resolves_builtins() {
        let reg = IndexRegistry::new();
        for t in [
            IndexType::Value,
            IndexType::Count,
            IndexType::Sum,
            IndexType::Version,
            IndexType::Rank,
            IndexType::Text,
        ] {
            let idx = Index::new("i", t, KeyExpression::field("f").group_by(0));
            assert!(reg.maintainer(&idx).is_ok(), "missing maintainer for {t:?}");
        }
    }

    #[test]
    fn registry_rejects_unregistered_custom() {
        let reg = IndexRegistry::new();
        let mut idx = Index::new("i", IndexType::Custom, KeyExpression::field("f"));
        idx.options.custom_type = "geo".into();
        assert!(reg.maintainer(&idx).is_err());
    }

    #[test]
    fn index_entry_split() {
        let index = Index::value(
            "i",
            KeyExpression::field("k").with_value(KeyExpression::field("v")),
        );
        let tuples = vec![Tuple::from(("key1", "val1"))];
        let pk = Tuple::from((7i64,));
        let entries = to_index_entries(&index, tuples, &pk);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, Tuple::from(("key1",)));
        assert_eq!(entries[0].value, Tuple::from(("val1",)));
        assert_eq!(entries[0].primary_key, pk);
    }
}
