//! TEXT indexes (Appendix B): a transactional inverted index.
//!
//! Logically the index is an ordered list of maps: token → (primary key →
//! offsets of the token within the field). Physically, neighbouring
//! postings are *bunched* so one key-value pair holds up to
//! `text_bunch_size` primary keys, amortizing the per-key prefix overhead
//! (Table 2 quantifies the savings):
//!
//! ```text
//! (prefix, token1, pk1) -> [offsets1, pk2, offsets2]
//! (prefix, token2, pk3) -> [offsets3]
//! ```
//!
//! Insertion reads at most two key-value pairs and writes at most two;
//! deletion reads and writes one — the access-locality property the paper
//! calls out. FoundationDB's key order gives token *prefix* matching with
//! no extra storage, and per-posting offset lists support phrase and
//! proximity search.

use std::collections::BTreeMap;

use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::{RangeOptions, Transaction};

use crate::error::{Error, Result};
use crate::index::{evaluate_index_expr, IndexContext, IndexMaintainer};
use crate::query::TextComparison;
use crate::store::{RecordStore, StoredRecord};

// ------------------------------------------------------------- tokenizers

/// Splits text into tokens whose list positions are the stored offsets.
pub trait Tokenizer: Send + Sync {
    fn name(&self) -> &str;
    fn tokenize(&self, text: &str) -> Vec<String>;
}

/// Lower-cases and splits on non-alphanumeric characters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceTokenizer;

impl WhitespaceTokenizer {
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|s| !s.is_empty())
            .map(str::to_lowercase)
            .collect()
    }
}

impl Tokenizer for WhitespaceTokenizer {
    fn name(&self) -> &str {
        "whitespace"
    }

    fn tokenize(&self, text: &str) -> Vec<String> {
        WhitespaceTokenizer::tokenize(self, text)
    }
}

/// Produces the n-grams of each whitespace token, supporting substring-ish
/// search with only n key entries per word instead of O(n²) (§8.1).
#[derive(Debug, Clone, Copy)]
pub struct NgramTokenizer {
    pub n: usize,
}

impl NgramTokenizer {
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for word in WhitespaceTokenizer.tokenize(text) {
            let chars: Vec<char> = word.chars().collect();
            if chars.len() <= self.n {
                out.push(word);
            } else {
                for w in chars.windows(self.n) {
                    out.push(w.iter().collect());
                }
            }
        }
        out
    }
}

impl Tokenizer for NgramTokenizer {
    fn name(&self) -> &str {
        "ngram"
    }

    fn tokenize(&self, text: &str) -> Vec<String> {
        NgramTokenizer::tokenize(self, text)
    }
}

fn tokenizer_for(index: &crate::metadata::Index) -> Box<dyn Tokenizer> {
    match index.options.text_tokenizer.as_str() {
        "ngram" => Box::new(NgramTokenizer {
            n: index.options.ngram_size,
        }),
        _ => Box::new(WhitespaceTokenizer),
    }
}

/// Token → offsets for one document.
pub fn token_positions(tokenizer: &dyn Tokenizer, text: &str) -> BTreeMap<String, Vec<i64>> {
    let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for (i, tok) in tokenizer.tokenize(text).into_iter().enumerate() {
        map.entry(tok).or_default().push(i as i64);
    }
    map
}

// ------------------------------------------------------------ bunched map

/// One posting: a primary key and the token's offsets in that record.
pub type Posting = (Tuple, Vec<i64>);

/// The durable bunched map for one TEXT index.
pub struct BunchedMap<'a> {
    tx: &'a Transaction,
    subspace: Subspace,
    bunch_size: usize,
}

fn offsets_to_element(offsets: &[i64]) -> TupleElement {
    TupleElement::Tuple(Tuple::from_elements(
        offsets.iter().map(|o| TupleElement::Int(*o)).collect(),
    ))
}

fn element_to_offsets(el: &TupleElement) -> Result<Vec<i64>> {
    let t = el
        .as_tuple()
        .ok_or_else(|| Error::Serialization("bad offsets element in text index".into()))?;
    t.elements()
        .iter()
        .map(|e| {
            e.as_int()
                .ok_or_else(|| Error::Serialization("non-integer offset".into()))
        })
        .collect()
}

impl<'a> BunchedMap<'a> {
    pub fn new(tx: &'a Transaction, subspace: Subspace, bunch_size: usize) -> Self {
        assert!(bunch_size >= 1);
        BunchedMap {
            tx,
            subspace,
            bunch_size,
        }
    }

    fn entry_key(&self, token: &str, pk: &Tuple) -> Vec<u8> {
        self.subspace
            .pack(&Tuple::new().push(token).push(pk.clone()))
    }

    /// Decode a bunch value given the key's own pk.
    fn decode_bunch(&self, key_pk: Tuple, value: &[u8]) -> Result<Vec<Posting>> {
        let t = Tuple::unpack(value).map_err(Error::Fdb)?;
        let els = t.elements();
        if els.is_empty() {
            return Err(Error::Serialization("empty text bunch".into()));
        }
        let mut out = vec![(key_pk, element_to_offsets(&els[0])?)];
        let mut i = 1;
        while i < els.len() {
            let pk = els[i]
                .as_tuple()
                .ok_or_else(|| Error::Serialization("bad pk element in bunch".into()))?
                .clone();
            let offsets = element_to_offsets(
                els.get(i + 1)
                    .ok_or_else(|| Error::Serialization("dangling pk in bunch".into()))?,
            )?;
            out.push((pk, offsets));
            i += 2;
        }
        Ok(out)
    }

    fn encode_bunch(&self, postings: &[Posting]) -> Vec<u8> {
        let mut t = Tuple::new();
        t.add(offsets_to_element(&postings[0].1));
        for (pk, offsets) in &postings[1..] {
            t.add(pk.clone());
            t.add(offsets_to_element(offsets));
        }
        t.pack()
    }

    fn write_bunch(&self, token: &str, postings: &[Posting]) -> Result<()> {
        debug_assert!(!postings.is_empty());
        let key = self.entry_key(token, &postings[0].0);
        self.tx.try_set(&key, &self.encode_bunch(postings))?;
        Ok(())
    }

    /// Parse an index key into (token, pk).
    fn parse_key(&self, key: &[u8]) -> Result<(String, Tuple)> {
        let t = self.subspace.unpack(key).map_err(Error::Fdb)?;
        let token = t
            .get(0)
            .and_then(TupleElement::as_str)
            .ok_or_else(|| Error::Serialization("bad text index key".into()))?
            .to_string();
        let pk = t
            .get(1)
            .and_then(TupleElement::as_tuple)
            .ok_or_else(|| Error::Serialization("bad text index pk".into()))?
            .clone();
        Ok((token, pk))
    }

    /// Find the bunch whose key is the biggest `<= (token, pk)` and still
    /// for `token`. Returns (key_pk, postings).
    fn bunch_at_or_before(&self, token: &str, pk: &Tuple) -> Result<Option<(Tuple, Vec<Posting>)>> {
        let token_start = self.subspace.pack(&Tuple::new().push(token));
        let end = rl_fdb::key_after(&self.entry_key(token, pk));
        let kvs = self.tx.get_range(
            &token_start,
            &end,
            RangeOptions::new().limit(1).reverse(true),
        )?;
        match kvs.into_iter().next() {
            None => Ok(None),
            Some(kv) => {
                let (t, key_pk) = self.parse_key(&kv.key)?;
                debug_assert_eq!(t, token);
                let postings = self.decode_bunch(key_pk.clone(), &kv.value)?;
                Ok(Some((key_pk, postings)))
            }
        }
    }

    /// The first bunch with key strictly greater than `(token, pk)`, still
    /// for `token`.
    fn bunch_after(&self, token: &str, pk: &Tuple) -> Result<Option<(Tuple, Vec<Posting>)>> {
        let begin = rl_fdb::key_after(&self.entry_key(token, pk));
        let (_, token_end) = self.subspace.subspace(&Tuple::new().push(token)).range();
        let kvs = self
            .tx
            .get_range(&begin, &token_end, RangeOptions::new().limit(1))?;
        match kvs.into_iter().next() {
            None => Ok(None),
            Some(kv) => {
                let (_, key_pk) = self.parse_key(&kv.key)?;
                let postings = self.decode_bunch(key_pk.clone(), &kv.value)?;
                Ok(Some((key_pk, postings)))
            }
        }
    }

    /// Insert (or update) the posting for `(token, pk)` — the Appendix B
    /// insertion algorithm.
    pub fn insert(&self, token: &str, pk: &Tuple, offsets: &[i64]) -> Result<()> {
        match self.bunch_at_or_before(token, pk)? {
            Some((key_pk, mut postings)) => {
                match postings.iter_mut().find(|(p, _)| p == pk) {
                    Some(existing) => {
                        // Update in place.
                        existing.1 = offsets.to_vec();
                        self.write_bunch(token, &postings)?;
                    }
                    None => {
                        let at = postings.partition_point(|(p, _)| p < pk);
                        postings.insert(at, (pk.clone(), offsets.to_vec()));
                        if postings.len() <= self.bunch_size {
                            self.write_bunch(token, &postings)?;
                        } else {
                            // Overflow: evict the biggest pk to its own key,
                            // then try merging with the following bunch.
                            let evicted = postings.pop().unwrap();
                            self.write_bunch(token, &postings)?;
                            let mut new_bunch = vec![evicted];
                            if let Some((next_pk, next_postings)) =
                                self.bunch_after(token, &key_pk)?
                            {
                                if new_bunch.len() + next_postings.len() <= self.bunch_size {
                                    self.tx.clear(&self.entry_key(token, &next_pk));
                                    new_bunch.extend(next_postings);
                                }
                            }
                            self.write_bunch(token, &new_bunch)?;
                        }
                    }
                }
            }
            None => {
                // pk precedes every existing bunch for this token (or the
                // token is new): absorb the following bunch when it fits.
                let mut postings = vec![(pk.clone(), offsets.to_vec())];
                if let Some((next_pk, next_postings)) = self.bunch_after(token, pk)? {
                    if next_postings.len() < self.bunch_size {
                        self.tx.clear(&self.entry_key(token, &next_pk));
                        postings.extend(next_postings);
                    }
                }
                self.write_bunch(token, &postings)?;
            }
        }
        Ok(())
    }

    /// Remove the posting for `(token, pk)` — reads and writes a single
    /// key-value pair (Appendix B).
    pub fn remove(&self, token: &str, pk: &Tuple) -> Result<bool> {
        let Some((key_pk, mut postings)) = self.bunch_at_or_before(token, pk)? else {
            return Ok(false);
        };
        let Some(at) = postings.iter().position(|(p, _)| p == pk) else {
            return Ok(false);
        };
        postings.remove(at);
        let old_key = self.entry_key(token, &key_pk);
        if postings.is_empty() {
            self.tx.clear(&old_key);
        } else if key_pk == *pk {
            // The bunch is re-keyed under its new first primary key.
            self.tx.clear(&old_key);
            self.write_bunch(token, &postings)?;
        } else {
            self.write_bunch(token, &postings)?;
        }
        Ok(true)
    }

    /// All postings for one token, in primary-key order.
    pub fn scan_token(&self, token: &str) -> Result<Vec<Posting>> {
        let sub = self.subspace.subspace(&Tuple::new().push(token));
        let (begin, end) = sub.range_inclusive();
        let mut out = Vec::new();
        for kv in self.tx.get_range(&begin, &end, RangeOptions::default())? {
            let (_, key_pk) = self.parse_key(&kv.key)?;
            out.extend(self.decode_bunch(key_pk, &kv.value)?);
        }
        Ok(out)
    }

    /// All `(token, posting)` pairs for tokens starting with `prefix` —
    /// a single range read thanks to key ordering (§8.1: "prefix matching
    /// with no additional overhead").
    pub fn scan_prefix(&self, prefix: &str) -> Result<Vec<(String, Posting)>> {
        // A packed string is 0x02 ‖ bytes ‖ 0x00; stripping the terminator
        // leaves the prefix of every longer token's encoding.
        let mut begin = self.subspace.pack(&Tuple::new().push(prefix));
        begin.pop();
        let mut end = begin.clone();
        end.push(0xFF);
        let mut out = Vec::new();
        for kv in self.tx.get_range(&begin, &end, RangeOptions::default())? {
            let (token, key_pk) = self.parse_key(&kv.key)?;
            for posting in self.decode_bunch(key_pk, &kv.value)? {
                out.push((token.clone(), posting));
            }
        }
        Ok(out)
    }

    /// Storage statistics (drives the Table 2 experiment).
    pub fn stats(&self) -> Result<TextIndexStats> {
        let (begin, end) = self.subspace.range_inclusive();
        let kvs = self.tx.get_range(&begin, &end, RangeOptions::default())?;
        let mut stats = TextIndexStats {
            index_keys: kvs.len(),
            ..Default::default()
        };
        for kv in &kvs {
            stats.key_bytes += kv.key.len();
            stats.value_bytes += kv.value.len();
            let (_, key_pk) = self.parse_key(&kv.key)?;
            stats.postings += self.decode_bunch(key_pk, &kv.value)?.len();
        }
        Ok(stats)
    }
}

/// Size accounting for a TEXT index.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TextIndexStats {
    pub index_keys: usize,
    pub key_bytes: usize,
    pub value_bytes: usize,
    pub postings: usize,
}

impl TextIndexStats {
    pub fn total_bytes(&self) -> usize {
        self.key_bytes + self.value_bytes
    }

    pub fn average_bunch_size(&self) -> f64 {
        if self.index_keys == 0 {
            0.0
        } else {
            self.postings as f64 / self.index_keys as f64
        }
    }
}

// ------------------------------------------------------------- maintainer

pub struct TextIndexMaintainer;

fn text_of(index: &crate::metadata::Index, record: &StoredRecord) -> Result<Option<String>> {
    let tuples = evaluate_index_expr(index, record)?;
    match tuples.first() {
        None => Ok(None),
        Some(t) => match t.get(t.len().saturating_sub(1)) {
            Some(TupleElement::String(s)) => Ok(Some(s.clone())),
            Some(TupleElement::Null) | None => Ok(None),
            Some(other) => Err(Error::KeyExpression(format!(
                "TEXT index {} must target a string field, got {other:?}",
                index.name
            ))),
        },
    }
}

impl IndexMaintainer for TextIndexMaintainer {
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64> {
        let tokenizer = tokenizer_for(ctx.index);
        let map = BunchedMap::new(
            ctx.tx,
            ctx.subspace.clone(),
            ctx.index.options.text_bunch_size,
        );

        let old_text = old.map(|r| text_of(ctx.index, r)).transpose()?.flatten();
        let new_text = new.map(|r| text_of(ctx.index, r)).transpose()?.flatten();
        if old.is_some() && new.is_some() && old_text == new_text {
            return Ok(0); // unchanged text: no index work (§6 optimization)
        }

        // Entry count for TEXT = number of (token, record) postings.
        let mut delta = 0i64;
        if let (Some(old_rec), Some(text)) = (old, &old_text) {
            for token in token_positions(tokenizer.as_ref(), text).keys() {
                map.remove(token, &old_rec.primary_key)?;
                delta -= 1;
            }
        }
        if let (Some(new_rec), Some(text)) = (new, &new_text) {
            for (token, offsets) in token_positions(tokenizer.as_ref(), text) {
                map.insert(&token, &new_rec.primary_key, &offsets)?;
                delta += 1;
            }
        }
        Ok(delta)
    }
}

// ------------------------------------------------------------ search API

impl<'a> RecordStore<'a> {
    /// The bunched map underlying a TEXT index.
    pub fn text_index_map(&self, index_name: &str) -> Result<BunchedMap<'a>> {
        let index = self.require_readable(index_name)?;
        Ok(BunchedMap::new(
            self.transaction(),
            self.index_subspace(index),
            index.options.text_bunch_size,
        ))
    }

    /// Storage statistics for a TEXT index (Table 2).
    pub fn text_index_stats(&self, index_name: &str) -> Result<TextIndexStats> {
        self.text_index_map(index_name)?.stats()
    }

    /// Evaluate a full-text comparison against a TEXT index, returning
    /// matching primary keys in order.
    pub fn text_search(&self, index_name: &str, cmp: &TextComparison) -> Result<Vec<Tuple>> {
        let map = self.text_index_map(index_name)?;
        match cmp {
            TextComparison::ContainsAny(tokens) => {
                let mut pks: Vec<Tuple> = Vec::new();
                for token in tokens {
                    for (pk, _) in map.scan_token(&token.to_lowercase())? {
                        if !pks.contains(&pk) {
                            pks.push(pk);
                        }
                    }
                }
                pks.sort();
                Ok(pks)
            }
            TextComparison::ContainsAll(tokens) => Ok(intersect_postings(&map, tokens)?
                .into_iter()
                .map(|(pk, _)| pk)
                .collect()),
            TextComparison::ContainsPrefix(prefix) => {
                let mut pks: Vec<Tuple> = Vec::new();
                for (_, (pk, _)) in map.scan_prefix(&prefix.to_lowercase())? {
                    if !pks.contains(&pk) {
                        pks.push(pk);
                    }
                }
                pks.sort();
                Ok(pks)
            }
            TextComparison::ContainsPhrase(tokens) => {
                let matches = intersect_postings(&map, tokens)?;
                Ok(matches
                    .into_iter()
                    .filter(|(_, per_token_offsets)| {
                        // token i+1 must appear at offset(token i) + 1.
                        per_token_offsets[0].iter().any(|&start| {
                            per_token_offsets
                                .iter()
                                .enumerate()
                                .all(|(i, offs)| offs.contains(&(start + i as i64)))
                        })
                    })
                    .map(|(pk, _)| pk)
                    .collect())
            }
            TextComparison::ContainsAllWithin {
                tokens,
                max_distance,
            } => {
                let matches = intersect_postings(&map, tokens)?;
                Ok(matches
                    .into_iter()
                    .filter(|(_, per_token_offsets)| {
                        per_token_offsets[0].iter().any(|&anchor| {
                            per_token_offsets[1..].iter().all(|offs| {
                                offs.iter()
                                    .any(|&o| o.abs_diff(anchor) <= *max_distance as u64)
                            })
                        })
                    })
                    .map(|(pk, _)| pk)
                    .collect())
            }
        }
    }
}

/// Intersect postings of several tokens: pk → per-token offset lists, for
/// pks containing *all* tokens.
fn intersect_postings(
    map: &BunchedMap<'_>,
    tokens: &[String],
) -> Result<Vec<(Tuple, Vec<Vec<i64>>)>> {
    if tokens.is_empty() {
        return Ok(Vec::new());
    }
    let mut acc: BTreeMap<Tuple, Vec<Vec<i64>>> = map
        .scan_token(&tokens[0].to_lowercase())?
        .into_iter()
        .map(|(pk, offs)| (pk, vec![offs]))
        .collect();
    for token in &tokens[1..] {
        let postings: BTreeMap<Tuple, Vec<i64>> =
            map.scan_token(&token.to_lowercase())?.into_iter().collect();
        acc.retain(|pk, _| postings.contains_key(pk));
        for (pk, lists) in acc.iter_mut() {
            lists.push(postings[pk].clone());
        }
    }
    Ok(acc.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_fdb::Database;

    #[test]
    fn whitespace_tokenizer_normalizes() {
        let toks = WhitespaceTokenizer.tokenize("Call me Ishmael. Some years—ago");
        assert_eq!(toks, vec!["call", "me", "ishmael", "some", "years", "ago"]);
    }

    #[test]
    fn ngram_tokenizer_windows() {
        let toks = NgramTokenizer { n: 3 }.tokenize("whale");
        assert_eq!(toks, vec!["wha", "hal", "ale"]);
        // Short words survive whole.
        assert_eq!(NgramTokenizer { n: 3 }.tokenize("ox"), vec!["ox"]);
    }

    #[test]
    fn token_positions_collects_offsets() {
        let map = token_positions(&WhitespaceTokenizer, "to be or not to be");
        assert_eq!(map["to"], vec![0, 4]);
        assert_eq!(map["be"], vec![1, 5]);
        assert_eq!(map["or"], vec![2]);
    }

    fn with_map(bunch: usize, f: impl Fn(&BunchedMap<'_>)) {
        let db = Database::new();
        let tx = db.create_transaction();
        let map = BunchedMap::new(&tx, Subspace::from_bytes(b"T".to_vec()), bunch);
        f(&map);
    }

    fn pk(i: i64) -> Tuple {
        Tuple::from((i,))
    }

    #[test]
    fn insert_and_scan_single_token() {
        with_map(2, |map| {
            map.insert("whale", &pk(3), &[1, 5]).unwrap();
            map.insert("whale", &pk(1), &[0]).unwrap();
            map.insert("whale", &pk(2), &[7]).unwrap();
            let postings = map.scan_token("whale").unwrap();
            assert_eq!(
                postings,
                vec![(pk(1), vec![0]), (pk(2), vec![7]), (pk(3), vec![1, 5])]
            );
        });
    }

    #[test]
    fn bunching_respects_max_size() {
        with_map(2, |map| {
            for i in 0..7 {
                map.insert("tok", &pk(i), &[i]).unwrap();
            }
            let stats = map.stats().unwrap();
            assert_eq!(stats.postings, 7);
            // With bunch size 2 we need at least ceil(7/2) = 4 keys.
            assert!(stats.index_keys >= 4, "keys = {}", stats.index_keys);
            assert!(stats.index_keys < 7, "bunching must reduce key count");
            // Scan returns everything in order regardless of bunching.
            let postings = map.scan_token("tok").unwrap();
            let pks: Vec<i64> = postings
                .iter()
                .map(|(p, _)| p.get(0).unwrap().as_int().unwrap())
                .collect();
            assert_eq!(pks, vec![0, 1, 2, 3, 4, 5, 6]);
        });
    }

    #[test]
    fn insert_before_existing_bunch_prepends() {
        with_map(4, |map| {
            map.insert("t", &pk(10), &[0]).unwrap();
            map.insert("t", &pk(5), &[1]).unwrap(); // smaller pk: new first key
            let postings = map.scan_token("t").unwrap();
            assert_eq!(postings[0].0, pk(5));
            // Should have merged into one bunch.
            assert_eq!(map.stats().unwrap().index_keys, 1);
        });
    }

    #[test]
    fn update_existing_posting_replaces_offsets() {
        with_map(4, |map| {
            map.insert("t", &pk(1), &[0]).unwrap();
            map.insert("t", &pk(1), &[3, 4]).unwrap();
            let postings = map.scan_token("t").unwrap();
            assert_eq!(postings, vec![(pk(1), vec![3, 4])]);
        });
    }

    #[test]
    fn remove_from_bunch_variants() {
        with_map(3, |map| {
            for i in 0..3 {
                map.insert("t", &pk(i), &[i]).unwrap();
            }
            // Remove a non-key member.
            assert!(map.remove("t", &pk(1)).unwrap());
            let postings = map.scan_token("t").unwrap();
            assert_eq!(postings.len(), 2);
            // Remove the key member: bunch re-keys under next pk.
            assert!(map.remove("t", &pk(0)).unwrap());
            let postings = map.scan_token("t").unwrap();
            assert_eq!(postings, vec![(pk(2), vec![2])]);
            // Remove the last member: key disappears.
            assert!(map.remove("t", &pk(2)).unwrap());
            assert!(map.scan_token("t").unwrap().is_empty());
            assert_eq!(map.stats().unwrap().index_keys, 0);
            // Removing absent postings is a no-op.
            assert!(!map.remove("t", &pk(9)).unwrap());
        });
    }

    #[test]
    fn prefix_scan_uses_key_order() {
        with_map(4, |map| {
            map.insert("whale", &pk(1), &[0]).unwrap();
            map.insert("whaling", &pk(2), &[0]).unwrap();
            map.insert("wharf", &pk(3), &[0]).unwrap();
            map.insert("ocean", &pk(4), &[0]).unwrap();
            let hits = map.scan_prefix("whal").unwrap();
            let tokens: Vec<&str> = hits.iter().map(|(t, _)| t.as_str()).collect();
            assert_eq!(tokens, vec!["whale", "whaling"]);
        });
    }

    #[test]
    fn postings_survive_many_inserts_and_removals() {
        with_map(5, |map| {
            for i in 0..40 {
                map.insert("t", &pk(i), &[i]).unwrap();
            }
            for i in (0..40).step_by(3) {
                assert!(map.remove("t", &pk(i)).unwrap());
            }
            let postings = map.scan_token("t").unwrap();
            let expect: Vec<i64> = (0..40).filter(|i| i % 3 != 0).collect();
            let got: Vec<i64> = postings
                .iter()
                .map(|(p, _)| p.get(0).unwrap().as_int().unwrap())
                .collect();
            assert_eq!(got, expect);
        });
    }
}
