//! RANK indexes (Appendix B): efficient access to records by ordinal rank
//! and, conversely, the rank of a value — a probabilistic augmented
//! skip list persisted in the key-value store.
//!
//! Layout mirrors Figure 5: the index subspace has one child per level
//! (`prefix/0` … `prefix/L-1`); each key-value pair at level `l` maps an
//! entry tuple to the number of set elements in `[entry, next-entry-at-l)`.
//! Level 0 contains every entry with count 1; each higher level samples the
//! one below it. An implicit *begin sentinel* (the empty tuple) anchors
//! every level so a predecessor always exists.
//!
//! Per §10.1, navigation uses snapshot reads plus targeted conflict keys:
//! counts on non-member levels are bumped with atomic ADD (conflict-free),
//! so only level-membership splits create read-modify-write conflicts.

use std::hash::{Hash, Hasher};

use rl_fdb::atomic::MutationType;
use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::Tuple;
use rl_fdb::{RangeOptions, Transaction};

use crate::error::{Error, Result};
use crate::index::{evaluate_index_expr, to_index_entries, IndexContext, IndexMaintainer};
use crate::store::{RecordStore, StoredRecord, TupleRange};

/// Child subspace holding plain VALUE-style entries (scans by score).
const ENTRIES: i64 = 0;
/// Child subspace holding the skip-list levels.
const LEVELS: i64 = 1;

/// Sampling: an entry is a member of level `l >= 1` with probability
/// `FAN^-l`, decided by a deterministic hash so inserts and erases agree.
const FAN: u64 = 8;

pub struct RankIndexMaintainer;

/// A durable ordered set with O(log n) rank/select, usable on its own.
pub struct RankedSet<'a> {
    tx: &'a Transaction,
    subspace: Subspace,
    nlevels: usize,
}

fn le_count(bytes: &[u8]) -> i64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    i64::from_le_bytes(buf)
}

impl<'a> RankedSet<'a> {
    pub fn new(tx: &'a Transaction, subspace: Subspace, nlevels: usize) -> Self {
        assert!(nlevels >= 2, "a ranked set needs at least 2 levels");
        RankedSet {
            tx,
            subspace,
            nlevels,
        }
    }

    fn level_subspace(&self, level: usize) -> Subspace {
        self.subspace.child(level as i64)
    }

    fn entry_key(&self, level: usize, entry: &Tuple) -> Vec<u8> {
        self.level_subspace(level).pack(entry)
    }

    /// The begin sentinel packs as the bare level prefix (empty tuple).
    fn sentinel_key(&self, level: usize) -> Vec<u8> {
        self.level_subspace(level).prefix().to_vec()
    }

    /// Deterministic membership: which levels contain `entry`.
    fn height(&self, entry: &Tuple) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        entry.pack().hash(&mut hasher);
        let h = hasher.finish();
        let mut level = 0;
        let mut threshold = FAN;
        while level + 1 < self.nlevels && h.is_multiple_of(threshold) {
            level += 1;
            threshold = threshold.saturating_mul(FAN);
        }
        level
    }

    fn read_count(&self, key: &[u8]) -> Result<Option<i64>> {
        Ok(self.tx.get_snapshot(key)?.map(|v| le_count(&v)))
    }

    /// Last entry key at `level` with key `<= bound_key` (the predecessor
    /// finger), falling back to the sentinel.
    fn predecessor_key(&self, level: usize, bound_key: &[u8]) -> Result<Vec<u8>> {
        let begin = self.sentinel_key(level);
        let end = rl_fdb::key_after(bound_key);
        let kvs =
            self.tx
                .get_range_snapshot(&begin, &end, RangeOptions::new().limit(1).reverse(true))?;
        Ok(kvs.into_iter().next().map(|kv| kv.key).unwrap_or(begin))
    }

    /// Sum of counts of entries at `level` in `[from_key, to_key)`.
    fn count_range(&self, _level: usize, from_key: &[u8], to_key: &[u8]) -> Result<i64> {
        let kvs = self
            .tx
            .get_range_snapshot(from_key, to_key, RangeOptions::default())?;
        Ok(kvs.iter().map(|kv| le_count(&kv.value)).sum())
    }

    /// Whether the set contains `entry`.
    pub fn contains(&self, entry: &Tuple) -> Result<bool> {
        Ok(self.tx.get_snapshot(&self.entry_key(0, entry))?.is_some())
    }

    /// Ensure the sentinel exists at every level (idempotent).
    fn init(&self) -> Result<()> {
        for level in 0..self.nlevels {
            let key = self.sentinel_key(level);
            if self.tx.get_snapshot(&key)?.is_none() {
                self.tx.try_set(&key, &0i64.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Insert an entry; returns false if already present.
    pub fn insert(&self, entry: &Tuple) -> Result<bool> {
        if self.contains(entry)? {
            return Ok(false);
        }
        self.init()?;
        // The level-0 key is the distinguished key (§10.1): conflict with
        // concurrent insert/erase of the same entry, nothing else.
        self.tx.add_read_conflict_key(&self.entry_key(0, entry));

        let height = self.height(entry);
        for level in 0..self.nlevels {
            let key = self.entry_key(level, entry);
            if level == 0 {
                self.tx.try_set(&key, &1i64.to_le_bytes())?;
            } else if level <= height {
                // Member: split the predecessor's finger.
                let prev_key = self.predecessor_key(level, &key)?;
                let prev_count = self.read_count(&prev_key)?.unwrap_or(0);
                // Elements in [prev, entry): measured one level below,
                // where both prev and entry already exist.
                let prev_below = self.translate_level(&prev_key, level, level - 1)?;
                let entry_below = self.entry_key(level - 1, entry);
                let before = self.count_range(level - 1, &prev_below, &entry_below)?;
                self.tx.try_set(&prev_key, &before.to_le_bytes())?;
                self.tx
                    .try_set(&key, &(prev_count - before + 1).to_le_bytes())?;
            } else {
                // Not a member: the covering finger grows by one. Atomic
                // ADD keeps concurrent inserts conflict-free here.
                let prev_key = self.predecessor_key(level, &key)?;
                self.tx
                    .mutate(MutationType::Add, &prev_key, &1i64.to_le_bytes())?;
            }
        }
        Ok(true)
    }

    /// Re-key an entry key from one level subspace to another.
    fn translate_level(&self, key: &[u8], from: usize, to: usize) -> Result<Vec<u8>> {
        let from_sub = self.level_subspace(from);
        if key == from_sub.prefix() {
            return Ok(self.sentinel_key(to));
        }
        let t = from_sub.unpack(key).map_err(Error::Fdb)?;
        Ok(self.entry_key(to, &t))
    }

    /// Remove an entry; returns false if absent.
    pub fn erase(&self, entry: &Tuple) -> Result<bool> {
        if !self.contains(entry)? {
            return Ok(false);
        }
        self.tx.add_read_conflict_key(&self.entry_key(0, entry));
        let height = self.height(entry);
        for level in 0..self.nlevels {
            let key = self.entry_key(level, entry);
            if level == 0 {
                self.tx.clear(&key);
            } else if level <= height {
                // Member: its covered elements fold back into the
                // predecessor's finger (minus the entry itself).
                let count = self.read_count(&key)?.unwrap_or(1);
                // Predecessor strictly before the entry.
                let prev_key = {
                    let begin = self.sentinel_key(level);
                    let kvs = self.tx.get_range_snapshot(
                        &begin,
                        &key,
                        RangeOptions::new().limit(1).reverse(true),
                    )?;
                    kvs.into_iter().next().map(|kv| kv.key).unwrap_or(begin)
                };
                self.tx.clear(&key);
                self.tx
                    .mutate(MutationType::Add, &prev_key, &(count - 1).to_le_bytes())?;
            } else {
                let prev_key = self.predecessor_key(level, &key)?;
                self.tx
                    .mutate(MutationType::Add, &prev_key, &(-1i64).to_le_bytes())?;
            }
        }
        Ok(true)
    }

    /// The 0-based ordinal rank of an entry, or `None` if absent —
    /// the Figure 5(b) walk.
    pub fn rank(&self, entry: &Tuple) -> Result<Option<i64>> {
        if !self.contains(entry)? {
            return Ok(None);
        }
        let mut rank: i64 = 0;
        let top = self.nlevels - 1;
        let mut cur = self.sentinel_key(top);
        for level in (0..self.nlevels).rev() {
            if level != top {
                cur = self.translate_level(&cur, level + 1, level)?;
            }
            let target = self.entry_key(level, entry);
            // Walk fingers at this level while the next entry is <= target.
            loop {
                let next = self.tx.get_range_snapshot(
                    &rl_fdb::key_after(&cur),
                    &rl_fdb::key_after(&target),
                    RangeOptions::new().limit(1),
                )?;
                match next.into_iter().next() {
                    Some(kv) => {
                        rank += self.read_count(&cur)?.unwrap_or(0);
                        cur = kv.key;
                    }
                    None => break,
                }
            }
        }
        Ok(Some(rank))
    }

    /// The entry at 0-based `rank`, or `None` if out of bounds — the
    /// inverse walk.
    pub fn select(&self, rank: i64) -> Result<Option<Tuple>> {
        if rank < 0 {
            return Ok(None);
        }
        let mut remaining = rank;
        let top = self.nlevels - 1;
        let mut cur = self.sentinel_key(top);
        for level in (0..self.nlevels).rev() {
            if level != top {
                cur = self.translate_level(&cur, level + 1, level)?;
            }
            let (_, level_end) = self.level_subspace(level).range_inclusive();
            // Walk right along this level until the finger covers `rank`,
            // then descend; a missing count means the set is empty.
            while let Some(count) = self.read_count(&cur)? {
                if remaining < count {
                    break; // descend
                }
                let next = self.tx.get_range_snapshot(
                    &rl_fdb::key_after(&cur),
                    &level_end,
                    RangeOptions::new().limit(1),
                )?;
                match next.into_iter().next() {
                    Some(kv) => {
                        remaining -= count;
                        cur = kv.key;
                    }
                    None => return Ok(None), // rank beyond the set
                }
            }
        }
        if cur == self.sentinel_key(0) {
            return Ok(None);
        }
        let t = self.level_subspace(0).unpack(&cur).map_err(Error::Fdb)?;
        Ok(Some(t))
    }

    /// Total number of entries.
    pub fn len(&self) -> Result<i64> {
        let top = self.nlevels - 1;
        let (begin, end) = self.level_subspace(top).range_inclusive();
        self.count_range(top, &begin, &end)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

impl IndexMaintainer for RankIndexMaintainer {
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64> {
        let nlevels = ctx.index.options.rank_levels;
        let entries_sub = ctx.subspace.child(ENTRIES);
        let set = RankedSet::new(ctx.tx, ctx.subspace.child(LEVELS), nlevels);

        let old_entries = old
            .map(|r| {
                evaluate_index_expr(ctx.index, r)
                    .map(|t| to_index_entries(ctx.index, t, &r.primary_key))
            })
            .transpose()?
            .unwrap_or_default();
        let new_entries = new
            .map(|r| {
                evaluate_index_expr(ctx.index, r)
                    .map(|t| to_index_entries(ctx.index, t, &r.primary_key))
            })
            .transpose()?
            .unwrap_or_default();

        let mut delta = 0i64;
        for e in &old_entries {
            if new_entries.contains(e) {
                continue;
            }
            let full = e.key.clone().concat(&e.primary_key);
            ctx.tx.clear(&entries_sub.pack(&full));
            set.erase(&full)?;
            delta -= 1;
        }
        for e in &new_entries {
            if old_entries.contains(e) {
                continue;
            }
            let full = e.key.clone().concat(&e.primary_key);
            ctx.tx.try_set(&entries_sub.pack(&full), &[])?;
            set.insert(&full)?;
            delta += 1;
        }
        Ok(delta)
    }
}

impl<'a> RecordStore<'a> {
    /// The ranked set underlying a RANK index.
    pub fn ranked_set(&self, index_name: &str) -> Result<RankedSet<'a>> {
        let index = self.require_readable(index_name)?;
        Ok(RankedSet::new(
            self.transaction(),
            self.index_subspace(index).child(LEVELS),
            index.options.rank_levels,
        ))
    }

    /// 0-based rank of `entry` (score columns ⧺ primary key) in a RANK
    /// index, or `None` when absent.
    pub fn rank_of(&self, index_name: &str, entry: &Tuple) -> Result<Option<i64>> {
        self.ranked_set(index_name)?.rank(entry)
    }

    /// The entry (score columns ⧺ primary key) at `rank` in a RANK index.
    pub fn entry_at_rank(&self, index_name: &str, rank: i64) -> Result<Option<Tuple>> {
        self.ranked_set(index_name)?.select(rank)
    }

    /// Number of entries in a RANK index.
    pub fn rank_count(&self, index_name: &str) -> Result<i64> {
        self.ranked_set(index_name)?.len()
    }

    /// Scan a RANK index's plain entries by score range (like a VALUE
    /// index scan), returning `(score…, pk…)` tuples in order.
    pub fn scan_rank_entries(&self, index_name: &str, range: &TupleRange) -> Result<Vec<Tuple>> {
        let index = self.require_readable(index_name)?;
        let sub = self.index_subspace(index).child(ENTRIES);
        let (begin, end) = range.to_byte_range(&sub);
        let kvs = self
            .transaction()
            .get_range(&begin, &end, RangeOptions::default())?;
        kvs.iter()
            .map(|kv| sub.unpack(&kv.key).map_err(Error::Fdb))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_fdb::Database;

    fn with_set(f: impl Fn(&RankedSet<'_>)) {
        let db = Database::new();
        let tx = db.create_transaction();
        let set = RankedSet::new(&tx, Subspace::from_bytes(b"R".to_vec()), 4);
        f(&set);
    }

    #[test]
    fn insert_contains_erase() {
        with_set(|set| {
            let e = Tuple::from((5i64, "pk"));
            assert!(!set.contains(&e).unwrap());
            assert!(set.insert(&e).unwrap());
            assert!(set.contains(&e).unwrap());
            assert!(!set.insert(&e).unwrap(), "duplicate insert must be a no-op");
            assert!(set.erase(&e).unwrap());
            assert!(!set.contains(&e).unwrap());
            assert!(!set.erase(&e).unwrap());
        });
    }

    #[test]
    fn figure5_rank_semantics() {
        // Six elements; rank of the 5th (0-based 4) must be 4 regardless of
        // which levels sampled what.
        with_set(|set| {
            for s in ["a", "b", "c", "d", "e", "f"] {
                set.insert(&Tuple::from((s,))).unwrap();
            }
            assert_eq!(set.rank(&Tuple::from(("e",))).unwrap(), Some(4));
            assert_eq!(set.rank(&Tuple::from(("a",))).unwrap(), Some(0));
            assert_eq!(set.rank(&Tuple::from(("f",))).unwrap(), Some(5));
            assert_eq!(set.rank(&Tuple::from(("zz",))).unwrap(), None);
            assert_eq!(set.len().unwrap(), 6);
        });
    }

    #[test]
    fn rank_and_select_inverse_on_random_data() {
        with_set(|set| {
            let mut values: Vec<i64> = (0..200).map(|i| (i * 37) % 1000).collect();
            values.sort_unstable();
            values.dedup();
            for v in &values {
                set.insert(&Tuple::from((*v,))).unwrap();
            }
            assert_eq!(set.len().unwrap(), values.len() as i64);
            for (expected_rank, v) in values.iter().enumerate() {
                let t = Tuple::from((*v,));
                assert_eq!(
                    set.rank(&t).unwrap(),
                    Some(expected_rank as i64),
                    "rank of {v}"
                );
                assert_eq!(
                    set.select(expected_rank as i64).unwrap(),
                    Some(t),
                    "select({expected_rank})"
                );
            }
            assert_eq!(set.select(values.len() as i64).unwrap(), None);
            assert_eq!(set.select(-1).unwrap(), None);
        });
    }

    #[test]
    fn ranks_stay_consistent_under_deletions() {
        with_set(|set| {
            for v in 0..100i64 {
                set.insert(&Tuple::from((v,))).unwrap();
            }
            // Delete the even values.
            for v in (0..100i64).step_by(2) {
                set.erase(&Tuple::from((v,))).unwrap();
            }
            assert_eq!(set.len().unwrap(), 50);
            for (i, v) in (1..100i64).step_by(2).enumerate() {
                assert_eq!(set.rank(&Tuple::from((v,))).unwrap(), Some(i as i64));
            }
        });
    }

    #[test]
    fn persists_across_transactions() {
        let db = Database::new();
        let sub = Subspace::from_bytes(b"R".to_vec());
        crate::run(&db, |tx| {
            let set = RankedSet::new(tx, sub.clone(), 4);
            for v in 0..50i64 {
                set.insert(&Tuple::from((v,)))?;
            }
            Ok(())
        })
        .unwrap();
        let tx = db.create_transaction();
        let set = RankedSet::new(&tx, sub, 4);
        assert_eq!(set.len().unwrap(), 50);
        assert_eq!(set.rank(&Tuple::from((25i64,))).unwrap(), Some(25));
        assert_eq!(set.select(10).unwrap(), Some(Tuple::from((10i64,))));
    }
}
