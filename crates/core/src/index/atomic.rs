//! Atomic-mutation indexes (§7): COUNT, COUNT_UPDATES, COUNT_NON_NULL,
//! SUM, MAX_EVER, MIN_EVER.
//!
//! These aggregate indexes write a single key per group using
//! FoundationDB's atomic mutations, so any number of concurrent record
//! updates commute without read conflicts — the property demonstrated by
//! the `atomic_vs_rmw` benchmark. Each index entry maps the group key to
//! the aggregate value; a key expression with no grouping keeps one entry
//! per record store.

use rl_fdb::atomic::MutationType;
use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::Transaction;

use crate::error::{Error, Result};
use crate::index::{evaluate_index_expr, IndexContext, IndexMaintainer};
use crate::metadata::{Index, IndexType};
use crate::store::{AggregateValue, StoredRecord};

/// Maintainer for the whole atomic family; the concrete behaviour is
/// selected by the index type.
pub struct AtomicIndexMaintainer {
    index_type: IndexType,
}

impl AtomicIndexMaintainer {
    pub fn new(index_type: IndexType) -> Self {
        assert!(
            index_type.is_atomic(),
            "not an atomic index type: {index_type:?}"
        );
        AtomicIndexMaintainer { index_type }
    }
}

/// Split an evaluated grouping tuple into (group key, operand columns).
fn split_group(index: &Index, tuple: &Tuple) -> (Tuple, Tuple) {
    let grouped = index.key_expression.grouped_count();
    let total = tuple.len();
    let boundary = total.saturating_sub(grouped);
    (tuple.prefix(boundary), tuple.suffix(boundary))
}

/// The operand of SUM-type indexes must be a single integer column.
fn operand_as_i64(operand: &Tuple) -> Result<Option<i64>> {
    match operand.elements() {
        [] => Ok(None),
        [TupleElement::Null] => Ok(None),
        [TupleElement::Int(v)] => Ok(Some(*v)),
        other => Err(Error::KeyExpression(format!(
            "aggregate operand must be a single integer column, got {other:?}"
        ))),
    }
}

fn operand_is_null(operand: &Tuple) -> bool {
    operand.is_empty()
        || operand
            .elements()
            .iter()
            .all(|e| matches!(e, TupleElement::Null))
}

impl IndexMaintainer for AtomicIndexMaintainer {
    fn update(
        &self,
        ctx: &IndexContext<'_>,
        old: Option<&StoredRecord>,
        new: Option<&StoredRecord>,
    ) -> Result<i64> {
        let old_tuples = old
            .map(|r| evaluate_index_expr(ctx.index, r))
            .transpose()?
            .unwrap_or_default();
        let new_tuples = new
            .map(|r| evaluate_index_expr(ctx.index, r))
            .transpose()?
            .unwrap_or_default();

        match self.index_type {
            IndexType::Count => {
                // One unit per record (per produced grouping tuple).
                for t in &old_tuples {
                    let (group, _) = split_group(ctx.index, t);
                    let key = ctx.subspace.pack(&group);
                    ctx.tx
                        .mutate(MutationType::Add, &key, &(-1i64).to_le_bytes())?;
                }
                for t in &new_tuples {
                    let (group, _) = split_group(ctx.index, t);
                    let key = ctx.subspace.pack(&group);
                    ctx.tx
                        .mutate(MutationType::Add, &key, &1i64.to_le_bytes())?;
                }
            }
            IndexType::CountUpdates => {
                // Counts every save that produces the group; never
                // decremented on delete (§7: "num. times a field has been
                // updated").
                for t in &new_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if operand_is_null(&operand) {
                        continue;
                    }
                    let key = ctx.subspace.pack(&group);
                    ctx.tx
                        .mutate(MutationType::Add, &key, &1i64.to_le_bytes())?;
                }
            }
            IndexType::CountNonNull => {
                for t in &old_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if operand_is_null(&operand) {
                        continue;
                    }
                    let key = ctx.subspace.pack(&group);
                    ctx.tx
                        .mutate(MutationType::Add, &key, &(-1i64).to_le_bytes())?;
                }
                for t in &new_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if operand_is_null(&operand) {
                        continue;
                    }
                    let key = ctx.subspace.pack(&group);
                    ctx.tx
                        .mutate(MutationType::Add, &key, &1i64.to_le_bytes())?;
                }
            }
            IndexType::Sum => {
                for t in &old_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if let Some(v) = operand_as_i64(&operand)? {
                        let key = ctx.subspace.pack(&group);
                        ctx.tx
                            .mutate(MutationType::Add, &key, &(-v).to_le_bytes())?;
                    }
                }
                for t in &new_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if let Some(v) = operand_as_i64(&operand)? {
                        let key = ctx.subspace.pack(&group);
                        ctx.tx.mutate(MutationType::Add, &key, &v.to_le_bytes())?;
                    }
                }
            }
            IndexType::MaxEver | IndexType::MinEver => {
                // "Ever" semantics: deletes do not retract the extreme, so
                // only new values matter (§7).
                let mutation = if self.index_type == IndexType::MaxEver {
                    MutationType::ByteMax
                } else {
                    MutationType::ByteMin
                };
                for t in &new_tuples {
                    let (group, operand) = split_group(ctx.index, t);
                    if operand_is_null(&operand) {
                        continue;
                    }
                    let key = ctx.subspace.pack(&group);
                    // Packed tuple order == byte order, so BYTE_MIN/MAX on
                    // the packed operand keeps tuple-ordered extremes.
                    ctx.tx.mutate(mutation, &key, &operand.pack())?;
                }
            }
            other => unreachable!("non-atomic type {other:?}"),
        }
        // One key per group: entry count is not a scan-cost signal.
        Ok(0)
    }
}

/// Read the aggregate value for one group.
pub fn evaluate(
    tx: &Transaction,
    index: &Index,
    subspace: &Subspace,
    group: &Tuple,
) -> Result<AggregateValue> {
    let key = subspace.pack(group);
    let Some(bytes) = tx.get(&key)? else {
        return Ok(AggregateValue::Absent);
    };
    match index.index_type {
        IndexType::Count | IndexType::CountUpdates | IndexType::CountNonNull | IndexType::Sum => {
            let mut buf = [0u8; 8];
            let n = bytes.len().min(8);
            buf[..n].copy_from_slice(&bytes[..n]);
            Ok(AggregateValue::Long(i64::from_le_bytes(buf)))
        }
        IndexType::MaxEver | IndexType::MinEver => Ok(AggregateValue::Tuple(
            Tuple::unpack(&bytes).map_err(Error::Fdb)?,
        )),
        other => Err(Error::MetaData(format!(
            "{other:?} is not an aggregate index"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::KeyExpression;
    use crate::metadata::RecordMetaDataBuilder;
    use crate::store::RecordStore;
    use rl_fdb::Database;
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    fn metadata() -> crate::metadata::RecordMetaData {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "Order",
                vec![
                    FieldDescriptor::optional("id", 1, FieldType::Int64),
                    FieldDescriptor::optional("customer", 2, FieldType::String),
                    FieldDescriptor::optional("amount", 3, FieldType::Int64),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        RecordMetaDataBuilder::new(pool)
            .record_type("Order", KeyExpression::field("id"))
            .index("Order", Index::count("order_count", KeyExpression::Empty))
            .index(
                "Order",
                Index::count("count_by_customer", KeyExpression::field("customer")),
            )
            .index(
                "Order",
                Index::sum(
                    "sum_by_customer",
                    KeyExpression::field("customer"),
                    KeyExpression::field("amount"),
                ),
            )
            .index(
                "Order",
                Index::max_ever(
                    "max_amount",
                    KeyExpression::Empty,
                    KeyExpression::field("amount"),
                ),
            )
            .index(
                "Order",
                Index::min_ever(
                    "min_amount",
                    KeyExpression::Empty,
                    KeyExpression::field("amount"),
                ),
            )
            .index(
                "Order",
                Index::count_non_null(
                    "amount_non_null",
                    KeyExpression::Empty,
                    KeyExpression::field("amount"),
                ),
            )
            .index(
                "Order",
                Index::count_updates(
                    "amount_updates",
                    KeyExpression::Empty,
                    KeyExpression::field("amount"),
                ),
            )
            .build()
            .unwrap()
    }

    fn save_order(
        db: &Database,
        md: &crate::metadata::RecordMetaData,
        id: i64,
        customer: &str,
        amount: Option<i64>,
    ) {
        let sub = rl_fdb::Subspace::from_bytes(b"S".to_vec());
        crate::run(db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, md)?;
            let mut rec = store.new_record("Order")?;
            rec.set("id", id).unwrap();
            rec.set("customer", customer).unwrap();
            if let Some(a) = amount {
                rec.set("amount", a).unwrap();
            }
            store.save_record(rec)?;
            Ok(())
        })
        .unwrap();
    }

    fn aggregate(
        db: &Database,
        md: &crate::metadata::RecordMetaData,
        index: &str,
        group: Tuple,
    ) -> AggregateValue {
        let sub = rl_fdb::Subspace::from_bytes(b"S".to_vec());
        crate::run(db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, md)?;
            store.evaluate_aggregate(index, &group)
        })
        .unwrap()
    }

    #[test]
    fn count_and_sum_with_grouping() {
        let db = Database::new();
        let md = metadata();
        save_order(&db, &md, 1, "alice", Some(10));
        save_order(&db, &md, 2, "alice", Some(5));
        save_order(&db, &md, 3, "bob", Some(7));

        assert_eq!(
            aggregate(&db, &md, "order_count", Tuple::new()).as_long(),
            Some(3)
        );
        assert_eq!(
            aggregate(&db, &md, "count_by_customer", Tuple::from(("alice",))).as_long(),
            Some(2)
        );
        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("alice",))).as_long(),
            Some(15)
        );
        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("bob",))).as_long(),
            Some(7)
        );
    }

    #[test]
    fn update_adjusts_sum_and_count() {
        let db = Database::new();
        let md = metadata();
        save_order(&db, &md, 1, "alice", Some(10));
        // Replace order 1 with a different amount and customer.
        save_order(&db, &md, 1, "bob", Some(4));
        assert_eq!(
            aggregate(&db, &md, "order_count", Tuple::new()).as_long(),
            Some(1)
        );
        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("alice",))).as_long(),
            Some(0)
        );
        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("bob",))).as_long(),
            Some(4)
        );
        assert_eq!(
            aggregate(&db, &md, "count_by_customer", Tuple::from(("alice",))).as_long(),
            Some(0)
        );
    }

    #[test]
    fn delete_decrements() {
        let db = Database::new();
        let md = metadata();
        let sub = rl_fdb::Subspace::from_bytes(b"S".to_vec());
        save_order(&db, &md, 1, "alice", Some(10));
        save_order(&db, &md, 2, "alice", Some(3));
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            store.delete_record(&Tuple::from((1i64,)))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            aggregate(&db, &md, "order_count", Tuple::new()).as_long(),
            Some(1)
        );
        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("alice",))).as_long(),
            Some(3)
        );
    }

    #[test]
    fn min_max_ever_are_sticky() {
        let db = Database::new();
        let md = metadata();
        let sub = rl_fdb::Subspace::from_bytes(b"S".to_vec());
        save_order(&db, &md, 1, "a", Some(100));
        save_order(&db, &md, 2, "a", Some(1));
        // Delete both; extremes persist ("ever" semantics).
        crate::run(&db, |tx| {
            let store = RecordStore::open_or_create(tx, &sub, &md)?;
            store.delete_record(&Tuple::from((1i64,)))?;
            store.delete_record(&Tuple::from((2i64,)))?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            aggregate(&db, &md, "max_amount", Tuple::new()),
            AggregateValue::Tuple(Tuple::from((100i64,)))
        );
        assert_eq!(
            aggregate(&db, &md, "min_amount", Tuple::new()),
            AggregateValue::Tuple(Tuple::from((1i64,)))
        );
    }

    #[test]
    fn count_non_null_skips_missing() {
        let db = Database::new();
        let md = metadata();
        save_order(&db, &md, 1, "a", Some(5));
        save_order(&db, &md, 2, "a", None);
        assert_eq!(
            aggregate(&db, &md, "amount_non_null", Tuple::new()).as_long(),
            Some(1)
        );
    }

    #[test]
    fn count_updates_counts_every_save() {
        let db = Database::new();
        let md = metadata();
        save_order(&db, &md, 1, "a", Some(5));
        save_order(&db, &md, 1, "a", Some(6));
        save_order(&db, &md, 1, "a", Some(7));
        assert_eq!(
            aggregate(&db, &md, "amount_updates", Tuple::new()).as_long(),
            Some(3)
        );
    }

    #[test]
    fn absent_group_reads_as_zero() {
        let db = Database::new();
        let md = metadata();
        save_order(&db, &md, 1, "a", Some(5));
        let v = aggregate(&db, &md, "sum_by_customer", Tuple::from(("nobody",)));
        assert_eq!(v, AggregateValue::Absent);
        assert_eq!(v.as_long(), Some(0));
    }

    #[test]
    fn concurrent_saves_do_not_conflict_on_aggregates() {
        // The headline property: maintaining COUNT/SUM via atomic ADD means
        // two transactions saving different records never conflict on the
        // shared aggregate key.
        let db = Database::new();
        let md = metadata();
        let sub = rl_fdb::Subspace::from_bytes(b"S".to_vec());
        // Open the store once so catch-up writes don't conflict below.
        crate::run(&db, |tx| {
            RecordStore::open_or_create(tx, &sub, &md)?;
            Ok(())
        })
        .unwrap();

        let t1 = db.create_transaction();
        let t2 = db.create_transaction();
        for (tx, id) in [(&t1, 10i64), (&t2, 11i64)] {
            let store = RecordStore::open_or_create(tx, &sub, &md).unwrap();
            let mut rec = store.new_record("Order").unwrap();
            rec.set("id", id).unwrap();
            rec.set("customer", "shared").unwrap();
            rec.set("amount", 1i64).unwrap();
            store.save_record(rec).unwrap();
        }
        t1.commit().unwrap();
        t2.commit().unwrap(); // no conflict despite both touching the SUM key

        assert_eq!(
            aggregate(&db, &md, "sum_by_customer", Tuple::from(("shared",))).as_long(),
            Some(2)
        );
        assert_eq!(
            aggregate(&db, &md, "order_count", Tuple::new()).as_long(),
            Some(2)
        );
    }
}
