//! The record store (§4): an entire logical database — records, indexes,
//! and operational state — encapsulated in one contiguous subspace.
//!
//! Layout within the store's subspace `S`:
//!
//! | key                               | contents                          |
//! |-----------------------------------|-----------------------------------|
//! | `S(0)`                            | store header (format, metadata, user versions) |
//! | `S(1, pk…, -1)`                   | record commit version (12 bytes)  |
//! | `S(1, pk…, 0)`                    | unsplit record payload            |
//! | `S(1, pk…, 1..n)`                 | split record chunks (§4 splitting)|
//! | `S(2, index_name, …)`             | index entries / structures        |
//! | `S(3, index_name)`                | index state byte                  |
//! | `S(4, index_name, …)`             | online-build progress (RangeSet)  |
//! | `S(5, 0)`                         | record count (LE i64, atomic ADD) |
//! | `S(5, 1, index_name)`             | index entry count (LE i64, ADD)   |
//!
//! The version split `-1` immediately precedes the record's payload keys so
//! both are fetched with a single range read (§4).
//!
//! The `S(5)` statistics subspace is maintained by the write path with
//! conflict-free atomic `ADD` mutations, so concurrent writers never abort
//! each other over a counter. The cost-based planner reads these counts
//! (at snapshot isolation) to estimate scan costs instead of guessing.

use std::sync::Arc;

use rl_fdb::atomic::MutationType;
use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::version::Versionstamp;
use rl_fdb::{RangeOptions, Transaction};
use rl_message::DynamicMessage;

use crate::cursor::{
    Continuation, CursorResult, ExecuteProperties, KeyValueCursor, NoNextReason, RecordCursor,
};
use crate::error::{Error, Result};
use crate::expr::EvalContext;
use crate::index::{IndexContext, IndexEntry, IndexRegistry, IndexState};
use crate::metadata::{Index, RecordMetaData};
use crate::serialize::{PlainSerializer, RecordSerializer};

const HEADER: i64 = 0;
const RECORDS: i64 = 1;
const INDEXES: i64 = 2;
const INDEX_STATE: i64 = 3;
const INDEX_RANGES: i64 = 4;
const INDEX_STATS: i64 = 5;

/// Key under `S(5)` holding the store-wide record count.
const STAT_RECORDS: i64 = 0;
/// Prefix under `S(5)` holding per-index entry counts.
const STAT_INDEX_ENTRIES: i64 = 1;

/// Current on-disk format version written to store headers.
pub const FORMAT_VERSION: i64 = 1;

/// Default maximum bytes per record chunk when splitting (§4). Records
/// larger than one chunk are spread over `(pk, 1..n)` keys, comfortably
/// below FoundationDB's 100 kB value limit.
pub const DEFAULT_SPLIT_SIZE: usize = 90_000;

/// A record as stored: message, type, primary key, and commit version.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    pub primary_key: Tuple,
    pub record_type: String,
    pub message: DynamicMessage,
    /// The commit version of the record's last modification. Incomplete
    /// for records saved in the current (uncommitted) transaction.
    pub version: Option<Versionstamp>,
    /// Number of key-value pairs the payload occupies (1 = unsplit).
    pub split_count: usize,
}

impl StoredRecord {
    /// Serialized payload size in bytes (used by size-tracking indexes).
    pub fn serialized_size(&self) -> usize {
        self.message.encode().len()
    }
}

/// The store header: versions tracked per §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHeader {
    pub format_version: i64,
    pub metadata_version: u64,
    /// Client-managed "application version" (§5).
    pub user_version: u64,
}

impl StoreHeader {
    fn encode(&self) -> Vec<u8> {
        Tuple::new()
            .push(self.format_version)
            .push(self.metadata_version as i64)
            .push(self.user_version as i64)
            .pack()
    }

    fn decode(bytes: &[u8]) -> Result<StoreHeader> {
        let t = Tuple::unpack(bytes).map_err(Error::Fdb)?;
        let get = |i: usize| {
            t.get(i)
                .and_then(TupleElement::as_int)
                .ok_or_else(|| Error::MetaData("corrupt store header".into()))
        };
        Ok(StoreHeader {
            format_version: get(0)?,
            metadata_version: get(1)? as u64,
            user_version: get(2)? as u64,
        })
    }
}

/// An inclusive/exclusive range over tuples, mapped onto byte ranges within
/// an index or record subspace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleRange {
    pub low: Option<(Tuple, bool)>,
    pub high: Option<(Tuple, bool)>,
}

impl TupleRange {
    /// The unbounded range.
    pub fn all() -> Self {
        TupleRange::default()
    }

    /// All tuples extending `prefix` (equality on the leading columns).
    pub fn prefix(prefix: Tuple) -> Self {
        TupleRange {
            low: Some((prefix.clone(), true)),
            high: Some((prefix, true)),
        }
    }

    pub fn between(low: Option<(Tuple, bool)>, high: Option<(Tuple, bool)>) -> Self {
        TupleRange { low, high }
    }

    /// Map to a concrete byte range within `subspace`. Inclusive bounds
    /// cover all tuples extending the bound; exclusive bounds skip them.
    pub fn to_byte_range(&self, subspace: &Subspace) -> (Vec<u8>, Vec<u8>) {
        let (default_begin, default_end) = subspace.range();
        let begin = match &self.low {
            None => default_begin,
            Some((t, inclusive)) => {
                let packed = subspace.pack(t);
                if *inclusive {
                    packed
                } else {
                    let mut k = packed;
                    k.push(0xFF);
                    k
                }
            }
        };
        let end = match &self.high {
            None => default_end,
            Some((t, inclusive)) => {
                let packed = subspace.pack(t);
                if *inclusive {
                    let mut k = packed;
                    k.push(0xFF);
                    k
                } else {
                    packed
                }
            }
        };
        (begin, end)
    }
}

/// Builder for opening a [`RecordStore`] with non-default serializer,
/// registry, or split size.
pub struct RecordStoreBuilder {
    serializer: Arc<dyn RecordSerializer>,
    registry: Arc<IndexRegistry>,
    split_size: usize,
    metrics: Option<rl_fdb::metrics::SharedMetrics>,
}

impl Default for RecordStoreBuilder {
    fn default() -> Self {
        RecordStoreBuilder {
            serializer: Arc::new(PlainSerializer),
            registry: Arc::new(IndexRegistry::default()),
            split_size: DEFAULT_SPLIT_SIZE,
            metrics: None,
        }
    }
}

impl RecordStoreBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn serializer(mut self, s: Arc<dyn RecordSerializer>) -> Self {
        self.serializer = s;
        self
    }

    pub fn registry(mut self, r: Arc<IndexRegistry>) -> Self {
        self.registry = r;
        self
    }

    /// Chunk size for record splitting (lowered in tests to exercise the
    /// splitting path with small records).
    pub fn split_size(mut self, n: usize) -> Self {
        self.split_size = n;
        self
    }

    /// Metrics block this store reports into (record fetches and friends).
    /// Defaults to the database-wide block reachable from the transaction;
    /// supply a dedicated block to isolate one store's counts.
    pub fn metrics(mut self, metrics: rl_fdb::metrics::SharedMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Open the store, creating it or catching it up to `metadata` as
    /// needed (§5 metadata management).
    pub fn open_or_create<'a>(
        self,
        tx: &'a Transaction,
        subspace: &Subspace,
        metadata: &'a RecordMetaData,
    ) -> Result<RecordStore<'a>> {
        let store = RecordStore {
            tx,
            subspace: subspace.clone(),
            metadata,
            serializer: self.serializer,
            registry: self.registry,
            split_size: self.split_size,
            metrics: self.metrics.unwrap_or_else(|| tx.metrics().clone()),
        };
        store.check_version()?;
        Ok(store)
    }
}

/// A handle to one record store within one transaction. Stateless by
/// design: dropping it loses nothing — all state is in the database.
pub struct RecordStore<'a> {
    tx: &'a Transaction,
    subspace: Subspace,
    metadata: &'a RecordMetaData,
    serializer: Arc<dyn RecordSerializer>,
    registry: Arc<IndexRegistry>,
    split_size: usize,
    metrics: rl_fdb::metrics::SharedMetrics,
}

impl<'a> RecordStore<'a> {
    /// Open with defaults; see [`RecordStoreBuilder`] for customization.
    pub fn open_or_create(
        tx: &'a Transaction,
        subspace: &Subspace,
        metadata: &'a RecordMetaData,
    ) -> Result<RecordStore<'a>> {
        RecordStoreBuilder::new().open_or_create(tx, subspace, metadata)
    }

    pub fn transaction(&self) -> &'a Transaction {
        self.tx
    }

    pub fn metadata(&self) -> &RecordMetaData {
        self.metadata
    }

    /// The metadata reference with the transaction's lifetime (for cursors
    /// that outlive the `RecordStore` value).
    pub fn metadata_ref(&self) -> &'a RecordMetaData {
        self.metadata
    }

    pub fn subspace(&self) -> &Subspace {
        &self.subspace
    }

    pub fn registry(&self) -> &IndexRegistry {
        &self.registry
    }

    /// The metrics block this store reports logical events into (record
    /// fetches, in particular — covering index scans perform none).
    pub fn metrics(&self) -> &rl_fdb::metrics::SharedMetrics {
        &self.metrics
    }

    /// Cheap copy of this handle for cursors that outlive the store
    /// value: shares the transaction, subspace, metadata, serializer,
    /// registry, and metrics, and skips the open-time version check the
    /// original already performed.
    pub fn clone_handle(&self) -> RecordStore<'a> {
        RecordStore {
            tx: self.tx,
            subspace: self.subspace.clone(),
            metadata: self.metadata,
            serializer: self.serializer.clone(),
            registry: self.registry.clone(),
            split_size: self.split_size,
            metrics: self.metrics.clone(),
        }
    }

    fn header_key(&self) -> Vec<u8> {
        self.subspace.pack(&Tuple::new().push(HEADER))
    }

    fn records_subspace(&self) -> Subspace {
        self.subspace.child(RECORDS)
    }

    /// The subspace dedicated to one index.
    pub fn index_subspace(&self, index: &Index) -> Subspace {
        self.subspace.child(INDEXES).child(index.name.as_str())
    }

    fn index_state_key(&self, index_name: &str) -> Vec<u8> {
        self.subspace
            .child(INDEX_STATE)
            .pack(&Tuple::new().push(index_name))
    }

    /// Subspace recording online-build progress for an index.
    pub fn index_range_subspace(&self, index: &Index) -> Subspace {
        self.subspace.child(INDEX_RANGES).child(index.name.as_str())
    }

    /// Subspace holding persistent statistics (record and index entry
    /// counts, maintained with atomic ADD mutations).
    fn stats_subspace(&self) -> Subspace {
        self.subspace.child(INDEX_STATS)
    }

    fn record_count_key(&self) -> Vec<u8> {
        self.stats_subspace().pack(&Tuple::new().push(STAT_RECORDS))
    }

    fn index_entry_count_key(&self, index_name: &str) -> Vec<u8> {
        self.stats_subspace()
            .pack(&Tuple::new().push(STAT_INDEX_ENTRIES).push(index_name))
    }

    /// Fold a delta into a statistics counter with a conflict-free atomic
    /// ADD (little-endian i64 operand).
    fn bump_stat(&self, key: &[u8], delta: i64) -> Result<()> {
        if delta != 0 {
            self.tx
                .mutate(MutationType::Add, key, &delta.to_le_bytes())?;
        }
        Ok(())
    }

    fn read_stat(&self, key: &[u8]) -> Result<Option<u64>> {
        // Snapshot read: statistics are advisory, and planning must not
        // add read conflicts on hot counter keys.
        match self.tx.get_snapshot(key)? {
            None => Ok(None),
            Some(bytes) => {
                let mut buf = [0u8; 8];
                let n = bytes.len().min(8);
                buf[..n].copy_from_slice(&bytes[..n]);
                Ok(Some(i64::from_le_bytes(buf).max(0) as u64))
            }
        }
    }

    /// The maintained count of records in this store, if statistics exist
    /// (stores written before statistics were introduced report `None`).
    pub fn record_count_estimate(&self) -> Result<Option<u64>> {
        self.read_stat(&self.record_count_key())
    }

    /// The maintained count of entries in an index, if statistics exist.
    pub fn index_entry_count(&self, index_name: &str) -> Result<Option<u64>> {
        self.metadata.index(index_name)?;
        self.read_stat(&self.index_entry_count_key(index_name))
    }

    /// Overwrite an index's entry-count statistic with an exact value
    /// (the online index builder recounts after a backfill, since writes
    /// racing the build can double-count in the additive counter).
    pub fn set_index_entry_count(&self, index_name: &str, count: u64) -> Result<()> {
        self.metadata.index(index_name)?;
        self.tx
            .try_set(
                &self.index_entry_count_key(index_name),
                &(count as i64).to_le_bytes(),
            )
            .map_err(Error::Fdb)
    }

    // ------------------------------------------------------------- header

    /// Read the store header, if the store exists.
    pub fn header(&self) -> Result<Option<StoreHeader>> {
        match self.tx.get(&self.header_key())? {
            Some(bytes) => Ok(Some(StoreHeader::decode(&bytes)?)),
            None => Ok(None),
        }
    }

    fn write_header(&self, header: StoreHeader) -> Result<()> {
        self.tx.try_set(&self.header_key(), &header.encode())?;
        Ok(())
    }

    /// Set the client-managed application version (§5).
    pub fn set_user_version(&self, user_version: u64) -> Result<()> {
        let mut header = self
            .header()?
            .ok_or_else(|| Error::MetaData("store does not exist".into()))?;
        header.user_version = user_version;
        self.write_header(header)
    }

    /// §5: on open, compare the store's recorded metadata version with the
    /// supplied metadata; create the store, fail on staleness, or catch up.
    fn check_version(&self) -> Result<()> {
        match self.header()? {
            None => {
                // New store: all current indexes are trivially built.
                self.write_header(StoreHeader {
                    format_version: FORMAT_VERSION,
                    metadata_version: self.metadata.version(),
                    user_version: 0,
                })?;
                for index in self.metadata.indexes() {
                    self.set_index_state(&index.name, IndexState::Readable)?;
                }
                Ok(())
            }
            Some(header) => {
                if header.metadata_version > self.metadata.version() {
                    // The client used an out-of-date metadata cache.
                    return Err(Error::StaleMetaData {
                        store_version: header.metadata_version,
                        supplied_version: self.metadata.version(),
                    });
                }
                if header.metadata_version < self.metadata.version() {
                    self.catch_up_metadata(header)?;
                }
                Ok(())
            }
        }
    }

    /// Apply metadata changes newer than the store's recorded version:
    /// enable new indexes (§5 "Adding indexes") and clear dropped ones.
    fn catch_up_metadata(&self, mut header: StoreHeader) -> Result<()> {
        let has_records = self.has_any_record()?;
        for index in self.metadata.indexes() {
            if index.added_version > header.metadata_version {
                if has_records {
                    // Cannot build inline: reindexing may exceed the
                    // transaction limit. Disabled until an online build.
                    self.set_index_state(&index.name, IndexState::Disabled)?;
                } else {
                    self.set_index_state(&index.name, IndexState::Readable)?;
                }
            }
        }
        // Indexes with recorded state that are no longer in the metadata
        // were dropped: clear their data cheaply with a range clear (§6).
        let state_sub = self.subspace.child(INDEX_STATE);
        let (begin, end) = state_sub.range();
        for kv in self.tx.get_range(&begin, &end, RangeOptions::default())? {
            let name_tuple = state_sub.unpack(&kv.key).map_err(Error::Fdb)?;
            let name = name_tuple
                .get(0)
                .and_then(TupleElement::as_str)
                .ok_or_else(|| Error::MetaData("corrupt index state key".into()))?;
            if self.metadata.index(name).is_err() {
                let data_sub = self.subspace.child(INDEXES).child(name);
                let (db, de) = data_sub.range_inclusive();
                self.tx.clear_range(&db, &de);
                let range_sub = self.subspace.child(INDEX_RANGES).child(name);
                let (rb, re) = range_sub.range_inclusive();
                self.tx.clear_range(&rb, &re);
                self.tx.clear(&self.index_entry_count_key(name));
                self.tx.clear(&kv.key);
            }
        }
        header.metadata_version = self.metadata.version();
        self.write_header(header)
    }

    /// Whether the store holds at least one record.
    pub fn has_any_record(&self) -> Result<bool> {
        let (begin, end) = self.records_subspace().range();
        Ok(!self
            .tx
            .get_range_snapshot(&begin, &end, RangeOptions::new().limit(1))?
            .is_empty())
    }

    // ------------------------------------------------------- index states

    pub fn index_state(&self, index_name: &str) -> Result<IndexState> {
        self.metadata.index(index_name)?;
        match self.tx.get(&self.index_state_key(index_name))? {
            Some(bytes) if bytes.len() == 1 => IndexState::from_byte(bytes[0]),
            Some(_) => Err(Error::MetaData("corrupt index state".into())),
            None => Ok(IndexState::Readable),
        }
    }

    pub fn set_index_state(&self, index_name: &str, state: IndexState) -> Result<()> {
        self.tx
            .try_set(&self.index_state_key(index_name), &[state.to_byte()])?;
        Ok(())
    }

    /// Require an index to be readable before scanning it.
    pub fn require_readable(&self, index_name: &str) -> Result<&Index> {
        let index = self.metadata.index(index_name)?;
        let state = self.index_state(index_name)?;
        if state != IndexState::Readable {
            return Err(Error::IndexNotReadable {
                index: index_name.to_string(),
                state: state.name().to_string(),
            });
        }
        Ok(index)
    }

    // ------------------------------------------------------------ records

    /// Create an empty message of a registered record type.
    pub fn new_record(&self, record_type: &str) -> Result<DynamicMessage> {
        self.metadata.record_type(record_type)?;
        let desc = self
            .metadata
            .pool()
            .message(record_type)
            .ok_or_else(|| Error::UnknownRecordType(record_type.to_string()))?;
        Ok(DynamicMessage::new(desc))
    }

    /// Evaluate the primary key for a message per its record type.
    pub fn primary_key_of(&self, message: &DynamicMessage) -> Result<Tuple> {
        let rt = self.metadata.record_type(message.type_name())?;
        let ctx = EvalContext::new(message, message.type_name());
        rt.primary_key.evaluate_single(&ctx)
    }

    /// Save (insert or replace) a record, maintaining every applicable
    /// index in the same transaction (§6).
    pub fn save_record(&self, message: DynamicMessage) -> Result<StoredRecord> {
        let record_type = message.type_name().to_string();
        let primary_key = self.primary_key_of(&message)?;

        let old = self.load_record(&primary_key)?;

        let version = if self.metadata.store_record_versions {
            Some(Versionstamp::incomplete(self.tx.next_user_version()))
        } else {
            None
        };
        let serialized = self.serialize_record(&record_type, &message)?;
        let split_count = serialized.len().div_ceil(self.split_size).max(1);
        let new = StoredRecord {
            primary_key: primary_key.clone(),
            record_type,
            message,
            version,
            split_count,
        };

        self.update_indexes(old.as_ref(), Some(&new))?;
        if old.is_none() {
            self.bump_stat(&self.record_count_key(), 1)?;
        }

        // Replace the old payload: a range clear is necessary since the old
        // record may have been split across multiple keys (§6).
        let rec_sub = self.records_subspace().subspace(&primary_key);
        if old.is_some() {
            let (begin, end) = rec_sub.range_inclusive();
            self.tx.clear_range(&begin, &end);
        }

        // Write the new payload chunks.
        if split_count == 1 {
            self.tx
                .try_set(&rec_sub.pack(&Tuple::new().push(0i64)), &serialized)?;
        } else {
            if !self.metadata.split_long_records {
                return Err(Error::RecordTooLarge {
                    size: serialized.len(),
                });
            }
            for (i, chunk) in serialized.chunks(self.split_size).enumerate() {
                self.tx
                    .try_set(&rec_sub.pack(&Tuple::new().push((i + 1) as i64)), chunk)?;
            }
        }

        // Write the version split (-1) via a versionstamped value so the
        // commit version is filled in by the database (§4, §7).
        if self.metadata.store_record_versions {
            let key = rec_sub.pack(&Tuple::new().push(-1i64));
            let mut param = new.version.unwrap().as_bytes().to_vec();
            param.extend_from_slice(&0u32.to_le_bytes());
            self.tx
                .mutate(MutationType::SetVersionstampedValue, &key, &param)?;
        }

        Ok(new)
    }

    /// Load a record by primary key: one range read fetches the version
    /// split and all payload chunks together (§4).
    pub fn load_record(&self, primary_key: &Tuple) -> Result<Option<StoredRecord>> {
        let rec_sub = self.records_subspace().subspace(primary_key);
        let (begin, end) = rec_sub.range();
        let kvs = self.tx.get_range(&begin, &end, RangeOptions::default())?;
        self.assemble_record(
            primary_key,
            &kvs.iter()
                .map(|kv| (kv.key.clone(), kv.value.clone()))
                .collect::<Vec<_>>(),
        )
    }

    /// Reassemble a record from its (suffix-keyed) chunks.
    fn assemble_record(
        &self,
        primary_key: &Tuple,
        kvs: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<Option<StoredRecord>> {
        if kvs.is_empty() {
            return Ok(None);
        }
        let rec_sub = self.records_subspace().subspace(primary_key);
        let mut version = None;
        let mut payload = Vec::new();
        let mut split_count = 0usize;
        for (key, value) in kvs {
            let suffix = rec_sub.unpack(key).map_err(Error::Fdb)?;
            let idx = suffix
                .get(0)
                .and_then(TupleElement::as_int)
                .ok_or_else(|| Error::Serialization("bad record split suffix".into()))?;
            if idx == -1 {
                version = Some(Versionstamp::try_from_slice(value).map_err(Error::Fdb)?);
            } else {
                payload.extend_from_slice(value);
                split_count += 1;
            }
        }
        if split_count == 0 {
            // Only a version key survived — treat as missing (can happen
            // transiently if a caller cleared payload keys directly).
            return Ok(None);
        }
        let (record_type, message) = self.deserialize_record(&payload)?;
        // Every record materialized from the record subspace counts as a
        // fetch; covering index scans bypass this path entirely.
        self.metrics.add_record_fetch();
        self.tx.note_record_fetch();
        Ok(Some(StoredRecord {
            primary_key: primary_key.clone(),
            record_type,
            message,
            version,
            split_count,
        }))
    }

    /// Delete a record by primary key, maintaining indexes. Returns whether
    /// a record existed.
    pub fn delete_record(&self, primary_key: &Tuple) -> Result<bool> {
        let Some(old) = self.load_record(primary_key)? else {
            return Ok(false);
        };
        self.update_indexes(Some(&old), None)?;
        self.bump_stat(&self.record_count_key(), -1)?;
        let rec_sub = self.records_subspace().subspace(primary_key);
        let (begin, end) = rec_sub.range_inclusive();
        self.tx.clear_range(&begin, &end);
        Ok(true)
    }

    /// Delete every record and all index data, keeping the store header —
    /// a cheap range clear thanks to the contiguous layout (§3).
    pub fn delete_all_records(&self) -> Result<()> {
        for sub in [
            self.records_subspace(),
            self.subspace.child(INDEXES),
            self.subspace.child(INDEX_RANGES),
            self.stats_subspace(),
        ] {
            let (begin, end) = sub.range_inclusive();
            self.tx.clear_range(&begin, &end);
        }
        Ok(())
    }

    /// The commit version of a record's last modification, if stored.
    pub fn load_record_version(&self, primary_key: &Tuple) -> Result<Option<Versionstamp>> {
        let key = self
            .records_subspace()
            .subspace(primary_key)
            .pack(&Tuple::new().push(-1i64));
        match self.tx.get(&key)? {
            Some(v) => Ok(Some(Versionstamp::try_from_slice(&v).map_err(Error::Fdb)?)),
            None => Ok(None),
        }
    }

    // ----------------------------------------------------------- indexing

    /// Run every applicable maintainer for a record change.
    fn update_indexes(&self, old: Option<&StoredRecord>, new: Option<&StoredRecord>) -> Result<()> {
        for index in self.metadata.indexes() {
            let state = self.index_state(&index.name)?;
            if !state.is_maintained() {
                continue;
            }
            let old_in = old.filter(|o| index.applies_to(&o.record_type));
            let new_in = new.filter(|n| index.applies_to(&n.record_type));
            if old_in.is_none() && new_in.is_none() {
                continue;
            }
            let ctx = IndexContext {
                tx: self.tx,
                index,
                subspace: self.index_subspace(index),
                metadata: self.metadata,
            };
            let delta = self
                .registry
                .maintainer(index)?
                .update(&ctx, old_in, new_in)?;
            self.bump_stat(&self.index_entry_count_key(&index.name), delta)?;
        }
        Ok(())
    }

    /// Re-apply one index's maintainer for a single record (used by the
    /// online index builder).
    pub fn update_one_index(&self, index: &Index, record: &StoredRecord) -> Result<()> {
        let ctx = IndexContext {
            tx: self.tx,
            index,
            subspace: self.index_subspace(index),
            metadata: self.metadata,
        };
        let delta = self
            .registry
            .maintainer(index)?
            .update(&ctx, None, Some(record))?;
        self.bump_stat(&self.index_entry_count_key(&index.name), delta)
    }

    /// Clear one index's data (before a rebuild).
    pub fn clear_index_data(&self, index: &Index) -> Result<()> {
        let data = self.index_subspace(index);
        let (begin, end) = data.range_inclusive();
        self.tx.clear_range(&begin, &end);
        let ranges = self.index_range_subspace(index);
        let (begin, end) = ranges.range_inclusive();
        self.tx.clear_range(&begin, &end);
        self.tx.clear(&self.index_entry_count_key(&index.name));
        Ok(())
    }

    // -------------------------------------------------------------- scans

    /// Scan records by primary-key range, streaming with continuations.
    pub fn scan_records(
        &self,
        range: &TupleRange,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<RecordScanCursor<'a>> {
        RecordScanCursor::new(self, range, false, continuation, props)
    }

    /// Reverse-order record scan.
    pub fn scan_records_reverse(
        &self,
        range: &TupleRange,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<RecordScanCursor<'a>> {
        RecordScanCursor::new(self, range, true, continuation, props)
    }

    /// Scan a VALUE-shaped index (VALUE or VERSION) by entry-key range.
    pub fn scan_index(
        &self,
        index_name: &str,
        range: &TupleRange,
        continuation: &Continuation,
        reverse: bool,
        props: &ExecuteProperties,
    ) -> Result<IndexScanCursor<'a>> {
        let index = self.require_readable(index_name)?;
        IndexScanCursor::new(self, index, range, reverse, continuation, props)
    }

    /// Scan an index without the readability check (for maintenance tools).
    pub fn scan_index_unchecked(
        &self,
        index_name: &str,
        range: &TupleRange,
        continuation: &Continuation,
        reverse: bool,
        props: &ExecuteProperties,
    ) -> Result<IndexScanCursor<'a>> {
        let index = self.metadata.index(index_name)?;
        IndexScanCursor::new(self, index, range, reverse, continuation, props)
    }

    // --------------------------------------------------------- aggregates

    /// Read an atomic aggregate index's value for a group (§7). COUNT/SUM
    /// variants return integers; MIN/MAX_EVER return the stored tuple.
    pub fn evaluate_aggregate(&self, index_name: &str, group: &Tuple) -> Result<AggregateValue> {
        let index = self.require_readable(index_name)?;
        crate::index::atomic::evaluate(self.tx, index, &self.index_subspace(index), group)
    }

    // ------------------------------------------------------ serialization

    fn serialize_record(&self, record_type: &str, message: &DynamicMessage) -> Result<Vec<u8>> {
        // The payload records its type so interleaved records of different
        // types can be told apart on read (§4 single extent).
        let wire = message.encode();
        let tagged = Tuple::new().push(record_type).push(wire).pack();
        self.serializer.serialize(&tagged)
    }

    fn deserialize_record(&self, payload: &[u8]) -> Result<(String, DynamicMessage)> {
        let tagged = self.serializer.deserialize(payload)?;
        let t = Tuple::unpack(&tagged).map_err(Error::Fdb)?;
        let record_type = t
            .get(0)
            .and_then(TupleElement::as_str)
            .ok_or_else(|| Error::Serialization("missing record type tag".into()))?
            .to_string();
        let wire = t
            .get(1)
            .and_then(TupleElement::as_bytes)
            .ok_or_else(|| Error::Serialization("missing record payload".into()))?;
        let desc = self
            .metadata
            .pool()
            .message(&record_type)
            .ok_or_else(|| Error::UnknownRecordType(record_type.clone()))?;
        let message = DynamicMessage::decode(desc, self.metadata.pool(), wire)?;
        Ok((record_type, message))
    }
}

/// The result of [`RecordStore::evaluate_aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateValue {
    /// COUNT/SUM-family result.
    Long(i64),
    /// MIN_EVER / MAX_EVER result: the extreme operand tuple.
    Tuple(Tuple),
    /// No records have contributed to this group.
    Absent,
}

impl AggregateValue {
    pub fn as_long(&self) -> Option<i64> {
        match self {
            AggregateValue::Long(v) => Some(*v),
            AggregateValue::Absent => Some(0),
            AggregateValue::Tuple(_) => None,
        }
    }
}

// ---------------------------------------------------------------- cursors

/// Streams whole records from the record extent, reassembling splits and
/// producing a continuation at each record boundary.
pub struct RecordScanCursor<'a> {
    store: RecordStoreRef<'a>,
    kv: KeyValueCursor<'a>,
    records_subspace: Subspace,
    /// Chunks accumulated for the record currently being assembled.
    pending: Vec<(Vec<u8>, Vec<u8>)>,
    pending_pk: Option<Tuple>,
    last_emitted_pk: Option<Tuple>,
    done: bool,
}

/// The pieces of `RecordStore` a cursor needs, owned so cursors are not tied
/// to the store value's lifetime (only the transaction's).
struct RecordStoreRef<'a> {
    tx: &'a Transaction,
    subspace: Subspace,
    metadata: &'a RecordMetaData,
    serializer: Arc<dyn RecordSerializer>,
    registry: Arc<IndexRegistry>,
    split_size: usize,
    metrics: rl_fdb::metrics::SharedMetrics,
}

impl<'a> RecordStoreRef<'a> {
    fn from(store: &RecordStore<'a>) -> Self {
        RecordStoreRef {
            tx: store.tx,
            subspace: store.subspace.clone(),
            metadata: store.metadata,
            serializer: store.serializer.clone(),
            registry: store.registry.clone(),
            split_size: store.split_size,
            metrics: store.metrics.clone(),
        }
    }

    fn as_store(&self) -> RecordStore<'a> {
        RecordStore {
            tx: self.tx,
            subspace: self.subspace.clone(),
            metadata: self.metadata,
            serializer: self.serializer.clone(),
            registry: self.registry.clone(),
            split_size: self.split_size,
            metrics: self.metrics.clone(),
        }
    }
}

impl<'a> RecordScanCursor<'a> {
    fn new(
        store: &RecordStore<'a>,
        range: &TupleRange,
        reverse: bool,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<Self> {
        let records_subspace = store.records_subspace();
        let (mut begin, mut end) = range.to_byte_range(&records_subspace);
        // Continuations are primary keys: resume strictly after (or before,
        // in reverse) every key of that record.
        let mut done = false;
        match continuation {
            Continuation::Start => {}
            Continuation::End => done = true,
            Continuation::At(pk_bytes) => {
                let pk = Tuple::unpack(pk_bytes).map_err(|e| {
                    Error::InvalidContinuation(format!("bad record scan continuation: {e}"))
                })?;
                let pk_prefix = records_subspace.pack(&pk);
                if reverse {
                    end = pk_prefix;
                } else {
                    let mut b = pk_prefix;
                    b.push(0xFF);
                    begin = b;
                }
            }
        }
        let kv = KeyValueCursor::new(
            store.tx,
            begin,
            end,
            reverse,
            props.snapshot,
            props.limiter(),
            &Continuation::Start,
        )?;
        Ok(RecordScanCursor {
            store: RecordStoreRef::from(store),
            kv,
            records_subspace,
            pending: Vec::new(),
            pending_pk: None,
            last_emitted_pk: None,
            done,
        })
    }

    fn continuation(&self) -> Continuation {
        match &self.last_emitted_pk {
            Some(pk) => Continuation::At(pk.pack()),
            None => Continuation::Start,
        }
    }

    /// Primary key of a raw record key (strips the trailing split suffix).
    fn pk_of(&self, key: &[u8]) -> Result<Tuple> {
        let t = self.records_subspace.unpack(key).map_err(Error::Fdb)?;
        Ok(t.prefix(t.len().saturating_sub(1)))
    }

    fn assemble_pending(&mut self) -> Result<Option<StoredRecord>> {
        let Some(pk) = self.pending_pk.take() else {
            return Ok(None);
        };
        let mut chunks = std::mem::take(&mut self.pending);
        // Reverse scans deliver chunks in descending suffix order.
        chunks.sort_by(|a, b| a.0.cmp(&b.0));
        let store = self.store.as_store();
        store.assemble_record(&pk, &chunks)
    }
}

impl RecordCursor for RecordScanCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        if self.done {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::SourceExhausted,
                continuation: Continuation::End,
            });
        }
        loop {
            match self.kv.next()? {
                CursorResult::Next { value: kv, .. } => {
                    let pk = self.pk_of(&kv.key)?;
                    if self.pending_pk.as_ref() == Some(&pk) || self.pending_pk.is_none() {
                        self.pending_pk = Some(pk);
                        self.pending.push((kv.key, kv.value));
                    } else {
                        // New record began: emit the assembled previous one.
                        let record = self.assemble_pending()?;
                        self.pending_pk = Some(pk);
                        self.pending.push((kv.key, kv.value));
                        if let Some(record) = record {
                            self.last_emitted_pk = Some(record.primary_key.clone());
                            return Ok(CursorResult::Next {
                                value: record,
                                continuation: self.continuation(),
                            });
                        }
                    }
                }
                CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    ..
                } => {
                    self.done = true;
                    if let Some(record) = self.assemble_pending()? {
                        self.last_emitted_pk = Some(record.primary_key.clone());
                        return Ok(CursorResult::Next {
                            value: record,
                            continuation: self.continuation(),
                        });
                    }
                    return Ok(CursorResult::NoNext {
                        reason: NoNextReason::SourceExhausted,
                        continuation: Continuation::End,
                    });
                }
                CursorResult::NoNext { reason, .. } => {
                    // Out-of-band stop: do not emit a partially-read record;
                    // resume from the last complete boundary.
                    self.done = true;
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation: self.continuation(),
                    });
                }
            }
        }
    }
}

/// Streams [`IndexEntry`] values from a VALUE-shaped index subspace.
pub struct IndexScanCursor<'a> {
    kv: KeyValueCursor<'a>,
    subspace: Subspace,
    key_columns: usize,
    done: bool,
    last_key: Option<Vec<u8>>,
}

impl<'a> IndexScanCursor<'a> {
    fn new(
        store: &RecordStore<'a>,
        index: &Index,
        range: &TupleRange,
        reverse: bool,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<Self> {
        let subspace = store.index_subspace(index);
        let (mut begin, mut end) = range.to_byte_range(&subspace);
        let mut done = false;
        match continuation {
            Continuation::Start => {}
            Continuation::End => done = true,
            Continuation::At(last) => {
                if reverse {
                    end = last.clone();
                } else {
                    begin = rl_fdb::key_after(last);
                }
            }
        }
        let kv = KeyValueCursor::new(
            store.tx,
            begin,
            end,
            reverse,
            props.snapshot,
            props.limiter(),
            &Continuation::Start,
        )?;
        Ok(IndexScanCursor {
            kv,
            subspace,
            key_columns: index.key_expression.key_column_count(),
            done,
            last_key: None,
        })
    }

    fn continuation(&self) -> Continuation {
        match &self.last_key {
            Some(k) => Continuation::At(k.clone()),
            None => Continuation::Start,
        }
    }
}

impl RecordCursor for IndexScanCursor<'_> {
    type Item = IndexEntry;

    fn next(&mut self) -> Result<CursorResult<IndexEntry>> {
        if self.done {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::SourceExhausted,
                continuation: Continuation::End,
            });
        }
        match self.kv.next()? {
            CursorResult::Next { value: kv, .. } => {
                let t = self.subspace.unpack(&kv.key).map_err(Error::Fdb)?;
                let key = t.prefix(self.key_columns);
                let primary_key = t.suffix(self.key_columns);
                let value = if kv.value.is_empty() {
                    Tuple::new()
                } else {
                    Tuple::unpack(&kv.value).map_err(Error::Fdb)?
                };
                self.last_key = Some(kv.key);
                Ok(CursorResult::Next {
                    value: IndexEntry {
                        key,
                        value,
                        primary_key,
                    },
                    continuation: self.continuation(),
                })
            }
            CursorResult::NoNext { reason, .. } => {
                if reason == NoNextReason::SourceExhausted {
                    self.done = true;
                    Ok(CursorResult::NoNext {
                        reason,
                        continuation: Continuation::End,
                    })
                } else {
                    Ok(CursorResult::NoNext {
                        reason,
                        continuation: self.continuation(),
                    })
                }
            }
        }
    }
}
