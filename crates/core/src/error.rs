//! Record Layer error type, wrapping substrate errors and adding
//! layer-level failure modes (metadata mismatches, uniqueness violations,
//! unplannable queries, ...).

use rl_message::EvolutionError;

pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the Record Layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An error from the underlying key-value store.
    Fdb(rl_fdb::Error),
    /// An error from the message/descriptor layer.
    Message(rl_message::Error),
    /// The record store header's metadata version is newer than the
    /// metadata the client supplied: the client must refresh its cache.
    StaleMetaData {
        store_version: u64,
        supplied_version: u64,
    },
    /// Schema evolution constraint violations found while updating
    /// metadata.
    InvalidEvolution(Vec<EvolutionError>),
    /// Metadata is internally inconsistent.
    MetaData(String),
    /// Unknown record type name.
    UnknownRecordType(String),
    /// Unknown index name.
    UnknownIndex(String),
    /// The index is not in a state that allows the attempted use (e.g.
    /// scanning a write-only index).
    IndexNotReadable { index: String, state: String },
    /// A unique index would contain two entries with the same key.
    UniquenessViolation { index: String },
    /// A key expression failed to evaluate against a record.
    KeyExpression(String),
    /// A record exceeds limits even after splitting.
    RecordTooLarge { size: usize },
    /// A continuation was malformed or used with a different operation.
    InvalidContinuation(String),
    /// The planner could not produce an executable plan for a query.
    Unplannable(String),
    /// Serialization/deserialization of a stored record failed.
    Serialization(String),
    /// The requested sort order has no supporting index (the layer does
    /// not sort in memory — §3.1 streaming model).
    UnsupportedSort(String),
}

impl Error {
    /// Whether retrying the enclosing transaction could succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Fdb(e) if e.is_retryable())
    }
}

impl From<rl_fdb::Error> for Error {
    fn from(e: rl_fdb::Error) -> Self {
        Error::Fdb(e)
    }
}

impl From<rl_message::Error> for Error {
    fn from(e: rl_message::Error) -> Self {
        Error::Message(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Fdb(e) => write!(f, "fdb: {e}"),
            Error::Message(e) => write!(f, "message: {e}"),
            Error::StaleMetaData { store_version, supplied_version } => write!(
                f,
                "store was written with metadata version {store_version}, client supplied {supplied_version}"
            ),
            Error::InvalidEvolution(errs) => {
                write!(f, "invalid schema evolution: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            Error::MetaData(m) => write!(f, "metadata: {m}"),
            Error::UnknownRecordType(t) => write!(f, "unknown record type {t}"),
            Error::UnknownIndex(i) => write!(f, "unknown index {i}"),
            Error::IndexNotReadable { index, state } => {
                write!(f, "index {index} is {state}, not readable")
            }
            Error::UniquenessViolation { index } => {
                write!(f, "uniqueness violation in index {index}")
            }
            Error::KeyExpression(m) => write!(f, "key expression: {m}"),
            Error::RecordTooLarge { size } => write!(f, "record too large: {size} bytes"),
            Error::InvalidContinuation(m) => write!(f, "invalid continuation: {m}"),
            Error::Unplannable(m) => write!(f, "unplannable query: {m}"),
            Error::Serialization(m) => write!(f, "serialization: {m}"),
            Error::UnsupportedSort(m) => write!(f, "unsupported sort: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_passthrough() {
        assert!(Error::Fdb(rl_fdb::Error::NotCommitted).is_retryable());
        assert!(!Error::Fdb(rl_fdb::Error::UsedDuringCommit).is_retryable());
        assert!(!Error::UnknownIndex("i".into()).is_retryable());
    }

    #[test]
    fn conversions() {
        let e: Error = rl_fdb::Error::NotCommitted.into();
        assert!(matches!(e, Error::Fdb(_)));
        let e: Error = rl_message::Error::UnknownField("f".into()).into();
        assert!(matches!(e, Error::Message(_)));
    }
}
