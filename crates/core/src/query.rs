//! The declarative query API (Appendix C): Boolean predicates over record
//! fields, assembled fluently and either planned into index scans
//! ([`crate::plan`]) or evaluated directly against records as residual
//! filters.

use rl_fdb::tuple::TupleElement;
use rl_message::{DynamicMessage, Value};

use crate::error::{Error, Result};
use crate::expr::value_to_element;

/// Full-text comparisons served by TEXT indexes (Appendix B).
#[derive(Debug, Clone, PartialEq)]
pub enum TextComparison {
    /// All of the tokens appear in the field.
    ContainsAll(Vec<String>),
    /// Any of the tokens appears.
    ContainsAny(Vec<String>),
    /// A token beginning with this prefix appears.
    ContainsPrefix(String),
    /// The tokens appear adjacent and in order.
    ContainsPhrase(Vec<String>),
    /// All tokens appear within a window of `max_distance` tokens.
    ContainsAllWithin {
        tokens: Vec<String>,
        max_distance: usize,
    },
}

/// A scalar comparison against a field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison {
    Equals(TupleElement),
    NotEquals(TupleElement),
    LessThan(TupleElement),
    LessThanOrEquals(TupleElement),
    GreaterThan(TupleElement),
    GreaterThanOrEquals(TupleElement),
    StartsWith(String),
    In(Vec<TupleElement>),
    IsNull,
    NotNull,
    Text(TextComparison),
}

impl Comparison {
    /// Whether an index scan over sorted keys can serve this comparison
    /// (used by the planner to decide sargability).
    pub fn is_sargable(&self) -> bool {
        !matches!(self, Comparison::NotEquals(_) | Comparison::Text(_))
    }

    /// Evaluate against an extracted element (`None` = field unset).
    pub fn eval(&self, actual: Option<&TupleElement>) -> bool {
        use Comparison::*;
        match self {
            IsNull => matches!(actual, None | Some(TupleElement::Null)),
            NotNull => !matches!(actual, None | Some(TupleElement::Null)),
            _ => {
                let Some(actual) = actual else { return false };
                if matches!(actual, TupleElement::Null) {
                    return false;
                }
                match self {
                    Equals(v) => actual == v,
                    NotEquals(v) => actual != v,
                    LessThan(v) => actual < v,
                    LessThanOrEquals(v) => actual <= v,
                    GreaterThan(v) => actual > v,
                    GreaterThanOrEquals(v) => actual >= v,
                    StartsWith(prefix) => match actual {
                        TupleElement::String(s) => s.starts_with(prefix.as_str()),
                        _ => false,
                    },
                    In(vs) => vs.contains(actual),
                    Text(t) => match actual {
                        TupleElement::String(s) => eval_text(t, s),
                        _ => false,
                    },
                    IsNull | NotNull => unreachable!(),
                }
            }
        }
    }
}

/// Token-level text matching, used for residual filtering; TEXT index scans
/// implement the same semantics over postings.
fn eval_text(cmp: &TextComparison, text: &str) -> bool {
    let tokens: Vec<String> = crate::index::text::WhitespaceTokenizer.tokenize(text);
    match cmp {
        TextComparison::ContainsAll(ts) => ts.iter().all(|t| tokens.contains(t)),
        TextComparison::ContainsAny(ts) => ts.iter().any(|t| tokens.contains(t)),
        TextComparison::ContainsPrefix(p) => tokens.iter().any(|t| t.starts_with(p.as_str())),
        TextComparison::ContainsPhrase(ts) => {
            if ts.is_empty() {
                return true;
            }
            tokens.windows(ts.len()).any(|w| w == ts.as_slice())
        }
        TextComparison::ContainsAllWithin {
            tokens: ts,
            max_distance,
        } => {
            let positions: Vec<Vec<usize>> = ts
                .iter()
                .map(|t| {
                    tokens
                        .iter()
                        .enumerate()
                        .filter(|(_, tok)| *tok == t)
                        .map(|(i, _)| i)
                        .collect()
                })
                .collect();
            if positions.iter().any(Vec::is_empty) {
                return false;
            }
            // Any combination within the window; brute force over the first
            // token's occurrences suffices for correctness.
            positions[0].iter().any(|&p0| {
                positions[1..]
                    .iter()
                    .all(|ps| ps.iter().any(|&p| p.abs_diff(p0) <= *max_distance))
            })
        }
    }
}

/// A Boolean predicate over a record.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryComponent {
    /// Compare a (possibly nested, dot-free) field path.
    Field {
        path: Vec<String>,
        comparison: Comparison,
    },
    /// True when *any* element of a repeated field matches.
    OneOfThem {
        field: String,
        comparison: Comparison,
    },
    And(Vec<QueryComponent>),
    Or(Vec<QueryComponent>),
    Not(Box<QueryComponent>),
    /// Record-type check (useful because all types share one extent).
    RecordType(String),
}

impl QueryComponent {
    /// `field("name").comparison` builder.
    pub fn field(name: impl Into<String>, comparison: Comparison) -> Self {
        QueryComponent::Field {
            path: vec![name.into()],
            comparison,
        }
    }

    /// Nested path builder, e.g. `["parent", "a"]`.
    pub fn nested(path: &[&str], comparison: Comparison) -> Self {
        QueryComponent::Field {
            path: path.iter().map(|s| s.to_string()).collect(),
            comparison,
        }
    }

    pub fn one_of_them(field: impl Into<String>, comparison: Comparison) -> Self {
        QueryComponent::OneOfThem {
            field: field.into(),
            comparison,
        }
    }

    pub fn and(parts: Vec<QueryComponent>) -> Self {
        QueryComponent::And(parts)
    }

    pub fn or(parts: Vec<QueryComponent>) -> Self {
        QueryComponent::Or(parts)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(part: QueryComponent) -> Self {
        QueryComponent::Not(Box::new(part))
    }

    /// Evaluate against a record (residual filtering).
    pub fn eval(&self, record_type: &str, msg: &DynamicMessage) -> Result<bool> {
        match self {
            QueryComponent::Field { path, comparison } => {
                let el = extract_path(msg, path)?;
                Ok(comparison.eval(el.as_ref()))
            }
            QueryComponent::OneOfThem { field, comparison } => {
                for v in msg.get_repeated(field) {
                    let el = value_to_element(v)?;
                    if comparison.eval(Some(&el)) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            QueryComponent::And(parts) => {
                for p in parts {
                    if !p.eval(record_type, msg)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            QueryComponent::Or(parts) => {
                for p in parts {
                    if p.eval(record_type, msg)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            QueryComponent::Not(p) => Ok(!p.eval(record_type, msg)?),
            QueryComponent::RecordType(t) => Ok(t == record_type),
        }
    }
}

/// Walk a nested field path on a message, returning the leaf element.
/// Missing fields yield `None`.
pub fn extract_path(msg: &DynamicMessage, path: &[String]) -> Result<Option<TupleElement>> {
    let mut current = msg;
    for (i, name) in path.iter().enumerate() {
        let is_last = i + 1 == path.len();
        match current.get(name) {
            None => return Ok(None),
            Some(Value::Message(nested)) if !is_last => current = nested,
            Some(v) if is_last => return Ok(Some(value_to_element(v)?)),
            Some(_) => {
                return Err(Error::KeyExpression(format!(
                    "path component {name} is not a nested message"
                )))
            }
        }
    }
    Ok(None)
}

/// A declarative query: which record types, what filter, what order
/// (Appendix C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordQuery {
    /// Empty = all record types.
    pub record_types: Vec<String>,
    pub filter: Option<QueryComponent>,
    /// Requested sort, which must be servable by an index or the primary
    /// key (§3.1: no in-memory sorts).
    pub sort: Option<crate::expr::KeyExpression>,
    pub sort_reverse: bool,
    /// The fields the caller will actually read from result records.
    /// Empty = all fields. When an index's key (plus the primary key)
    /// covers every required field, the planner produces a covering index
    /// scan that synthesizes partial records straight from index entries,
    /// skipping the record fetch entirely (§4 "covering indexes").
    pub required_fields: Vec<String>,
}

impl RecordQuery {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_type(mut self, name: impl Into<String>) -> Self {
        self.record_types.push(name.into());
        self
    }

    pub fn filter(mut self, filter: QueryComponent) -> Self {
        self.filter = Some(filter);
        self
    }

    pub fn sort(mut self, sort: crate::expr::KeyExpression, reverse: bool) -> Self {
        self.sort = Some(sort);
        self.sort_reverse = reverse;
        self
    }

    /// Declare the projection: only these fields will be read from the
    /// results, making the query eligible for covering index scans.
    pub fn require_fields(mut self, fields: &[&str]) -> Self {
        self.required_fields = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    /// A canonical, value-free description of this query's *shape*: record
    /// types, the filter's structure with comparison operators but not
    /// comparands, and the projection. Two queries that differ only in
    /// their literals share a shape.
    ///
    /// This is the unit of the workload harness's query corpus
    /// (`BENCH_workload.json` `query_shapes`), which the planned
    /// statistics-driven index advisor replays against the cost model:
    /// shapes are what an index proposal must serve, the literals are what
    /// the statistics summarize.
    ///
    /// Example: `Item[(group =? & score >=?)]→(group,id,score)`.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        if self.record_types.is_empty() {
            out.push('*');
        } else {
            let mut types = self.record_types.clone();
            types.sort();
            out.push_str(&types.join(","));
        }
        out.push('[');
        match &self.filter {
            Some(filter) => component_shape(filter, &mut out),
            None => out.push_str("true"),
        }
        out.push(']');
        if let Some(sort) = &self.sort {
            out.push_str(if self.sort_reverse { "↓" } else { "↑" });
            out.push_str(&format!("{sort:?}"));
        }
        if !self.required_fields.is_empty() {
            let mut fields = self.required_fields.clone();
            fields.sort();
            out.push_str("→(");
            out.push_str(&fields.join(","));
            out.push(')');
        }
        out
    }
}

/// Append the value-free shape of one filter component.
fn component_shape(component: &QueryComponent, out: &mut String) {
    match component {
        QueryComponent::Field { path, comparison } => {
            out.push_str(&path.join("."));
            out.push(' ');
            out.push_str(comparison_shape(comparison));
        }
        QueryComponent::OneOfThem { field, comparison } => {
            out.push_str(field);
            out.push_str("[] ");
            out.push_str(comparison_shape(comparison));
        }
        QueryComponent::RecordType(name) => {
            out.push_str("type=");
            out.push_str(name);
        }
        QueryComponent::And(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" & ");
                }
                component_shape(p, out);
            }
            out.push(')');
        }
        QueryComponent::Or(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                component_shape(p, out);
            }
            out.push(')');
        }
        QueryComponent::Not(inner) => {
            out.push('!');
            component_shape(inner, out);
        }
    }
}

/// Operator token for a comparison, with the comparand elided.
fn comparison_shape(comparison: &Comparison) -> &'static str {
    match comparison {
        Comparison::Equals(_) => "=?",
        Comparison::NotEquals(_) => "!=?",
        Comparison::LessThan(_) => "<?",
        Comparison::LessThanOrEquals(_) => "<=?",
        Comparison::GreaterThan(_) => ">?",
        Comparison::GreaterThanOrEquals(_) => ">=?",
        Comparison::StartsWith(_) => "prefix?",
        Comparison::In(_) => "in?",
        Comparison::IsNull => "null?",
        Comparison::NotNull => "!null?",
        Comparison::Text(_) => "text?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_message::{DescriptorPool, FieldDescriptor, FieldType, MessageDescriptor};

    fn pool() -> DescriptorPool {
        let mut pool = DescriptorPool::new();
        pool.add_message(
            MessageDescriptor::new(
                "Inner",
                vec![FieldDescriptor::optional("a", 1, FieldType::Int64)],
            )
            .unwrap(),
        )
        .unwrap();
        pool.add_message(
            MessageDescriptor::new(
                "T",
                vec![
                    FieldDescriptor::optional("n", 1, FieldType::Int64),
                    FieldDescriptor::optional("s", 2, FieldType::String),
                    FieldDescriptor::repeated("tags", 3, FieldType::String),
                    FieldDescriptor::optional("inner", 4, FieldType::Message("Inner".into())),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        pool
    }

    fn record(pool: &DescriptorPool) -> DynamicMessage {
        let mut inner = DynamicMessage::new(pool.message("Inner").unwrap());
        inner.set("a", 5i64).unwrap();
        let mut m = DynamicMessage::new(pool.message("T").unwrap());
        m.set("n", 10i64).unwrap();
        m.set("s", "hello world").unwrap();
        m.push("tags", "red").unwrap();
        m.push("tags", "blue").unwrap();
        m.set("inner", inner).unwrap();
        m
    }

    #[test]
    fn scalar_comparisons() {
        let pool = pool();
        let m = record(&pool);
        let eval = |c: QueryComponent| c.eval("T", &m).unwrap();
        assert!(eval(QueryComponent::field(
            "n",
            Comparison::Equals(TupleElement::Int(10))
        )));
        assert!(eval(QueryComponent::field(
            "n",
            Comparison::LessThan(TupleElement::Int(11))
        )));
        assert!(!eval(QueryComponent::field(
            "n",
            Comparison::GreaterThan(TupleElement::Int(10))
        )));
        assert!(eval(QueryComponent::field(
            "n",
            Comparison::GreaterThanOrEquals(TupleElement::Int(10))
        )));
        assert!(eval(QueryComponent::field(
            "s",
            Comparison::StartsWith("hello".into())
        )));
        assert!(eval(QueryComponent::field(
            "n",
            Comparison::In(vec![TupleElement::Int(9), TupleElement::Int(10)])
        )));
        assert!(eval(QueryComponent::field("n", Comparison::NotNull)));
    }

    #[test]
    fn null_semantics() {
        let pool = pool();
        let empty = DynamicMessage::new(pool.message("T").unwrap());
        let c = QueryComponent::field("n", Comparison::IsNull);
        assert!(c.eval("T", &empty).unwrap());
        // Comparisons against missing fields are false, not errors.
        let c = QueryComponent::field("n", Comparison::Equals(TupleElement::Int(0)));
        assert!(!c.eval("T", &empty).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let pool = pool();
        let m = record(&pool);
        let t = QueryComponent::field("n", Comparison::Equals(TupleElement::Int(10)));
        let f = QueryComponent::field("n", Comparison::Equals(TupleElement::Int(11)));
        assert!(QueryComponent::and(vec![t.clone(), t.clone()])
            .eval("T", &m)
            .unwrap());
        assert!(!QueryComponent::and(vec![t.clone(), f.clone()])
            .eval("T", &m)
            .unwrap());
        assert!(QueryComponent::or(vec![f.clone(), t.clone()])
            .eval("T", &m)
            .unwrap());
        assert!(!QueryComponent::or(vec![f.clone(), f.clone()])
            .eval("T", &m)
            .unwrap());
        assert!(QueryComponent::not(f).eval("T", &m).unwrap());
        assert!(!QueryComponent::not(t).eval("T", &m).unwrap());
    }

    #[test]
    fn one_of_them_matches_any_element() {
        let pool = pool();
        let m = record(&pool);
        assert!(QueryComponent::one_of_them(
            "tags",
            Comparison::Equals(TupleElement::String("blue".into()))
        )
        .eval("T", &m)
        .unwrap());
        assert!(!QueryComponent::one_of_them(
            "tags",
            Comparison::Equals(TupleElement::String("green".into()))
        )
        .eval("T", &m)
        .unwrap());
    }

    #[test]
    fn nested_paths() {
        let pool = pool();
        let m = record(&pool);
        assert!(
            QueryComponent::nested(&["inner", "a"], Comparison::Equals(TupleElement::Int(5)))
                .eval("T", &m)
                .unwrap()
        );
        // Missing nested message: comparison is false.
        let empty = DynamicMessage::new(pool.message("T").unwrap());
        assert!(
            !QueryComponent::nested(&["inner", "a"], Comparison::Equals(TupleElement::Int(5)))
                .eval("T", &empty)
                .unwrap()
        );
    }

    #[test]
    fn record_type_component() {
        let pool = pool();
        let m = record(&pool);
        assert!(QueryComponent::RecordType("T".into())
            .eval("T", &m)
            .unwrap());
        assert!(!QueryComponent::RecordType("U".into())
            .eval("T", &m)
            .unwrap());
    }

    #[test]
    fn text_comparisons() {
        let pool = pool();
        let m = record(&pool);
        let eval = |t: TextComparison| {
            QueryComponent::field("s", Comparison::Text(t))
                .eval("T", &m)
                .unwrap()
        };
        assert!(eval(TextComparison::ContainsAll(vec![
            "hello".into(),
            "world".into()
        ])));
        assert!(!eval(TextComparison::ContainsAll(vec![
            "hello".into(),
            "mars".into()
        ])));
        assert!(eval(TextComparison::ContainsAny(vec![
            "mars".into(),
            "world".into()
        ])));
        assert!(eval(TextComparison::ContainsPrefix("wor".into())));
        assert!(eval(TextComparison::ContainsPhrase(vec![
            "hello".into(),
            "world".into()
        ])));
        assert!(!eval(TextComparison::ContainsPhrase(vec![
            "world".into(),
            "hello".into()
        ])));
        assert!(eval(TextComparison::ContainsAllWithin {
            tokens: vec!["hello".into(), "world".into()],
            max_distance: 1
        }));
    }

    #[test]
    fn sargability() {
        assert!(Comparison::Equals(TupleElement::Int(1)).is_sargable());
        assert!(Comparison::LessThan(TupleElement::Int(1)).is_sargable());
        assert!(!Comparison::NotEquals(TupleElement::Int(1)).is_sargable());
        assert!(!Comparison::Text(TextComparison::ContainsPrefix("x".into())).is_sargable());
    }

    #[test]
    fn query_builder() {
        let q = RecordQuery::new()
            .record_type("T")
            .filter(QueryComponent::field("n", Comparison::NotNull))
            .sort(crate::expr::KeyExpression::field("n"), true);
        assert_eq!(q.record_types, vec!["T".to_string()]);
        assert!(q.filter.is_some());
        assert!(q.sort_reverse);
    }

    #[test]
    fn shapes_elide_values_and_canonicalize() {
        let shape_of = |value: &str, score: i64| {
            RecordQuery::new()
                .record_type("Item")
                .filter(QueryComponent::and(vec![
                    QueryComponent::field("group", Comparison::Equals(value.into())),
                    QueryComponent::field(
                        "score",
                        Comparison::GreaterThanOrEquals(TupleElement::Int(score)),
                    ),
                ]))
                .require_fields(&["score", "id", "group"])
                .shape()
        };
        // Same shape regardless of literals; projection field order is
        // canonicalized.
        assert_eq!(shape_of("g1", 10), shape_of("zzz", -4));
        assert_eq!(
            shape_of("g1", 10),
            "Item[(group =? & score >=?)]→(group,id,score)"
        );

        let or = RecordQuery::new()
            .record_type("Item")
            .filter(QueryComponent::or(vec![
                QueryComponent::field("group", Comparison::Equals("a".into())),
                QueryComponent::field("group", Comparison::In(vec!["b".into(), "c".into()])),
            ]))
            .shape();
        assert_eq!(or, "Item[(group =? | group in?)]");

        assert_eq!(RecordQuery::new().shape(), "*[true]");
    }
}
