//! Plan execution: turn a [`RecordQueryPlan`] into a tree of streaming
//! cursors, resuming from a continuation and honoring scan/byte limits.
//!
//! All cursors spawned by one plan share a single scan budget (installed
//! via [`ExecuteProperties`]), so a limit bounds the *total* work of the
//! plan, not the work of each branch separately.

use crate::cursor::{Continuation, ExecuteProperties, KeyValueCursor};
use crate::error::Result;
use crate::store::{RecordStore, StoredRecord, TupleRange};

use super::cursors::{
    BoxedCursorExt, CoveringScanCursor, FilteredRecordCursor, IndexFetchCursor, IntersectionCursor,
    ObservedCursor, PlanCursor, TimedCursor, UnionCursor,
};
use super::ir::RecordQueryPlan;

impl RecordQueryPlan {
    /// Execute against a store, resuming from `continuation`. The
    /// `return_limit` in `props` is enforced at the top of the plan; scan
    /// and byte limits are shared by every cursor the plan spawns.
    ///
    /// With observability enabled the whole execution (from this call to
    /// the cursor's drop) lands in the `execute` latency histogram, and
    /// every plan node emits a `plan_node` span tagged
    /// `"<store subspace hex>:<node path>"` — see
    /// [`RecordQueryPlan::node_paths`] for the join back onto the tree.
    pub fn execute<'a>(
        &self,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
    ) -> Result<PlanCursor<'a>> {
        let timer = rl_obs::Timer::start("execute");
        let mut inner_props = props.clone();
        inner_props.return_limit = None;
        inner_props.share_limiter();
        let cursor = self.execute_inner(store, continuation, &inner_props, "0")?;
        let cursor = match props.return_limit {
            Some(n) => Box::new(crate::cursor::TakeCursor::new(cursor, n)) as PlanCursor<'a>,
            None => cursor,
        };
        Ok(if rl_obs::enabled() {
            // The timer rides with the cursor so the histogram sees the
            // full streaming lifetime, not just plan-tree construction.
            Box::new(TimedCursor::new(cursor, timer))
        } else {
            cursor
        })
    }

    /// Build the cursor for this node, wrapping it in per-node span
    /// accounting when observability is enabled. `path` is this node's
    /// dotted position in the plan tree (root `"0"`, children `"0.N"`).
    pub(crate) fn execute_inner<'a>(
        &self,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
        path: &str,
    ) -> Result<PlanCursor<'a>> {
        let cursor = self.build_cursor(store, continuation, props, path)?;
        Ok(if rl_obs::enabled() {
            Box::new(ObservedCursor::new(cursor, store, path))
        } else {
            cursor
        })
    }

    fn build_cursor<'a>(
        &self,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
        path: &str,
    ) -> Result<PlanCursor<'a>> {
        match self {
            RecordQueryPlan::FullScan {
                record_types,
                residual,
                reverse,
            } => {
                let scan = if *reverse {
                    store.scan_records_reverse(&TupleRange::all(), continuation, props)?
                } else {
                    store.scan_records(&TupleRange::all(), continuation, props)?
                };
                Ok(Box::new(FilteredRecordCursor {
                    inner: Box::new(scan),
                    record_types: record_types.clone(),
                    residual: residual.clone(),
                }))
            }
            RecordQueryPlan::IndexScan {
                index_name,
                bounds,
                reverse,
                record_types,
                residual,
            } => {
                let index = store.require_readable(index_name)?;
                let subspace = store.index_subspace(index);
                let (begin, end) = bounds.to_byte_range(&subspace);
                // Scan the index subspace's byte range, fetching records by
                // the primary key carried in each entry.
                let kv = KeyValueCursor::new(
                    store.transaction(),
                    begin,
                    end,
                    *reverse,
                    props.snapshot,
                    props.limiter(),
                    continuation,
                )?;
                Ok(Box::new(IndexFetchCursor {
                    store: store.clone_handle(),
                    kv,
                    subspace,
                    key_columns: index.key_expression.key_column_count(),
                    record_types: record_types.clone(),
                    residual: residual.clone(),
                }))
            }
            RecordQueryPlan::CoveringIndexScan {
                index_name,
                bounds,
                reverse,
                record_type,
                fields,
            } => {
                let index = store.require_readable(index_name)?;
                let subspace = store.index_subspace(index);
                let (begin, end) = bounds.to_byte_range(&subspace);
                let kv = KeyValueCursor::new(
                    store.transaction(),
                    begin,
                    end,
                    *reverse,
                    props.snapshot,
                    props.limiter(),
                    continuation,
                )?;
                Ok(Box::new(CoveringScanCursor {
                    kv,
                    subspace,
                    key_columns: index.key_expression.key_column_count(),
                    metadata: store.metadata_ref(),
                    record_type: record_type.clone(),
                    fields: fields.clone(),
                }))
            }
            RecordQueryPlan::TextScan {
                index_name,
                comparison,
                record_types,
                residual,
            } => {
                let pks = store.text_search(index_name, comparison)?;
                let mut records = Vec::new();
                for pk in pks {
                    if let Some(rec) = store.load_record(&pk)? {
                        let type_ok = record_types
                            .as_ref()
                            .is_none_or(|ts| ts.contains(&rec.record_type));
                        let residual_ok = match residual {
                            Some(r) => r.eval(&rec.record_type, &rec.message)?,
                            None => true,
                        };
                        if type_ok && residual_ok {
                            records.push(rec);
                        }
                    }
                }
                Ok(Box::new(crate::cursor::ListCursor::new(
                    records,
                    continuation,
                )?))
            }
            RecordQueryPlan::Union { children } => {
                UnionCursor::create(children, store, continuation, props, path)
            }
            RecordQueryPlan::Intersection { children } => {
                IntersectionCursor::create(children, store, continuation, props, path)
            }
        }
    }

    /// Execute and collect all records (convenience for tests/examples).
    pub fn execute_all(&self, store: &RecordStore<'_>) -> Result<Vec<StoredRecord>> {
        let mut cursor = self.execute(store, &Continuation::Start, &ExecuteProperties::new())?;
        let (records, _, _) = cursor.collect_remaining_boxed()?;
        Ok(records)
    }
}
