//! The plan intermediate representation.
//!
//! A [`RecordQueryPlan`] is plain data: a tree of concrete operations —
//! index scans, covering scans, full scans, text scans, unions,
//! intersections — produced by the planner and executed as streaming
//! cursors with continuations. Because plans are data, clients can cache
//! them, ship them, and re-execute them with bound continuations.

use std::collections::BTreeSet;

use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::Tuple;

use crate::query::{QueryComponent, TextComparison};
use crate::store::TupleRange;

use super::cost::CostModel;

/// Key bounds for an index scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanBounds {
    Range(TupleRange),
    /// Equality prefix columns followed by a *string prefix* match on the
    /// next column (byte-level, exploiting tuple encoding).
    StringPrefix {
        prefix_cols: Tuple,
        prefix: String,
    },
}

impl ScanBounds {
    pub fn to_byte_range(&self, subspace: &Subspace) -> (Vec<u8>, Vec<u8>) {
        match self {
            ScanBounds::Range(r) => r.to_byte_range(subspace),
            ScanBounds::StringPrefix {
                prefix_cols,
                prefix,
            } => {
                // Pack the equality columns, then the string *without* its
                // terminator: every longer string shares these bytes.
                let mut begin = subspace.pack(prefix_cols);
                let with_str = Tuple::new().push(prefix.as_str()).pack();
                begin.extend_from_slice(&with_str[..with_str.len() - 1]);
                let mut end = begin.clone();
                end.push(0xFF);
                (begin, end)
            }
        }
    }

    /// The equality prefix these bounds pin, when the bounds are a pure
    /// equality (`low == high`, both inclusive). An index scan whose
    /// equality prefix pins *every* key column streams entries in primary
    /// key order, which the streaming intersection relies on.
    pub fn equality_prefix(&self) -> Option<&Tuple> {
        match self {
            ScanBounds::Range(r) => match (&r.low, &r.high) {
                (Some((lo, true)), Some((hi, true))) if lo == hi => Some(lo),
                _ => None,
            },
            ScanBounds::StringPrefix { .. } => None,
        }
    }
}

/// Where a synthesized field's value comes from in a covering index scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoveredSource {
    /// Column `i` of the index entry (key columns, then value columns).
    Entry(usize),
    /// Column `i` of the primary key appended to the entry.
    PrimaryKey(usize),
}

/// One field of the partial record a covering scan synthesizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveredField {
    pub field: String,
    pub source: CoveredSource,
}

/// An executable query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordQueryPlan {
    /// Scan the record extent, filtering.
    FullScan {
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
        reverse: bool,
    },
    /// Scan an index range, fetch each record, apply residual filters.
    IndexScan {
        index_name: String,
        bounds: ScanBounds,
        reverse: bool,
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
    },
    /// Serve the query straight from index entries: the index key plus the
    /// primary key covers every requested field, so partial records are
    /// synthesized without touching the record subspace at all (§4
    /// "covering indexes"; observable as zero record fetches in
    /// [`rl_fdb::metrics::MetricsSnapshot`]).
    CoveringIndexScan {
        index_name: String,
        bounds: ScanBounds,
        reverse: bool,
        /// The single record type whose partial records are synthesized.
        record_type: String,
        /// How synthesized fields map onto entry / primary-key columns.
        fields: Vec<CoveredField>,
    },
    /// Serve a full-text predicate from a TEXT index.
    TextScan {
        index_name: String,
        comparison: TextComparison,
        record_types: Option<BTreeSet<String>>,
        residual: Option<QueryComponent>,
    },
    /// Distinct union of sub-plans (OR queries).
    Union { children: Vec<RecordQueryPlan> },
    /// Records produced by every sub-plan (AND across different indexes),
    /// executed as a streaming merge-join over primary-key-ordered
    /// children.
    Intersection { children: Vec<RecordQueryPlan> },
}

impl RecordQueryPlan {
    /// Human-readable plan shape (for tests and quick logging). For a
    /// cost-annotated tree, see [`RecordQueryPlan::explain`].
    pub fn describe(&self) -> String {
        match self {
            RecordQueryPlan::FullScan { residual, .. } => {
                if residual.is_some() {
                    "Filter(FullScan)".to_string()
                } else {
                    "FullScan".to_string()
                }
            }
            RecordQueryPlan::IndexScan {
                index_name,
                residual,
                reverse,
                ..
            } => {
                let base = if *reverse {
                    format!("IndexScan({index_name}, reverse)")
                } else {
                    format!("IndexScan({index_name})")
                };
                if residual.is_some() {
                    format!("Filter({base})")
                } else {
                    base
                }
            }
            RecordQueryPlan::CoveringIndexScan {
                index_name,
                reverse,
                ..
            } => {
                if *reverse {
                    format!("Covering(IndexScan({index_name}, reverse))")
                } else {
                    format!("Covering(IndexScan({index_name}))")
                }
            }
            RecordQueryPlan::TextScan { index_name, .. } => format!("TextScan({index_name})"),
            RecordQueryPlan::Union { children } => {
                let inner: Vec<String> = children.iter().map(RecordQueryPlan::describe).collect();
                format!("Union({})", inner.join(", "))
            }
            RecordQueryPlan::Intersection { children } => {
                let inner: Vec<String> = children.iter().map(RecordQueryPlan::describe).collect();
                format!("Intersection({})", inner.join(", "))
            }
        }
    }

    /// The plan tree annotated with estimated rows and cost under default
    /// statistics. Use [`RecordQueryPlan::explain_with`] to annotate with
    /// a store-backed cost model instead.
    pub fn explain(&self) -> String {
        CostModel::new().explain(self)
    }

    /// The plan tree annotated with estimated rows and cost under the
    /// supplied cost model (typically built from a store's persistent
    /// index statistics).
    pub fn explain_with(&self, model: &CostModel<'_>) -> String {
        model.explain(self)
    }

    /// Child plans (empty for leaves).
    pub fn children(&self) -> &[RecordQueryPlan] {
        match self {
            RecordQueryPlan::Union { children } | RecordQueryPlan::Intersection { children } => {
                children
            }
            _ => &[],
        }
    }

    /// Pre-order `(path, label)` pairs for every node in the plan tree.
    ///
    /// Paths are the dotted child indexes the executor tags `plan_node`
    /// spans with (the root is `"0"`, its children `"0.0"`, `"0.1"`, …),
    /// so draining [`rl_obs::drain_spans`] after execution and matching
    /// each span's tag suffix against these paths joins the *actual* rows
    /// and keys per node onto the plan shape [`RecordQueryPlan::explain`]
    /// prints.
    pub fn node_paths(&self) -> Vec<(String, String)> {
        fn walk(plan: &RecordQueryPlan, path: String, out: &mut Vec<(String, String)>) {
            let label = match plan {
                RecordQueryPlan::Union { .. } => "Union".to_string(),
                RecordQueryPlan::Intersection { .. } => "Intersection".to_string(),
                other => other.describe(),
            };
            out.push((path.clone(), label));
            for (i, child) in plan.children().iter().enumerate() {
                walk(child, format!("{path}.{i}"), out);
            }
        }
        let mut out = Vec::new();
        walk(self, "0".to_string(), &mut out);
        out
    }
}
