//! Plan-level cursors: residual filtering, the primary fetch, covering
//! record synthesis, distinct union, and the streaming (merge-join)
//! intersection.

use std::collections::BTreeSet;

use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_message::{DynamicMessage, FieldType, Value};

use crate::cursor::{
    Continuation, CursorResult, ExecuteProperties, KeyValueCursor, NoNextReason, RecordCursor,
};
use crate::error::{Error, Result};
use crate::metadata::RecordMetaData;
use crate::query::QueryComponent;
use crate::store::{RecordStore, StoredRecord};

use super::ir::{CoveredField, CoveredSource, RecordQueryPlan};

/// Boxed cursor of query results.
pub type PlanCursor<'a> = Box<dyn RecordCursor<Item = StoredRecord> + 'a>;

/// Helper so boxed cursors can drain (trait objects can't use the default
/// `collect_remaining` which requires `Sized`).
pub trait BoxedCursorExt {
    fn collect_remaining_boxed(
        &mut self,
    ) -> Result<(Vec<StoredRecord>, NoNextReason, Continuation)>;
}

impl BoxedCursorExt for PlanCursor<'_> {
    fn collect_remaining_boxed(
        &mut self,
    ) -> Result<(Vec<StoredRecord>, NoNextReason, Continuation)> {
        let mut out = Vec::new();
        loop {
            match self.next()? {
                CursorResult::Next { value, .. } => out.push(value),
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => return Ok((out, reason, continuation)),
            }
        }
    }
}

// ---------------------------------------------------------- observability

/// Carries the `execute` timer for the cursor's whole streaming lifetime:
/// the histogram records plan execution end-to-end, not just cursor
/// construction. Installed only when observability is enabled.
pub(crate) struct TimedCursor<'a> {
    inner: PlanCursor<'a>,
    _timer: rl_obs::Timer,
}

impl<'a> TimedCursor<'a> {
    pub(crate) fn new(inner: PlanCursor<'a>, timer: rl_obs::Timer) -> TimedCursor<'a> {
        TimedCursor {
            inner,
            _timer: timer,
        }
    }
}

impl RecordCursor for TimedCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        self.inner.next()
    }
}

/// Per-plan-node span accounting (installed only when observability is
/// enabled): counts the rows this node emitted and, on drop, pushes a
/// `plan_node` span tagged `"<store subspace hex>:<node path>"` whose
/// counters carry the rows plus the transaction-level key-read /
/// record-fetch deltas observed over the node's lifetime.
///
/// The deltas are *inclusive* (flamegraph-style): a parent's span covers
/// the traffic of its children, since they execute within its lifetime.
/// Intersection children served straight from raw index entries bypass
/// `execute_inner` and therefore emit no span of their own; their reads
/// still show up in the enclosing Intersection node's deltas.
pub(crate) struct ObservedCursor<'a> {
    inner: PlanCursor<'a>,
    tx: &'a rl_fdb::Transaction,
    tag: String,
    rows: u64,
    start: rl_fdb::transaction::TxnTrace,
    start_us: u64,
}

impl<'a> ObservedCursor<'a> {
    pub(crate) fn new(
        inner: PlanCursor<'a>,
        store: &RecordStore<'a>,
        path: &str,
    ) -> ObservedCursor<'a> {
        let mut tag = String::with_capacity(store.subspace().prefix().len() * 2 + path.len() + 1);
        for b in store.subspace().prefix() {
            tag.push_str(&format!("{b:02x}"));
        }
        tag.push(':');
        tag.push_str(path);
        let tx = store.transaction();
        ObservedCursor {
            inner,
            tx,
            tag,
            rows: 0,
            start: tx.trace(),
            start_us: rl_obs::now_us(),
        }
    }
}

impl RecordCursor for ObservedCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        let result = self.inner.next()?;
        if matches!(result, CursorResult::Next { .. }) {
            self.rows += 1;
        }
        Ok(result)
    }
}

impl Drop for ObservedCursor<'_> {
    fn drop(&mut self) {
        let end = self.tx.trace();
        rl_obs::push_span(rl_obs::Span {
            op: "plan_node",
            tag: std::mem::take(&mut self.tag),
            start_us: self.start_us,
            dur_us: rl_obs::now_us().saturating_sub(self.start_us),
            counters: vec![
                ("rows", self.rows),
                (
                    "keys_read",
                    end.keys_read.saturating_sub(self.start.keys_read),
                ),
                ("read_ops", end.read_ops.saturating_sub(self.start.read_ops)),
                (
                    "record_fetches",
                    end.record_fetches.saturating_sub(self.start.record_fetches),
                ),
            ],
        });
    }
}

// ------------------------------------------------------ residual filtering

pub(crate) struct FilteredRecordCursor<'a> {
    pub(crate) inner: Box<dyn RecordCursor<Item = StoredRecord> + 'a>,
    pub(crate) record_types: Option<BTreeSet<String>>,
    pub(crate) residual: Option<QueryComponent>,
}

impl RecordCursor for FilteredRecordCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            match self.inner.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    if let Some(types) = &self.record_types {
                        if !types.contains(&value.record_type) {
                            continue;
                        }
                    }
                    if let Some(residual) = &self.residual {
                        if !residual.eval(&value.record_type, &value.message)? {
                            continue;
                        }
                    }
                    return Ok(CursorResult::Next {
                        value,
                        continuation,
                    });
                }
                stop @ CursorResult::NoNext { .. } => return Ok(stop),
            }
        }
    }
}

// -------------------------------------------------------- the primary fetch

/// Scans index keys and fetches the indexed records (the "primary fetch").
pub(crate) struct IndexFetchCursor<'a> {
    pub(crate) store: RecordStore<'a>,
    pub(crate) kv: KeyValueCursor<'a>,
    pub(crate) subspace: Subspace,
    pub(crate) key_columns: usize,
    pub(crate) record_types: Option<BTreeSet<String>>,
    pub(crate) residual: Option<QueryComponent>,
}

impl RecordCursor for IndexFetchCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            match self.kv.next()? {
                CursorResult::Next {
                    value: kv,
                    continuation,
                } => {
                    let t = self.subspace.unpack(&kv.key).map_err(Error::Fdb)?;
                    let pk = t.suffix(self.key_columns);
                    let Some(record) = self.store.load_record(&pk)? else {
                        continue; // index entry racing a delete
                    };
                    if let Some(types) = &self.record_types {
                        if !types.contains(&record.record_type) {
                            continue;
                        }
                    }
                    if let Some(residual) = &self.residual {
                        if !residual.eval(&record.record_type, &record.message)? {
                            continue;
                        }
                    }
                    return Ok(CursorResult::Next {
                        value: record,
                        continuation,
                    });
                }
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => {
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation,
                    })
                }
            }
        }
    }
}

// ---------------------------------------------------------- covering scans

/// Convert a tuple element back into a message value of the field's
/// declared type (the inverse of `value_to_element`, §4 covering indexes).
fn element_to_value(field_type: &FieldType, el: &TupleElement) -> Result<Value> {
    let mismatch = || {
        Error::KeyExpression(format!(
            "covering scan cannot rebuild a {field_type:?} field from {el:?}"
        ))
    };
    Ok(match (field_type, el) {
        (FieldType::Int32 | FieldType::SInt32 | FieldType::SFixed32, TupleElement::Int(v)) => {
            Value::I32(i32::try_from(*v).map_err(|_| mismatch())?)
        }
        (FieldType::Int64 | FieldType::SInt64 | FieldType::SFixed64, TupleElement::Int(v)) => {
            Value::I64(*v)
        }
        (FieldType::UInt32 | FieldType::Fixed32, TupleElement::Int(v)) => {
            Value::U32(u32::try_from(*v).map_err(|_| mismatch())?)
        }
        (FieldType::UInt64 | FieldType::Fixed64, TupleElement::Int(v)) => {
            Value::U64(u64::try_from(*v).map_err(|_| mismatch())?)
        }
        (FieldType::Float, TupleElement::Float(v)) => Value::F32(*v),
        (FieldType::Double, TupleElement::Double(v)) => Value::F64(*v),
        (FieldType::Bool, TupleElement::Bool(v)) => Value::Bool(*v),
        (FieldType::String, TupleElement::String(s)) => Value::String(s.clone()),
        (FieldType::Bytes, TupleElement::Bytes(b)) => Value::Bytes(b.clone()),
        (FieldType::Enum(_), TupleElement::Int(v)) => {
            Value::Enum(i32::try_from(*v).map_err(|_| mismatch())?)
        }
        _ => return Err(mismatch()),
    })
}

/// Build a partial [`StoredRecord`] from one index entry's columns plus the
/// primary key, without touching the record subspace.
pub(crate) fn synthesize_record(
    metadata: &RecordMetaData,
    record_type: &str,
    fields: &[CoveredField],
    entry_cols: &Tuple,
    primary_key: &Tuple,
) -> Result<StoredRecord> {
    let desc = metadata
        .pool()
        .message(record_type)
        .ok_or_else(|| Error::UnknownRecordType(record_type.to_string()))?;
    let mut message = DynamicMessage::new(desc);
    for f in fields {
        let el = match f.source {
            CoveredSource::Entry(i) => entry_cols.get(i),
            CoveredSource::PrimaryKey(i) => primary_key.get(i),
        };
        let Some(el) = el else { continue };
        if matches!(el, TupleElement::Null) {
            continue; // unset field
        }
        let field_type = message
            .descriptor()
            .field_by_name(&f.field)
            .ok_or_else(|| Error::KeyExpression(format!("no field {} on {record_type}", f.field)))?
            .field_type
            .clone();
        let value = element_to_value(&field_type, el)?;
        message.set(&f.field, value)?;
    }
    Ok(StoredRecord {
        primary_key: primary_key.clone(),
        record_type: record_type.to_string(),
        message,
        version: None,
        split_count: 1,
    })
}

/// Streams index entries and synthesizes partial records from them. Never
/// reads the record subspace: `MetricsSnapshot::record_fetches` stays flat
/// while this cursor runs.
pub(crate) struct CoveringScanCursor<'a> {
    pub(crate) kv: KeyValueCursor<'a>,
    pub(crate) subspace: Subspace,
    pub(crate) key_columns: usize,
    pub(crate) metadata: &'a RecordMetaData,
    pub(crate) record_type: String,
    pub(crate) fields: Vec<CoveredField>,
}

impl RecordCursor for CoveringScanCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        match self.kv.next()? {
            CursorResult::Next {
                value: kv,
                continuation,
            } => {
                let t = self.subspace.unpack(&kv.key).map_err(Error::Fdb)?;
                let key_cols = t.prefix(self.key_columns);
                let pk = t.suffix(self.key_columns);
                let value_cols = if kv.value.is_empty() {
                    Tuple::new()
                } else {
                    Tuple::unpack(&kv.value).map_err(Error::Fdb)?
                };
                let entry_cols = key_cols.concat(&value_cols);
                let record = synthesize_record(
                    self.metadata,
                    &self.record_type,
                    &self.fields,
                    &entry_cols,
                    &pk,
                )?;
                Ok(CursorResult::Next {
                    value: record,
                    continuation,
                })
            }
            CursorResult::NoNext {
                reason,
                continuation,
            } => Ok(CursorResult::NoNext {
                reason,
                continuation,
            }),
        }
    }
}

// ------------------------------------------------------------------ union

/// Sequentially executes union branches, deduplicating by primary key.
/// The continuation encodes `(branch, inner continuation, seen pks)` so a
/// resumed union never returns a duplicate.
pub(crate) struct UnionCursor<'a> {
    children: Vec<RecordQueryPlan>,
    store: RecordStore<'a>,
    props: ExecuteProperties,
    /// This union node's plan-tree path; branch `i` executes as
    /// `"{base_path}.{i}"`.
    base_path: String,
    branch: usize,
    current: PlanCursor<'a>,
    seen: BTreeSet<Vec<u8>>,
}

impl<'a> UnionCursor<'a> {
    pub(crate) fn create(
        children: &[RecordQueryPlan],
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
        path: &str,
    ) -> Result<PlanCursor<'a>> {
        let (branch, inner, seen) = match continuation {
            Continuation::Start => (0usize, Continuation::Start, BTreeSet::new()),
            Continuation::End => (children.len(), Continuation::End, BTreeSet::new()),
            Continuation::At(bytes) => {
                let t = Tuple::unpack(bytes)
                    .map_err(|e| Error::InvalidContinuation(format!("union: {e}")))?;
                let branch = t
                    .get(0)
                    .and_then(TupleElement::as_int)
                    .ok_or_else(|| Error::InvalidContinuation("union branch".into()))?
                    as usize;
                let inner = Continuation::from_bytes(
                    t.get(1)
                        .and_then(TupleElement::as_bytes)
                        .ok_or_else(|| Error::InvalidContinuation("union inner".into()))?,
                )?;
                let seen = t
                    .get(2)
                    .and_then(TupleElement::as_tuple)
                    .map(|seen_t| {
                        seen_t
                            .elements()
                            .iter()
                            .filter_map(|e| e.as_bytes().map(<[u8]>::to_vec))
                            .collect()
                    })
                    .unwrap_or_default();
                (branch, inner, seen)
            }
        };
        let current: PlanCursor<'a> = if branch < children.len() {
            children[branch].execute_inner(store, &inner, props, &format!("{path}.{branch}"))?
        } else {
            Box::new(crate::cursor::ListCursor::new(
                Vec::new(),
                &Continuation::Start,
            )?)
        };
        Ok(Box::new(UnionCursor {
            children: children.to_vec(),
            store: store.clone_handle(),
            props: props.clone(),
            base_path: path.to_string(),
            branch,
            current,
            seen,
        }))
    }

    fn encode_continuation(&self, inner: &Continuation) -> Continuation {
        let mut seen_t = Tuple::new();
        for pk in &self.seen {
            seen_t.add(pk.clone());
        }
        Continuation::At(
            Tuple::new()
                .push(self.branch as i64)
                .push(inner.to_bytes())
                .push(seen_t)
                .pack(),
        )
    }
}

impl RecordCursor for UnionCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        loop {
            if self.branch >= self.children.len() {
                return Ok(CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    continuation: Continuation::End,
                });
            }
            match self.current.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    let pk = value.primary_key.pack();
                    if self.seen.insert(pk) {
                        let cont = self.encode_continuation(&continuation);
                        return Ok(CursorResult::Next {
                            value,
                            continuation: cont,
                        });
                    }
                }
                CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    ..
                } => {
                    self.branch += 1;
                    if self.branch < self.children.len() {
                        self.current = self.children[self.branch].execute_inner(
                            &self.store,
                            &Continuation::Start,
                            &self.props,
                            &format!("{}.{}", self.base_path, self.branch),
                        )?;
                    }
                }
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => {
                    let cont = self.encode_continuation(&continuation);
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation: cont,
                    });
                }
            }
        }
    }
}

// ------------------------------------------------- streaming intersection

/// One child of the merge-join: either a raw index-entry stream (primary
/// keys read straight off entry keys, no record fetch) or a full record
/// stream (for children that must filter or assemble records themselves).
enum ChildStream<'a> {
    Entries {
        kv: KeyValueCursor<'a>,
        subspace: Subspace,
        key_columns: usize,
        record_types: Option<BTreeSet<String>>,
    },
    Records(PlanCursor<'a>),
}

/// The unconsumed head of one child stream.
struct Head {
    pk_bytes: Vec<u8>,
    pk: Tuple,
    record: Option<StoredRecord>,
    /// Continuation resuming *after* this head.
    after: Continuation,
}

struct IntersectChild<'a> {
    stream: ChildStream<'a>,
    head: Option<Head>,
}

enum Pulled {
    Head,
    Exhausted,
    Stopped(NoNextReason),
}

/// Streaming intersection: merge-joins children ordered by primary key.
///
/// Replaces the old buffer-all-but-one strategy, which materialized entire
/// branches in memory and *errored* when a scan limit fired mid-buffer.
/// Here a limit simply stops the merge; the composite continuation (a
/// tuple of every child's continuation) resumes it exactly where each
/// child stood, honoring the paper's resumability contract.
///
/// Children must stream in primary-key order. The planner guarantees this
/// by only building equality-bounded index scans (entries under one
/// equality prefix are ordered by the appended primary key) and full
/// scans (the record extent is primary-key ordered).
///
/// Liveness note: a resumed intersection re-reads each child's unconsumed
/// head, so forward progress across transactions requires a scan budget of
/// at least one entry per child.
pub(crate) struct IntersectionCursor<'a> {
    children: Vec<IntersectChild<'a>>,
    store: RecordStore<'a>,
    /// Per-child continuation that re-reads any unconsumed head.
    resume: Vec<Continuation>,
    done: bool,
}

impl<'a> IntersectionCursor<'a> {
    pub(crate) fn create(
        children: &[RecordQueryPlan],
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
        path: &str,
    ) -> Result<PlanCursor<'a>> {
        let (child_conts, done) = match continuation {
            Continuation::Start => (vec![Continuation::Start; children.len()], false),
            Continuation::End => (vec![Continuation::End; children.len()], true),
            Continuation::At(bytes) => {
                let t = Tuple::unpack(bytes)
                    .map_err(|e| Error::InvalidContinuation(format!("intersection: {e}")))?;
                if t.len() != children.len() {
                    return Err(Error::InvalidContinuation(format!(
                        "intersection: {} child positions for {} children",
                        t.len(),
                        children.len()
                    )));
                }
                let mut conts = Vec::with_capacity(children.len());
                for el in t.elements() {
                    let bytes = el.as_bytes().ok_or_else(|| {
                        Error::InvalidContinuation("intersection child position".into())
                    })?;
                    conts.push(Continuation::from_bytes(bytes)?);
                }
                (conts, false)
            }
        };

        let mut built = Vec::with_capacity(children.len());
        for (i, (child, cont)) in children.iter().zip(&child_conts).enumerate() {
            built.push(IntersectChild {
                stream: Self::child_stream(child, store, cont, props, &format!("{path}.{i}"))?,
                head: None,
            });
        }
        Ok(Box::new(IntersectionCursor {
            children: built,
            store: store.clone_handle(),
            resume: child_conts,
            done,
        }))
    }

    /// Build the cheapest primary-key-ordered stream for one child. The
    /// raw-entry fast path bypasses `execute_inner`, so those children
    /// emit no `plan_node` span (their reads fold into the enclosing
    /// intersection's deltas); `path` tags the record-stream fallback.
    fn child_stream(
        child: &RecordQueryPlan,
        store: &RecordStore<'a>,
        continuation: &Continuation,
        props: &ExecuteProperties,
        path: &str,
    ) -> Result<ChildStream<'a>> {
        if let RecordQueryPlan::IndexScan {
            index_name,
            bounds,
            reverse: false,
            record_types,
            residual: None,
        } = child
        {
            let index = store.require_readable(index_name)?;
            let key_columns = index.key_expression.key_column_count();
            // Entries stream in pk order only when the equality prefix
            // pins every key column.
            if bounds
                .equality_prefix()
                .is_some_and(|eq| eq.len() >= key_columns)
            {
                let subspace = store.index_subspace(index);
                let (begin, end) = bounds.to_byte_range(&subspace);
                let kv = KeyValueCursor::new(
                    store.transaction(),
                    begin,
                    end,
                    false,
                    props.snapshot,
                    props.limiter(),
                    continuation,
                )?;
                return Ok(ChildStream::Entries {
                    kv,
                    subspace,
                    key_columns,
                    record_types: record_types.clone(),
                });
            }
        }
        let ordered = match child {
            RecordQueryPlan::FullScan { reverse: false, .. } => true,
            RecordQueryPlan::IndexScan {
                index_name,
                bounds,
                reverse: false,
                ..
            }
            | RecordQueryPlan::CoveringIndexScan {
                index_name,
                bounds,
                reverse: false,
                ..
            } => {
                // Entries are ordered (key columns, pk): the stream is in
                // pk order only when equality pins every key column.
                let key_columns = store
                    .metadata()
                    .index(index_name)?
                    .key_expression
                    .key_column_count();
                bounds
                    .equality_prefix()
                    .is_some_and(|eq| eq.len() >= key_columns)
            }
            RecordQueryPlan::Intersection { .. } => true, // merge preserves order
            _ => false,
        };
        if !ordered {
            return Err(Error::Unplannable(
                "intersection children must stream in primary-key order".into(),
            ));
        }
        Ok(ChildStream::Records(child.execute_inner(
            store,
            continuation,
            props,
            path,
        )?))
    }

    /// Pull the next head for child `i`.
    fn pull(&mut self, i: usize) -> Result<Pulled> {
        let child = &mut self.children[i];
        match &mut child.stream {
            ChildStream::Entries {
                kv,
                subspace,
                key_columns,
                ..
            } => match kv.next()? {
                CursorResult::Next {
                    value: kv_pair,
                    continuation,
                } => {
                    let t = subspace.unpack(&kv_pair.key).map_err(Error::Fdb)?;
                    let pk = t.suffix(*key_columns);
                    child.head = Some(Head {
                        pk_bytes: pk.pack(),
                        pk,
                        record: None,
                        after: continuation,
                    });
                    Ok(Pulled::Head)
                }
                CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    ..
                } => Ok(Pulled::Exhausted),
                CursorResult::NoNext { reason, .. } => Ok(Pulled::Stopped(reason)),
            },
            ChildStream::Records(cursor) => match cursor.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    child.head = Some(Head {
                        pk_bytes: value.primary_key.pack(),
                        pk: value.primary_key.clone(),
                        record: Some(value),
                        after: continuation,
                    });
                    Ok(Pulled::Head)
                }
                CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    ..
                } => Ok(Pulled::Exhausted),
                CursorResult::NoNext { reason, .. } => Ok(Pulled::Stopped(reason)),
            },
        }
    }

    /// The composite continuation: one position per child, each re-reading
    /// that child's unconsumed head (if any).
    fn composite(&self) -> Continuation {
        let mut t = Tuple::new();
        for c in &self.resume {
            t.add(c.to_bytes());
        }
        Continuation::At(t.pack())
    }

    /// Record-type constraints carried by entry streams are checked on the
    /// fetched record (entry keys alone cannot reveal the type).
    fn type_ok(&self, record: &StoredRecord) -> bool {
        self.children.iter().all(|c| match &c.stream {
            ChildStream::Entries {
                record_types: Some(types),
                ..
            } => types.contains(&record.record_type),
            _ => true,
        })
    }
}

impl RecordCursor for IntersectionCursor<'_> {
    type Item = StoredRecord;

    fn next(&mut self) -> Result<CursorResult<StoredRecord>> {
        if self.done || self.children.is_empty() {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::SourceExhausted,
                continuation: Continuation::End,
            });
        }
        loop {
            // Fill every empty head slot.
            for i in 0..self.children.len() {
                if self.children[i].head.is_none() {
                    match self.pull(i)? {
                        Pulled::Head => {}
                        Pulled::Exhausted => {
                            // One child ran dry: no further matches exist.
                            self.done = true;
                            return Ok(CursorResult::NoNext {
                                reason: NoNextReason::SourceExhausted,
                                continuation: Continuation::End,
                            });
                        }
                        Pulled::Stopped(reason) => {
                            return Ok(CursorResult::NoNext {
                                reason,
                                continuation: self.composite(),
                            });
                        }
                    }
                }
            }
            // Advance every child strictly below the current maximum.
            let max = self
                .children
                .iter()
                .map(|c| c.head.as_ref().unwrap().pk_bytes.clone())
                .max()
                .unwrap();
            let mut all_equal = true;
            for (i, child) in self.children.iter_mut().enumerate() {
                if child.head.as_ref().unwrap().pk_bytes < max {
                    let head = child.head.take().unwrap();
                    self.resume[i] = head.after;
                    all_equal = false;
                }
            }
            if !all_equal {
                continue;
            }
            // All heads agree: consume them and emit the record.
            let mut pk = None;
            let mut carried = None;
            for (i, child) in self.children.iter_mut().enumerate() {
                let head = child.head.take().unwrap();
                self.resume[i] = head.after;
                if carried.is_none() {
                    carried = head.record;
                }
                pk = Some(head.pk);
            }
            let pk = pk.unwrap();
            let record = match carried {
                Some(r) => Some(r),
                None => self.store.load_record(&pk)?,
            };
            let Some(record) = record else {
                continue; // entry racing a delete
            };
            if !self.type_ok(&record) {
                continue;
            }
            return Ok(CursorResult::Next {
                value: record,
                continuation: self.composite(),
            });
        }
    }
}
