//! Query planning and execution (Appendix C), structured as a module tree:
//!
//! * [`ir`] — the plan intermediate representation: [`RecordQueryPlan`]
//!   nodes as plain data. Plans are cacheable and re-executable with bound
//!   continuations, the moral equivalent of a SQL `PREPARE` statement.
//! * [`cost`] — the cardinality-based cost model. Plan choice is driven by
//!   *persistent per-index statistics* maintained by the store's write
//!   path (atomic entry counters), not by guessed scores.
//! * [`planner`] — candidate enumeration and pruning: the
//!   [`RecordQueryPlanner`] matches filters against index key expressions,
//!   proposes index scans, covering scans, unions and intersections, and
//!   keeps the cheapest plan under the cost model.
//! * [`execute`] — turns a plan into a tree of streaming cursors.
//! * [`cursors`] — the plan-level cursors: residual filtering, the primary
//!   fetch, covering-scan record synthesis, distinct union, and the
//!   streaming (merge-join) intersection.
//!
//! The Cascades-style rewrite engine (Appendix C "future directions")
//! remains future work; the cost model here is the stepping stone the
//! paper describes for it.

pub mod cost;
pub mod cursors;
mod execute;
pub mod ir;
mod planner;

pub use cost::{CostEstimate, CostModel, StatisticsSource};
pub use cursors::{BoxedCursorExt, PlanCursor};
pub use ir::{CoveredField, CoveredSource, RecordQueryPlan, ScanBounds};
pub use planner::RecordQueryPlanner;
