//! The cost-based query planner.
//!
//! Candidate enumeration is structural — match the filter's conjuncts
//! against every readable VALUE index's key expression, propose unions for
//! top-level ORs, intersections for ANDs served by several single-column
//! indexes, text scans for text predicates — and the choice among
//! candidates is driven by the [`CostModel`]: when the planner holds a
//! store handle (via [`RecordQueryPlanner::with_statistics`]) the model
//! costs each candidate with the store's *persistent* per-index entry
//! counts; otherwise it falls back to fixed default cardinalities.
//!
//! Two structural upgrades happen after matching:
//!
//! * **Covering scans** — when the query declares its required fields and
//!   an index's key (plus the primary key) covers them all with no
//!   residual, the index scan is rewritten to a
//!   [`RecordQueryPlan::CoveringIndexScan`], which skips the record fetch
//!   entirely.
//! * **Sort enforcement** — a requested sort must be served by an index or
//!   the primary key (§3.1: the layer never sorts in memory).

use std::collections::{BTreeMap, BTreeSet};

use rl_fdb::tuple::{Tuple, TupleElement};

use crate::error::{Error, Result};
use crate::expr::{FanType, KeyExpression, KeyPart};
use crate::metadata::{IndexType, RecordMetaData};
use crate::query::{Comparison, QueryComponent, RecordQuery};
use crate::store::TupleRange;

use super::cost::{CostModel, StatisticsSource};
use super::ir::{CoveredField, CoveredSource, RecordQueryPlan, ScanBounds};

/// The planner: metadata plus (optionally) live statistics.
pub struct RecordQueryPlanner<'m> {
    metadata: &'m RecordMetaData,
    stats: Option<&'m dyn StatisticsSource>,
}

/// One sargable conjunct extracted from the filter.
#[derive(Debug, Clone)]
struct Conjunct {
    component: QueryComponent,
    /// Field path + fan type for index matching, when extractable.
    path: Option<(Vec<String>, FanType)>,
    comparison: Option<Comparison>,
}

impl<'m> RecordQueryPlanner<'m> {
    pub fn new(metadata: &'m RecordMetaData) -> Self {
        RecordQueryPlanner {
            metadata,
            stats: None,
        }
    }

    /// Drive plan choice from live statistics — typically the
    /// [`crate::store::RecordStore`] the plan will execute against, whose
    /// write path maintains per-index entry counts.
    pub fn with_statistics(mut self, stats: &'m dyn StatisticsSource) -> Self {
        self.stats = Some(stats);
        self
    }

    fn cost_model(&self) -> CostModel<'_> {
        match self.stats {
            Some(s) => CostModel::with_statistics(s),
            None => CostModel::new(),
        }
    }

    /// Plan a query. Fails with [`Error::UnsupportedSort`] when a requested
    /// sort has no supporting index (§3.1: no in-memory sorts).
    pub fn plan(&self, query: &RecordQuery) -> Result<RecordQueryPlan> {
        let _t = rl_obs::Timer::start("plan");
        let types: Option<BTreeSet<String>> = if query.record_types.is_empty() {
            None
        } else {
            Some(query.record_types.iter().cloned().collect())
        };

        // OR at the top level: union the branch plans when each branch is
        // independently index-plannable.
        if let Some(QueryComponent::Or(branches)) = &query.filter {
            if query.sort.is_none() {
                let mut children = Vec::new();
                let mut all_indexed = true;
                for branch in branches {
                    let sub = RecordQuery {
                        record_types: query.record_types.clone(),
                        filter: Some(branch.clone()),
                        sort: None,
                        sort_reverse: false,
                        required_fields: query.required_fields.clone(),
                    };
                    match self.plan(&sub)? {
                        plan @ (RecordQueryPlan::IndexScan { .. }
                        | RecordQueryPlan::CoveringIndexScan { .. }
                        | RecordQueryPlan::TextScan { .. }) => children.push(plan),
                        _ => {
                            all_indexed = false;
                            break;
                        }
                    }
                }
                if all_indexed && !children.is_empty() {
                    return Ok(RecordQueryPlan::Union { children });
                }
            }
        }

        let conjuncts = Self::conjuncts(query.filter.as_ref());
        let model = self.cost_model();
        let mut best: Option<(f64, RecordQueryPlan)> = None;
        let mut consider = |plan: RecordQueryPlan| {
            let cost = model.estimate(&plan).cost;
            // Strictly-cheaper replacement: ties keep the earlier
            // candidate, preserving deterministic index-name order.
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, plan));
            }
        };

        // Every readable VALUE index is a candidate.
        for index in self.metadata.indexes() {
            if index.index_type != IndexType::Value {
                continue;
            }
            if !self.index_covers_types(index, &types) {
                continue;
            }
            let Some(parts) = index.key_expression.flatten() else {
                continue;
            };
            if let Some(plan) = self.match_index(index, &parts, &conjuncts, query, &types)? {
                let plan = match self.try_covering(index, &plan, query, &types) {
                    Some(covering) => covering,
                    None => plan,
                };
                consider(plan);
            }
        }
        if query.sort.is_none() {
            // An intersection of single-column index scans can serve large
            // ANDs no single index covers.
            if let Some(plan) = self.plan_intersection(&conjuncts, &types)? {
                consider(plan);
            }
            // Text predicates: serve from a TEXT index when available.
            if let Some(plan) = self.plan_text(&conjuncts, &types)? {
                consider(plan);
            }
        }
        if let Some((_, plan)) = best {
            return Ok(plan);
        }

        // Sort requested but no index matched: maybe the primary key
        // supports it (full scan is pk-ordered); else unsupported.
        if let Some(sort) = &query.sort {
            if self.primary_key_satisfies_sort(&types, sort) {
                return Ok(RecordQueryPlan::FullScan {
                    record_types: types,
                    residual: query.filter.clone(),
                    reverse: query.sort_reverse,
                });
            }
            return Err(Error::UnsupportedSort(format!(
                "no readable index supports sort {sort:?}; the layer does not sort in memory"
            )));
        }

        Ok(RecordQueryPlan::FullScan {
            record_types: types,
            residual: query.filter.clone(),
            reverse: false,
        })
    }

    fn conjuncts(filter: Option<&QueryComponent>) -> Vec<Conjunct> {
        let mut out = Vec::new();
        let mut stack: Vec<&QueryComponent> = Vec::new();
        if let Some(f) = filter {
            match f {
                QueryComponent::And(parts) => stack.extend(parts.iter()),
                other => stack.push(other),
            }
        }
        for component in stack {
            let (path, comparison) = match component {
                QueryComponent::Field { path, comparison } => (
                    Some((path.clone(), FanType::Scalar)),
                    Some(comparison.clone()),
                ),
                QueryComponent::OneOfThem { field, comparison } => (
                    Some((vec![field.clone()], FanType::Fanout)),
                    Some(comparison.clone()),
                ),
                _ => (None, None),
            };
            out.push(Conjunct {
                component: component.clone(),
                path,
                comparison,
            });
        }
        out
    }

    fn index_covers_types(
        &self,
        index: &crate::metadata::Index,
        types: &Option<BTreeSet<String>>,
    ) -> bool {
        match types {
            None => index.record_types.is_empty(), // all-types query needs a universal index
            Some(ts) => ts.iter().all(|t| index.applies_to(t)),
        }
    }

    /// Match one VALUE index against the conjuncts: greedily consume an
    /// equality prefix along the index's columns, then one range/prefix
    /// comparison on the next column; everything unconsumed becomes a
    /// residual filter. Returns `None` when the index serves neither a
    /// conjunct nor the requested sort.
    fn match_index(
        &self,
        index: &crate::metadata::Index,
        parts: &[KeyPart],
        conjuncts: &[Conjunct],
        query: &RecordQuery,
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<RecordQueryPlan>> {
        let mut consumed = vec![false; conjuncts.len()];
        let mut eq_prefix = Tuple::new();
        let mut eq_count = 0usize;

        // Greedily consume equality conjuncts along the index's columns.
        for part in parts {
            let KeyPart::Field { path, fan_type } = part else {
                break;
            };
            let found = conjuncts.iter().enumerate().find(|(i, c)| {
                !consumed[*i]
                    && c.path
                        .as_ref()
                        .is_some_and(|(p, ft)| p == path && ft == fan_type)
                    && matches!(c.comparison, Some(Comparison::Equals(_)))
            });
            match found {
                Some((i, c)) => {
                    if let Some(Comparison::Equals(v)) = &c.comparison {
                        eq_prefix.add(v.clone());
                    }
                    consumed[i] = true;
                    eq_count += 1;
                }
                None => break,
            }
        }

        // One range/prefix comparison on the next column.
        let mut bounds = ScanBounds::Range(TupleRange::prefix(eq_prefix.clone()));
        let mut range_count = 0usize;
        if let Some(KeyPart::Field { path, fan_type }) = parts.get(eq_count) {
            let mut low: Option<(TupleElement, bool)> = None;
            let mut high: Option<(TupleElement, bool)> = None;
            let mut string_prefix: Option<String> = None;
            // Consume a conjunct only when its bound slot is actually
            // used: a second lower bound, a second upper bound, or a
            // range mixed with a string prefix stays in the residual
            // filter — the scan keeps the first sargable bound per slot
            // and everything else is re-checked per record.
            for (i, c) in conjuncts.iter().enumerate() {
                if consumed[i] || c.path.as_ref().map(|(p, ft)| (p, *ft)) != Some((path, *fan_type))
                {
                    continue;
                }
                match &c.comparison {
                    Some(Comparison::GreaterThan(v))
                        if low.is_none() && string_prefix.is_none() =>
                    {
                        low = Some((v.clone(), false));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::GreaterThanOrEquals(v))
                        if low.is_none() && string_prefix.is_none() =>
                    {
                        low = Some((v.clone(), true));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::LessThan(v)) if high.is_none() && string_prefix.is_none() => {
                        high = Some((v.clone(), false));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::LessThanOrEquals(v))
                        if high.is_none() && string_prefix.is_none() =>
                    {
                        high = Some((v.clone(), true));
                        consumed[i] = true;
                        range_count += 1;
                    }
                    Some(Comparison::StartsWith(p))
                        if string_prefix.is_none() && low.is_none() && high.is_none() =>
                    {
                        string_prefix = Some(p.clone());
                        consumed[i] = true;
                        range_count += 1;
                    }
                    _ => {}
                }
            }
            if let Some(prefix) = string_prefix {
                bounds = ScanBounds::StringPrefix {
                    prefix_cols: eq_prefix.clone(),
                    prefix,
                };
            } else if low.is_some() || high.is_some() {
                let low_t = low.map(|(el, incl)| (eq_prefix.clone().push(el), incl));
                let high_t = high.map(|(el, incl)| (eq_prefix.clone().push(el), incl));
                bounds = ScanBounds::Range(TupleRange {
                    low: low_t.or_else(|| Some((eq_prefix.clone(), true))),
                    high: high_t.or_else(|| Some((eq_prefix.clone(), true))),
                });
            }
        }

        let matched = eq_count + range_count;

        // Sort satisfaction: the index's column order after the equality
        // prefix (or from the start) must begin with the sort columns.
        let mut reverse = false;
        if let Some(sort) = &query.sort {
            let Some(sort_parts) = sort.flatten() else {
                return Ok(None);
            };
            let tail = &parts[eq_count.min(parts.len())..];
            let satisfies = tail.len() >= sort_parts.len()
                && tail[..sort_parts.len()] == sort_parts[..]
                || parts.len() >= sort_parts.len() && parts[..sort_parts.len()] == sort_parts[..];
            if !satisfies {
                return Ok(None);
            }
            reverse = query.sort_reverse;
        } else if matched == 0 {
            return Ok(None);
        }

        // Residual: everything not consumed.
        let residual_parts: Vec<QueryComponent> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed[*i])
            .map(|(_, c)| c.component.clone())
            .collect();
        let residual = match residual_parts.len() {
            0 => None,
            1 => Some(residual_parts.into_iter().next().unwrap()),
            _ => Some(QueryComponent::And(residual_parts)),
        };

        Ok(Some(RecordQueryPlan::IndexScan {
            index_name: index.name.clone(),
            bounds,
            reverse,
            record_types: types.clone(),
            residual,
        }))
    }

    /// Upgrade an index scan to a covering scan when the index key plus
    /// the primary key covers every required field with no residual.
    fn try_covering(
        &self,
        index: &crate::metadata::Index,
        plan: &RecordQueryPlan,
        query: &RecordQuery,
        types: &Option<BTreeSet<String>>,
    ) -> Option<RecordQueryPlan> {
        let RecordQueryPlan::IndexScan {
            index_name,
            bounds,
            reverse,
            residual: None,
            ..
        } = plan
        else {
            return None;
        };
        if query.required_fields.is_empty() {
            return None;
        }
        // Synthesis needs one concrete record type, and the index must be
        // restricted to exactly that type: a multi-type index's entries
        // cannot be told apart without fetching the record.
        let record_type = match types {
            Some(ts) if ts.len() == 1 => ts.iter().next().unwrap().clone(),
            _ => return None,
        };
        if index.record_types.len() != 1 || !index.record_types.contains(&record_type) {
            return None;
        }
        // Sparse (filtered) indexes omit records; only residual-free exact
        // matches got here, but a filtered index may omit matching records
        // too — still fine: the scan bounds already determined membership.
        // What we cannot do is synthesize from non-scalar or nested parts.
        let parts = index.key_expression.flatten()?;
        let mut fields: BTreeMap<String, CoveredSource> = BTreeMap::new();
        for (i, part) in parts.iter().enumerate() {
            match part {
                KeyPart::Field { path, fan_type }
                    if *fan_type == FanType::Scalar && path.len() == 1 =>
                {
                    fields
                        .entry(path[0].clone())
                        .or_insert(CoveredSource::Entry(i));
                }
                _ => return None,
            }
        }
        let rt = self.metadata.record_type(&record_type).ok()?;
        if let Some(pk_parts) = rt.primary_key.flatten() {
            for (i, part) in pk_parts.iter().enumerate() {
                if let KeyPart::Field { path, fan_type } = part {
                    if *fan_type == FanType::Scalar && path.len() == 1 {
                        fields
                            .entry(path[0].clone())
                            .or_insert(CoveredSource::PrimaryKey(i));
                    }
                }
            }
        }
        if !query.required_fields.iter().all(|f| fields.contains_key(f)) {
            return None;
        }
        Some(RecordQueryPlan::CoveringIndexScan {
            index_name: index_name.clone(),
            bounds: bounds.clone(),
            reverse: *reverse,
            record_type,
            fields: fields
                .into_iter()
                .map(|(field, source)| CoveredField { field, source })
                .collect(),
        })
    }

    fn primary_key_satisfies_sort(
        &self,
        types: &Option<BTreeSet<String>>,
        sort: &KeyExpression,
    ) -> bool {
        let Some(sort_parts) = sort.flatten() else {
            return false;
        };
        let mut candidates: Vec<&crate::metadata::RecordType> = Vec::new();
        match types {
            Some(ts) => {
                for t in ts {
                    match self.metadata.record_type(t) {
                        Ok(rt) => candidates.push(rt),
                        Err(_) => return false,
                    }
                }
            }
            None => candidates.extend(self.metadata.record_types()),
        }
        candidates.iter().all(|rt| {
            rt.primary_key.flatten().is_some_and(|pk| {
                pk.len() >= sort_parts.len() && pk[..sort_parts.len()] == sort_parts[..]
            })
        })
    }

    fn plan_text(
        &self,
        conjuncts: &[Conjunct],
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<RecordQueryPlan>> {
        for (i, c) in conjuncts.iter().enumerate() {
            let Some(Comparison::Text(cmp)) = &c.comparison else {
                continue;
            };
            let Some((path, _)) = &c.path else { continue };
            for index in self.metadata.indexes() {
                if index.index_type != IndexType::Text || !self.index_covers_types(index, types) {
                    continue;
                }
                let Some(parts) = index.key_expression.flatten() else {
                    continue;
                };
                let matches_field =
                    matches!(parts.first(), Some(KeyPart::Field { path: p, .. }) if p == path);
                if !matches_field {
                    continue;
                }
                let residual_parts: Vec<QueryComponent> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.component.clone())
                    .collect();
                let residual = match residual_parts.len() {
                    0 => None,
                    1 => Some(residual_parts.into_iter().next().unwrap()),
                    _ => Some(QueryComponent::And(residual_parts)),
                };
                return Ok(Some(RecordQueryPlan::TextScan {
                    index_name: index.name.clone(),
                    comparison: cmp.clone(),
                    record_types: types.clone(),
                    residual,
                }));
            }
        }
        Ok(None)
    }

    fn plan_intersection(
        &self,
        conjuncts: &[Conjunct],
        types: &Option<BTreeSet<String>>,
    ) -> Result<Option<RecordQueryPlan>> {
        // Equality conjuncts each served by a different single-column
        // index: the children stream in primary-key order (equality prefix
        // pins every key column), which the merge-join execution needs.
        let mut children = Vec::new();
        for c in conjuncts {
            let Some((path, fan)) = &c.path else { continue };
            if !matches!(c.comparison, Some(Comparison::Equals(_))) {
                continue;
            }
            for index in self.metadata.indexes() {
                if index.index_type != IndexType::Value || !self.index_covers_types(index, types) {
                    continue;
                }
                let Some(parts) = index.key_expression.flatten() else {
                    continue;
                };
                if parts.len() == 1
                    && matches!(&parts[0], KeyPart::Field { path: p, fan_type } if p == path && fan_type == fan)
                {
                    if let Some(Comparison::Equals(v)) = &c.comparison {
                        children.push(RecordQueryPlan::IndexScan {
                            index_name: index.name.clone(),
                            bounds: ScanBounds::Range(TupleRange::prefix(
                                Tuple::new().push(v.clone()),
                            )),
                            reverse: false,
                            record_types: types.clone(),
                            residual: None,
                        });
                    }
                    break;
                }
            }
        }
        if children.len() >= 2 && children.len() == conjuncts.len() {
            Ok(Some(RecordQueryPlan::Intersection { children }))
        } else {
            Ok(None)
        }
    }
}
