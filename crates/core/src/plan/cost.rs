//! The cardinality-based cost model.
//!
//! The paper's shipped planner ranks candidates with ad-hoc scores; its
//! "future directions" call for a cost-based rewrite engine. This module
//! is the first half of that move: every plan node gets a cost estimate
//! derived from *actual* per-index entry counts — persistent statistics
//! the store's write path maintains with conflict-free atomic ADD
//! mutations — falling back to fixed defaults when a store handle (and
//! thus statistics) is not available at planning time.
//!
//! Units are abstract "key visits": scanning one index entry costs
//! [`ENTRY_SCAN_COST`]; fetching one record by primary key costs
//! [`RECORD_FETCH_COST`] on top (a record is a separate range read of
//! version + payload chunks); a full-scan row costs [`RECORD_SCAN_COST`]
//! (payload read without an index hop). Covering scans pay only the entry
//! visit, which is exactly why the planner prefers them when an index
//! covers the query's required fields.

use crate::store::RecordStore;

use super::ir::{RecordQueryPlan, ScanBounds};

/// Fraction of an index assumed to survive one equality column when no
/// finer statistics exist.
pub const EQ_SELECTIVITY: f64 = 0.1;
/// Fraction assumed to survive a range comparison on the next column.
pub const RANGE_SELECTIVITY: f64 = 0.3;
/// Fraction assumed to survive a string-prefix comparison (tighter than a
/// range, looser than equality).
pub const PREFIX_SELECTIVITY: f64 = 0.15;
/// Fraction of a TEXT index's postings assumed to match a text predicate.
pub const TEXT_SELECTIVITY: f64 = 0.05;

/// Cost of visiting one index entry.
pub const ENTRY_SCAN_COST: f64 = 1.0;
/// Additional cost of fetching the record an index entry points at.
pub const RECORD_FETCH_COST: f64 = 4.0;
/// Cost of streaming one record out of the record extent directly.
pub const RECORD_SCAN_COST: f64 = 2.0;
/// Per-row overhead of union deduplication.
pub const DEDUP_COST: f64 = 0.1;

/// Entry/record count assumed when no statistics are available.
pub const DEFAULT_CARDINALITY: f64 = 1000.0;

/// A source of table and index cardinalities. [`RecordStore`] implements
/// this by reading the persistent statistics subspace at snapshot
/// isolation (advisory reads must not create conflicts on hot counters).
pub trait StatisticsSource {
    /// Number of entries in the named index, if known.
    fn index_entry_count(&self, index_name: &str) -> Option<u64>;
    /// Number of records in the store, if known.
    fn record_count(&self) -> Option<u64>;
}

impl StatisticsSource for RecordStore<'_> {
    fn index_entry_count(&self, index_name: &str) -> Option<u64> {
        RecordStore::index_entry_count(self, index_name)
            .ok()
            .flatten()
    }

    fn record_count(&self) -> Option<u64> {
        self.record_count_estimate().ok().flatten()
    }
}

/// The estimated work a plan performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Rows the plan is expected to produce (before residual filtering).
    pub rows: f64,
    /// Index entries visited.
    pub entries_scanned: f64,
    /// Records fetched from the record subspace.
    pub records_fetched: f64,
    /// Total abstract cost; the planner minimizes this.
    pub cost: f64,
}

/// Estimates plan costs from statistics (or defaults).
#[derive(Clone, Copy, Default)]
pub struct CostModel<'a> {
    stats: Option<&'a dyn StatisticsSource>,
}

impl<'a> CostModel<'a> {
    /// A model with no statistics: every index and table is assumed to
    /// hold [`DEFAULT_CARDINALITY`] entries.
    pub fn new() -> Self {
        CostModel { stats: None }
    }

    /// A model backed by live statistics (typically a [`RecordStore`]).
    pub fn with_statistics(stats: &'a dyn StatisticsSource) -> Self {
        CostModel { stats: Some(stats) }
    }

    fn index_entries(&self, index_name: &str) -> f64 {
        self.stats
            .and_then(|s| s.index_entry_count(index_name))
            .map(|n| n as f64)
            .unwrap_or(DEFAULT_CARDINALITY)
    }

    fn records(&self) -> f64 {
        self.stats
            .and_then(|s| s.record_count())
            .map(|n| n as f64)
            .unwrap_or(DEFAULT_CARDINALITY)
    }

    /// Fraction of an index expected to fall inside `bounds`.
    pub fn selectivity(bounds: &ScanBounds) -> f64 {
        match bounds {
            ScanBounds::StringPrefix { prefix_cols, .. } => {
                EQ_SELECTIVITY.powi(prefix_cols.len() as i32) * PREFIX_SELECTIVITY
            }
            ScanBounds::Range(r) => match (&r.low, &r.high) {
                (None, None) => 1.0,
                (Some((lo, _)), Some((hi, _))) => {
                    if lo == hi {
                        EQ_SELECTIVITY.powi(lo.len() as i32)
                    } else {
                        let eq_cols = lo
                            .elements()
                            .iter()
                            .zip(hi.elements())
                            .take_while(|(a, b)| a == b)
                            .count();
                        EQ_SELECTIVITY.powi(eq_cols as i32) * RANGE_SELECTIVITY
                    }
                }
                (Some((t, _)), None) | (None, Some((t, _))) => {
                    EQ_SELECTIVITY.powi(t.len().saturating_sub(1) as i32) * RANGE_SELECTIVITY
                }
            },
        }
    }

    /// Estimate the work a plan performs.
    pub fn estimate(&self, plan: &RecordQueryPlan) -> CostEstimate {
        match plan {
            RecordQueryPlan::FullScan { .. } => {
                let n = self.records();
                CostEstimate {
                    rows: n,
                    entries_scanned: 0.0,
                    records_fetched: n,
                    cost: n * RECORD_SCAN_COST,
                }
            }
            RecordQueryPlan::IndexScan {
                index_name, bounds, ..
            } => {
                let entries = self.index_entries(index_name) * Self::selectivity(bounds);
                CostEstimate {
                    rows: entries,
                    entries_scanned: entries,
                    records_fetched: entries,
                    cost: entries * (ENTRY_SCAN_COST + RECORD_FETCH_COST),
                }
            }
            RecordQueryPlan::CoveringIndexScan {
                index_name, bounds, ..
            } => {
                let entries = self.index_entries(index_name) * Self::selectivity(bounds);
                CostEstimate {
                    rows: entries,
                    entries_scanned: entries,
                    records_fetched: 0.0,
                    cost: entries * ENTRY_SCAN_COST,
                }
            }
            RecordQueryPlan::TextScan { index_name, .. } => {
                let entries = self.index_entries(index_name) * TEXT_SELECTIVITY;
                CostEstimate {
                    rows: entries,
                    entries_scanned: entries,
                    records_fetched: entries,
                    cost: entries * (ENTRY_SCAN_COST + RECORD_FETCH_COST),
                }
            }
            RecordQueryPlan::Union { children } => {
                let mut out = CostEstimate {
                    rows: 0.0,
                    entries_scanned: 0.0,
                    records_fetched: 0.0,
                    cost: 0.0,
                };
                for child in children {
                    let c = self.estimate(child);
                    out.rows += c.rows;
                    out.entries_scanned += c.entries_scanned;
                    out.records_fetched += c.records_fetched;
                    out.cost += c.cost + c.rows * DEDUP_COST;
                }
                out
            }
            RecordQueryPlan::Intersection { children } => {
                // The streaming merge-join visits every child's entries but
                // fetches only the primary keys all children agree on;
                // assume independent predicates for the match rate.
                let estimates: Vec<CostEstimate> =
                    children.iter().map(|c| self.estimate(c)).collect();
                let n = self.records().max(1.0);
                let mut rows = n;
                let mut entries = 0.0;
                for e in &estimates {
                    rows *= (e.rows / n).min(1.0);
                    entries += e.entries_scanned.max(e.rows);
                }
                CostEstimate {
                    rows,
                    entries_scanned: entries,
                    records_fetched: rows,
                    cost: entries * ENTRY_SCAN_COST + rows * RECORD_FETCH_COST,
                }
            }
        }
    }

    /// Render the plan tree with per-node row/cost annotations.
    pub fn explain(&self, plan: &RecordQueryPlan) -> String {
        let mut out = String::new();
        self.explain_into(plan, 0, &mut out);
        out.truncate(out.trim_end().len());
        out
    }

    fn explain_into(&self, plan: &RecordQueryPlan, depth: usize, out: &mut String) {
        let est = self.estimate(plan);
        let label = match plan {
            RecordQueryPlan::Union { .. } => "Union".to_string(),
            RecordQueryPlan::Intersection { .. } => "Intersection".to_string(),
            leaf => leaf.describe(),
        };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{label} [rows~{:.1}, cost~{:.1}]\n",
            est.rows, est.cost
        ));
        for child in plan.children() {
            self.explain_into(child, depth + 1, out);
        }
    }
}

impl std::fmt::Debug for CostModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostModel")
            .field("has_statistics", &self.stats.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TupleRange;
    use rl_fdb::tuple::Tuple;

    #[test]
    fn selectivity_orders_bound_shapes() {
        let eq = ScanBounds::Range(TupleRange::prefix(Tuple::new().push("x")));
        let eq2 = ScanBounds::Range(TupleRange::prefix(Tuple::new().push("x").push(1i64)));
        let open = ScanBounds::Range(TupleRange::all());
        let range = ScanBounds::Range(TupleRange {
            low: Some((Tuple::new().push(5i64), true)),
            high: None,
        });
        let prefix = ScanBounds::StringPrefix {
            prefix_cols: Tuple::new(),
            prefix: "ab".into(),
        };
        let s = CostModel::selectivity;
        assert!(s(&eq2) < s(&eq));
        assert!(s(&eq) < s(&prefix));
        assert!(s(&prefix) < s(&range));
        assert!(s(&range) < s(&open));
        assert_eq!(s(&open), 1.0);
    }

    #[test]
    fn covering_scan_is_cheaper_than_fetching_scan() {
        let bounds = ScanBounds::Range(TupleRange::prefix(Tuple::new().push("x")));
        let model = CostModel::new();
        let fetching = model.estimate(&RecordQueryPlan::IndexScan {
            index_name: "i".into(),
            bounds: bounds.clone(),
            reverse: false,
            record_types: None,
            residual: None,
        });
        let covering = model.estimate(&RecordQueryPlan::CoveringIndexScan {
            index_name: "i".into(),
            bounds,
            reverse: false,
            record_type: "T".into(),
            fields: Vec::new(),
        });
        assert!(covering.cost < fetching.cost);
        assert_eq!(covering.records_fetched, 0.0);
        assert_eq!(covering.rows, fetching.rows);
    }

    #[test]
    fn statistics_scale_estimates() {
        struct Fixed;
        impl StatisticsSource for Fixed {
            fn index_entry_count(&self, _: &str) -> Option<u64> {
                Some(10)
            }
            fn record_count(&self) -> Option<u64> {
                Some(10)
            }
        }
        let plan = RecordQueryPlan::IndexScan {
            index_name: "i".into(),
            bounds: ScanBounds::Range(TupleRange::prefix(Tuple::new().push("x"))),
            reverse: false,
            record_types: None,
            residual: None,
        };
        let small = CostModel::with_statistics(&Fixed).estimate(&plan);
        let default = CostModel::new().estimate(&plan);
        assert!(small.cost < default.cost);
    }

    #[test]
    fn explain_annotates_tree() {
        let plan = RecordQueryPlan::Intersection {
            children: vec![
                RecordQueryPlan::IndexScan {
                    index_name: "a".into(),
                    bounds: ScanBounds::Range(TupleRange::prefix(Tuple::new().push(1i64))),
                    reverse: false,
                    record_types: None,
                    residual: None,
                },
                RecordQueryPlan::IndexScan {
                    index_name: "b".into(),
                    bounds: ScanBounds::Range(TupleRange::prefix(Tuple::new().push(2i64))),
                    reverse: false,
                    record_types: None,
                    residual: None,
                },
            ],
        };
        let text = plan.explain();
        assert!(text.starts_with("Intersection [rows~"), "{text}");
        assert!(text.contains("\n  IndexScan(a) [rows~"), "{text}");
        assert!(text.contains("\n  IndexScan(b) [rows~"), "{text}");
    }
}
