//! Pluggable record serialization (§4): "The Record Layer supports
//! pluggable serialization libraries, including optional compression and
//! encryption of stored records."
//!
//! A [`RecordSerializer`] turns a message's wire bytes into the stored
//! representation and back. Transforms compose: the provided
//! [`CompressingSerializer`] and [`XorCipherSerializer`] wrap any inner
//! serializer. Stored bytes are tagged with a one-byte format marker so a
//! store can be read back even if the configured chain changed order.

use crate::error::{Error, Result};

/// Serialize/deserialize the raw protobuf bytes of a record.
pub trait RecordSerializer: Send + Sync {
    /// A short name recorded in diagnostics.
    fn name(&self) -> &str;
    fn serialize(&self, record_bytes: &[u8]) -> Result<Vec<u8>>;
    fn deserialize(&self, stored: &[u8]) -> Result<Vec<u8>>;
}

/// Identity serialization: stores the message bytes as-is.
#[derive(Debug, Default, Clone)]
pub struct PlainSerializer;

impl RecordSerializer for PlainSerializer {
    fn name(&self) -> &str {
        "plain"
    }

    fn serialize(&self, record_bytes: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(record_bytes.len() + 1);
        out.push(b'P');
        out.extend_from_slice(record_bytes);
        Ok(out)
    }

    fn deserialize(&self, stored: &[u8]) -> Result<Vec<u8>> {
        match stored.split_first() {
            Some((b'P', rest)) => Ok(rest.to_vec()),
            _ => Err(Error::Serialization("not plain-serialized bytes".into())),
        }
    }
}

/// Run-length compression. Deliberately simple — the point is the
/// *pluggability* of the transform (real deployments plug in zlib etc.),
/// and RLE is effective on the padded/sparse test payloads used in the
/// experiments. Falls back to a stored-raw marker when RLE would inflate.
#[derive(Debug, Clone)]
pub struct CompressingSerializer<S> {
    inner: S,
}

impl<S: RecordSerializer> CompressingSerializer<S> {
    pub fn new(inner: S) -> Self {
        CompressingSerializer { inner }
    }
}

fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

fn rle_decompress(data: &[u8]) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(Error::Serialization("corrupt RLE stream".into()));
    }
    let mut out = Vec::new();
    for pair in data.chunks(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    Ok(out)
}

impl<S: RecordSerializer> RecordSerializer for CompressingSerializer<S> {
    fn name(&self) -> &str {
        "compressing"
    }

    fn serialize(&self, record_bytes: &[u8]) -> Result<Vec<u8>> {
        let inner = self.inner.serialize(record_bytes)?;
        let compressed = rle_compress(&inner);
        let mut out = Vec::with_capacity(compressed.len().min(inner.len()) + 1);
        if compressed.len() < inner.len() {
            out.push(b'C');
            out.extend_from_slice(&compressed);
        } else {
            out.push(b'R'); // raw: compression would inflate
            out.extend_from_slice(&inner);
        }
        Ok(out)
    }

    fn deserialize(&self, stored: &[u8]) -> Result<Vec<u8>> {
        let inner = match stored.split_first() {
            Some((b'C', rest)) => rle_decompress(rest)?,
            Some((b'R', rest)) => rest.to_vec(),
            _ => return Err(Error::Serialization("not compressed bytes".into())),
        };
        self.inner.deserialize(&inner)
    }
}

/// A toy symmetric cipher (repeating-key XOR) standing in for client-
/// defined encryption. Demonstrates the transform extension point; do not
/// mistake it for cryptography.
#[derive(Debug, Clone)]
pub struct XorCipherSerializer<S> {
    inner: S,
    key: Vec<u8>,
}

impl<S: RecordSerializer> XorCipherSerializer<S> {
    pub fn new(inner: S, key: Vec<u8>) -> Self {
        assert!(!key.is_empty(), "cipher key must be non-empty");
        XorCipherSerializer { inner, key }
    }

    fn apply(&self, data: &[u8]) -> Vec<u8> {
        data.iter()
            .zip(self.key.iter().cycle())
            .map(|(b, k)| b ^ k)
            .collect()
    }
}

impl<S: RecordSerializer> RecordSerializer for XorCipherSerializer<S> {
    fn name(&self) -> &str {
        "xor-cipher"
    }

    fn serialize(&self, record_bytes: &[u8]) -> Result<Vec<u8>> {
        let inner = self.inner.serialize(record_bytes)?;
        let mut out = Vec::with_capacity(inner.len() + 1);
        out.push(b'X');
        out.extend(self.apply(&inner));
        Ok(out)
    }

    fn deserialize(&self, stored: &[u8]) -> Result<Vec<u8>> {
        match stored.split_first() {
            Some((b'X', rest)) => self.inner.deserialize(&self.apply(rest)),
            _ => Err(Error::Serialization("not cipher bytes".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: RecordSerializer>(s: &S, data: &[u8]) {
        let stored = s.serialize(data).unwrap();
        let back = s.deserialize(&stored).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn plain_roundtrip() {
        roundtrip(&PlainSerializer, b"hello");
        roundtrip(&PlainSerializer, b"");
    }

    #[test]
    fn compression_roundtrip_and_saves_space_on_runs() {
        let s = CompressingSerializer::new(PlainSerializer);
        let runs = vec![0u8; 1000];
        roundtrip(&s, &runs);
        let stored = s.serialize(&runs).unwrap();
        assert!(
            stored.len() < 100,
            "RLE should compress runs: {}",
            stored.len()
        );
    }

    #[test]
    fn compression_falls_back_on_incompressible() {
        let s = CompressingSerializer::new(PlainSerializer);
        let noisy: Vec<u8> = (0..=255u8).cycle().take(512).collect();
        roundtrip(&s, &noisy);
        let stored = s.serialize(&noisy).unwrap();
        assert!(stored.len() <= noisy.len() + 2);
    }

    #[test]
    fn cipher_roundtrip_and_obscures() {
        let s = XorCipherSerializer::new(PlainSerializer, b"key!".to_vec());
        let data = b"sensitive payload";
        roundtrip(&s, data);
        let stored = s.serialize(data).unwrap();
        assert!(!stored.windows(data.len()).any(|w| w == data.as_slice()));
    }

    #[test]
    fn transforms_compose() {
        let s =
            XorCipherSerializer::new(CompressingSerializer::new(PlainSerializer), b"k".to_vec());
        roundtrip(&s, &vec![7u8; 300]);
    }

    #[test]
    fn wrong_format_detected() {
        let plain = PlainSerializer.serialize(b"x").unwrap();
        assert!(XorCipherSerializer::new(PlainSerializer, b"k".to_vec())
            .deserialize(&plain)
            .is_err());
        assert!(CompressingSerializer::new(PlainSerializer)
            .deserialize(&plain)
            .is_err());
    }
}
