//! Streaming cursors with continuations and resource limits (§3.1, §4,
//! §8.2).
//!
//! Every operation that streams data — record scans, index scans, queries —
//! returns results through a [`RecordCursor`]. When a cursor stops, it
//! reports *why* ([`NoNextReason`]) and hands back a [`Continuation`]: an
//! opaque binary value encoding the position of the next value. A client
//! (or the same client in a later transaction) resumes by passing the
//! continuation back, which is how scans longer than the 5-second
//! transaction limit are split across transactions while the layer itself
//! stays stateless.

use std::sync::{Arc, Mutex};

use crate::error::{Error, Result};
use rl_fdb::sync::lock;
use rl_fdb::{RangeOptions, Transaction};

/// An opaque, serializable position in a cursor stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Continuation {
    /// Begin from the start of the stream.
    Start,
    /// Resume after the encoded position.
    At(Vec<u8>),
    /// The stream is exhausted; resuming returns nothing.
    End,
}

impl Continuation {
    /// Serialize for transport to a client. The encoding is
    /// self-describing: 0x00 = start, 0x01 ‖ pos = position, 0x02 = end.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Continuation::Start => vec![0x00],
            Continuation::At(pos) => {
                let mut out = Vec::with_capacity(pos.len() + 1);
                out.push(0x01);
                out.extend_from_slice(pos);
                out
            }
            Continuation::End => vec![0x02],
        }
    }

    /// Deserialize a client-supplied continuation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Continuation> {
        match bytes.split_first() {
            Some((0x00, [])) => Ok(Continuation::Start),
            Some((0x01, rest)) => Ok(Continuation::At(rest.to_vec())),
            Some((0x02, [])) => Ok(Continuation::End),
            _ => Err(Error::InvalidContinuation(
                "unrecognized continuation encoding".into(),
            )),
        }
    }

    pub fn is_end(&self) -> bool {
        matches!(self, Continuation::End)
    }
}

/// Why a cursor returned no next value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoNextReason {
    /// There are genuinely no more values.
    SourceExhausted,
    /// The caller's return-row limit was reached.
    ReturnLimitReached,
    /// The scanned-records limit was reached (§8.2 resource isolation).
    ScanLimitReached,
    /// The scanned-bytes limit was reached.
    ByteLimitReached,
    /// The (logical) time limit was reached.
    TimeLimitReached,
}

impl NoNextReason {
    /// Out-of-band reasons mean "stopped early — resume with the
    /// continuation"; in-band means the data ran out.
    pub fn is_out_of_band(&self) -> bool {
        !matches!(self, NoNextReason::SourceExhausted)
    }
}

/// One step of a cursor.
#[derive(Debug, Clone, PartialEq)]
pub enum CursorResult<T> {
    /// A value, plus the continuation that resumes *after* it.
    Next {
        value: T,
        continuation: Continuation,
    },
    /// No next value; the continuation resumes where the cursor stopped.
    NoNext {
        reason: NoNextReason,
        continuation: Continuation,
    },
}

impl<T> CursorResult<T> {
    pub fn value(&self) -> Option<&T> {
        match self {
            CursorResult::Next { value, .. } => Some(value),
            CursorResult::NoNext { .. } => None,
        }
    }

    pub fn continuation(&self) -> &Continuation {
        match self {
            CursorResult::Next { continuation, .. } => continuation,
            CursorResult::NoNext { continuation, .. } => continuation,
        }
    }
}

/// A pull-based cursor over a stream of values.
pub trait RecordCursor {
    type Item;

    /// Advance to the next value or stopping condition.
    fn next(&mut self) -> Result<CursorResult<Self::Item>>;

    /// Drain into a vector, returning the values plus the final
    /// no-next result `(reason, continuation)`.
    fn collect_remaining(&mut self) -> Result<(Vec<Self::Item>, NoNextReason, Continuation)>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        loop {
            match self.next()? {
                CursorResult::Next { value, .. } => out.push(value),
                CursorResult::NoNext {
                    reason,
                    continuation,
                } => return Ok((out, reason, continuation)),
            }
        }
    }
}

impl<T> RecordCursor for Box<dyn RecordCursor<Item = T> + '_> {
    type Item = T;

    fn next(&mut self) -> Result<CursorResult<T>> {
        (**self).next()
    }
}

/// Execution limits for an operation (§8.2: "the Record Layer's ability to
/// enforce limits on the total number of records or bytes read while
/// servicing a request").
#[derive(Debug, Clone, Default)]
pub struct ExecuteProperties {
    /// Maximum rows to *return* before stopping with `ReturnLimitReached`.
    pub return_limit: Option<usize>,
    /// Maximum underlying records/entries to *scan* before stopping with
    /// `ScanLimitReached` (scans ≥ returns when filters discard rows).
    pub scan_limit: Option<usize>,
    /// Maximum bytes to scan before stopping with `ByteLimitReached`.
    pub byte_limit: Option<usize>,
    /// Use snapshot isolation for reads (no read conflicts).
    pub snapshot: bool,
    /// A limiter already shared by an enclosing plan execution. When set,
    /// [`ExecuteProperties::limiter`] hands out clones of this limiter so
    /// every cursor spawned by one plan draws from a single scan budget;
    /// when unset, each call mints a fresh budget from the limits above.
    pub(crate) shared_limiter: Option<ScanLimiter>,
}

impl ExecuteProperties {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_return_limit(mut self, n: usize) -> Self {
        self.return_limit = Some(n);
        self
    }

    pub fn with_scan_limit(mut self, n: usize) -> Self {
        self.scan_limit = Some(n);
        self
    }

    pub fn with_byte_limit(mut self, n: usize) -> Self {
        self.byte_limit = Some(n);
        self
    }

    pub fn with_snapshot(mut self, snapshot: bool) -> Self {
        self.snapshot = snapshot;
        self
    }

    pub fn limiter(&self) -> ScanLimiter {
        match &self.shared_limiter {
            Some(l) => l.clone(),
            None => ScanLimiter::new(self.scan_limit, self.byte_limit),
        }
    }

    /// Install a single shared scan budget: all subsequent `limiter()`
    /// calls on (clones of) these properties charge the same budget.
    pub(crate) fn share_limiter(&mut self) {
        if self.shared_limiter.is_none() {
            self.shared_limiter = Some(ScanLimiter::new(self.scan_limit, self.byte_limit));
        }
    }
}

#[derive(Debug)]
struct ScanState {
    records_remaining: Option<isize>,
    bytes_remaining: Option<isize>,
}

/// Shared scan-budget tracker. Multiple cursors feeding one plan share a
/// single limiter so the *total* work is bounded.
#[derive(Debug, Clone)]
pub struct ScanLimiter {
    state: Arc<Mutex<ScanState>>,
}

impl ScanLimiter {
    pub fn new(scan_limit: Option<usize>, byte_limit: Option<usize>) -> Self {
        ScanLimiter {
            state: Arc::new(Mutex::new(ScanState {
                records_remaining: scan_limit.map(|n| n as isize),
                bytes_remaining: byte_limit.map(|n| n as isize),
            })),
        }
    }

    /// An unlimited limiter.
    pub fn unlimited() -> Self {
        ScanLimiter::new(None, None)
    }

    /// Charge one scanned record of `bytes` size. Returns the stop reason
    /// if a budget has been exhausted *before* this scan.
    pub fn try_record_scan(&self, bytes: usize) -> Option<NoNextReason> {
        let mut st = lock(&self.state);
        if let Some(r) = st.records_remaining {
            if r <= 0 {
                return Some(NoNextReason::ScanLimitReached);
            }
        }
        if let Some(b) = st.bytes_remaining {
            if b <= 0 {
                return Some(NoNextReason::ByteLimitReached);
            }
        }
        if let Some(r) = st.records_remaining.as_mut() {
            *r -= 1;
        }
        if let Some(b) = st.bytes_remaining.as_mut() {
            *b -= bytes as isize;
        }
        None
    }
}

/// A cursor over raw key-value pairs in a key range, reading in batches and
/// producing a continuation after every row. The continuation encodes the
/// last-returned key.
pub struct KeyValueCursor<'a> {
    tx: &'a Transaction,
    begin: Vec<u8>,
    end: Vec<u8>,
    reverse: bool,
    snapshot: bool,
    batch_size: usize,
    limiter: ScanLimiter,
    buffer: std::collections::VecDeque<rl_fdb::KeyValue>,
    exhausted_source: bool,
    last_key: Option<Vec<u8>>,
    done: bool,
}

impl<'a> KeyValueCursor<'a> {
    /// Create a cursor over `[begin, end)`, resuming from `continuation`.
    pub fn new(
        tx: &'a Transaction,
        begin: Vec<u8>,
        end: Vec<u8>,
        reverse: bool,
        snapshot: bool,
        limiter: ScanLimiter,
        continuation: &Continuation,
    ) -> Result<Self> {
        let (begin, end, done) = match continuation {
            Continuation::Start => (begin, end, false),
            Continuation::At(last) => {
                if reverse {
                    // Resume scanning keys strictly below `last`.
                    (begin, last.clone(), false)
                } else {
                    (rl_fdb::key_after(last), end, false)
                }
            }
            Continuation::End => (begin, end, true),
        };
        Ok(KeyValueCursor {
            tx,
            begin,
            end,
            reverse,
            snapshot,
            batch_size: 256,
            limiter,
            buffer: std::collections::VecDeque::new(),
            exhausted_source: false,
            last_key: None,
            done,
        })
    }

    fn continuation(&self) -> Continuation {
        match &self.last_key {
            Some(k) => Continuation::At(k.clone()),
            None => Continuation::Start,
        }
    }

    fn fill_buffer(&mut self) -> Result<()> {
        if self.exhausted_source {
            return Ok(());
        }
        let options = RangeOptions::new()
            .limit(self.batch_size)
            .reverse(self.reverse);
        let kvs = if self.snapshot {
            self.tx
                .get_range_snapshot(&self.begin, &self.end, options)?
        } else {
            self.tx.get_range(&self.begin, &self.end, options)?
        };
        if kvs.len() < self.batch_size {
            self.exhausted_source = true;
        }
        if let Some(last) = kvs.last() {
            if self.reverse {
                self.end = last.key.clone();
            } else {
                self.begin = rl_fdb::key_after(&last.key);
            }
        }
        self.buffer.extend(kvs);
        Ok(())
    }
}

impl RecordCursor for KeyValueCursor<'_> {
    type Item = rl_fdb::KeyValue;

    fn next(&mut self) -> Result<CursorResult<rl_fdb::KeyValue>> {
        if self.done {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::SourceExhausted,
                continuation: Continuation::End,
            });
        }
        if self.buffer.is_empty() {
            self.fill_buffer()?;
        }
        match self.buffer.front() {
            None => {
                self.done = true;
                Ok(CursorResult::NoNext {
                    reason: NoNextReason::SourceExhausted,
                    continuation: Continuation::End,
                })
            }
            Some(front) => {
                let size = front.key.len() + front.value.len();
                if let Some(reason) = self.limiter.try_record_scan(size) {
                    return Ok(CursorResult::NoNext {
                        reason,
                        continuation: self.continuation(),
                    });
                }
                let kv = self.buffer.pop_front().unwrap();
                self.last_key = Some(kv.key.clone());
                Ok(CursorResult::Next {
                    value: kv,
                    continuation: self.continuation(),
                })
            }
        }
    }
}

/// A cursor over an in-memory list (testing and small plan stages). The
/// continuation is the element index.
pub struct ListCursor<T> {
    items: Vec<T>,
    pos: usize,
}

impl<T: Clone> ListCursor<T> {
    pub fn new(items: Vec<T>, continuation: &Continuation) -> Result<Self> {
        let pos = match continuation {
            Continuation::Start => 0,
            Continuation::At(bytes) => {
                let arr: [u8; 8] = bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::InvalidContinuation("bad list continuation".into()))?;
                u64::from_be_bytes(arr) as usize
            }
            Continuation::End => items.len(),
        };
        Ok(ListCursor { items, pos })
    }
}

impl<T: Clone> RecordCursor for ListCursor<T> {
    type Item = T;

    fn next(&mut self) -> Result<CursorResult<T>> {
        if self.pos >= self.items.len() {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::SourceExhausted,
                continuation: Continuation::End,
            });
        }
        let value = self.items[self.pos].clone();
        self.pos += 1;
        Ok(CursorResult::Next {
            value,
            continuation: Continuation::At((self.pos as u64).to_be_bytes().to_vec()),
        })
    }
}

/// Adapter applying a fallible transform to each value.
pub struct MapCursor<C, F> {
    inner: C,
    f: F,
}

impl<C, F, U> MapCursor<C, F>
where
    C: RecordCursor,
    F: FnMut(C::Item) -> Result<U>,
{
    pub fn new(inner: C, f: F) -> Self {
        MapCursor { inner, f }
    }
}

impl<C, F, U> RecordCursor for MapCursor<C, F>
where
    C: RecordCursor,
    F: FnMut(C::Item) -> Result<U>,
{
    type Item = U;

    fn next(&mut self) -> Result<CursorResult<U>> {
        match self.inner.next()? {
            CursorResult::Next {
                value,
                continuation,
            } => Ok(CursorResult::Next {
                value: (self.f)(value)?,
                continuation,
            }),
            CursorResult::NoNext {
                reason,
                continuation,
            } => Ok(CursorResult::NoNext {
                reason,
                continuation,
            }),
        }
    }
}

/// Adapter dropping values failing a predicate. The continuation of a
/// skipped row is remembered so resumption never replays skipped rows.
pub struct FilterCursor<C, F> {
    inner: C,
    f: F,
}

impl<C, F> FilterCursor<C, F>
where
    C: RecordCursor,
    F: FnMut(&C::Item) -> Result<bool>,
{
    pub fn new(inner: C, f: F) -> Self {
        FilterCursor { inner, f }
    }
}

impl<C, F> RecordCursor for FilterCursor<C, F>
where
    C: RecordCursor,
    F: FnMut(&C::Item) -> Result<bool>,
{
    type Item = C::Item;

    fn next(&mut self) -> Result<CursorResult<C::Item>> {
        loop {
            match self.inner.next()? {
                CursorResult::Next {
                    value,
                    continuation,
                } => {
                    if (self.f)(&value)? {
                        return Ok(CursorResult::Next {
                            value,
                            continuation,
                        });
                    }
                }
                stop @ CursorResult::NoNext { .. } => return Ok(stop),
            }
        }
    }
}

/// Adapter enforcing a return-row limit.
pub struct TakeCursor<C> {
    inner: C,
    remaining: usize,
    last_continuation: Continuation,
}

impl<C: RecordCursor> TakeCursor<C> {
    pub fn new(inner: C, limit: usize) -> Self {
        TakeCursor {
            inner,
            remaining: limit,
            last_continuation: Continuation::Start,
        }
    }
}

impl<C: RecordCursor> RecordCursor for TakeCursor<C> {
    type Item = C::Item;

    fn next(&mut self) -> Result<CursorResult<C::Item>> {
        if self.remaining == 0 {
            return Ok(CursorResult::NoNext {
                reason: NoNextReason::ReturnLimitReached,
                continuation: self.last_continuation.clone(),
            });
        }
        match self.inner.next()? {
            CursorResult::Next {
                value,
                continuation,
            } => {
                self.remaining -= 1;
                self.last_continuation = continuation.clone();
                Ok(CursorResult::Next {
                    value,
                    continuation,
                })
            }
            stop @ CursorResult::NoNext { .. } => Ok(stop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_fdb::Database;

    #[test]
    fn continuation_roundtrip() {
        for c in [
            Continuation::Start,
            Continuation::At(b"pos".to_vec()),
            Continuation::End,
        ] {
            assert_eq!(Continuation::from_bytes(&c.to_bytes()).unwrap(), c);
        }
        assert!(Continuation::from_bytes(&[]).is_err());
        assert!(Continuation::from_bytes(&[9]).is_err());
        assert!(Continuation::from_bytes(&[0, 1]).is_err());
    }

    #[test]
    fn no_next_reason_bands() {
        assert!(!NoNextReason::SourceExhausted.is_out_of_band());
        assert!(NoNextReason::ScanLimitReached.is_out_of_band());
        assert!(NoNextReason::ReturnLimitReached.is_out_of_band());
    }

    fn seed_db() -> Database {
        let db = Database::new();
        let tx = db.create_transaction();
        for i in 0..20u8 {
            tx.set(&[b'k', i], &[i]);
        }
        tx.commit().unwrap();
        db
    }

    #[test]
    fn kv_cursor_scans_in_order() {
        let db = seed_db();
        let tx = db.create_transaction();
        let mut c = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            false,
            false,
            ScanLimiter::unlimited(),
            &Continuation::Start,
        )
        .unwrap();
        let (items, reason, cont) = c.collect_remaining().unwrap();
        assert_eq!(items.len(), 20);
        assert_eq!(reason, NoNextReason::SourceExhausted);
        assert!(cont.is_end());
        assert!(items.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn kv_cursor_reverse() {
        let db = seed_db();
        let tx = db.create_transaction();
        let mut c = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            true,
            false,
            ScanLimiter::unlimited(),
            &Continuation::Start,
        )
        .unwrap();
        let (items, _, _) = c.collect_remaining().unwrap();
        assert_eq!(items.len(), 20);
        assert!(items.windows(2).all(|w| w[0].key > w[1].key));
    }

    #[test]
    fn kv_cursor_resumes_from_continuation() {
        let db = seed_db();
        let tx = db.create_transaction();
        let limiter = ScanLimiter::new(Some(7), None);
        let mut c = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            false,
            false,
            limiter,
            &Continuation::Start,
        )
        .unwrap();
        let (first, reason, cont) = c.collect_remaining().unwrap();
        assert_eq!(first.len(), 7);
        assert_eq!(reason, NoNextReason::ScanLimitReached);

        // Resume — possibly in a brand-new transaction (statelessness).
        let tx2 = db.create_transaction();
        let mut c2 = KeyValueCursor::new(
            &tx2,
            b"k".to_vec(),
            b"l".to_vec(),
            false,
            false,
            ScanLimiter::unlimited(),
            &cont,
        )
        .unwrap();
        let (rest, reason, _) = c2.collect_remaining().unwrap();
        assert_eq!(rest.len(), 13);
        assert_eq!(reason, NoNextReason::SourceExhausted);
        assert_eq!(rest[0].key, vec![b'k', 7]);
    }

    #[test]
    fn kv_cursor_reverse_resume() {
        let db = seed_db();
        let tx = db.create_transaction();
        let limiter = ScanLimiter::new(Some(5), None);
        let mut c = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            true,
            false,
            limiter,
            &Continuation::Start,
        )
        .unwrap();
        let (first, _, cont) = c.collect_remaining().unwrap();
        assert_eq!(first.len(), 5);
        assert_eq!(first.last().unwrap().key, vec![b'k', 15]);

        let mut c2 = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            true,
            false,
            ScanLimiter::unlimited(),
            &cont,
        )
        .unwrap();
        let (rest, _, _) = c2.collect_remaining().unwrap();
        assert_eq!(rest.len(), 15);
        assert_eq!(rest[0].key, vec![b'k', 14]);
    }

    #[test]
    fn byte_limit_stops_scan() {
        let db = seed_db();
        let tx = db.create_transaction();
        let limiter = ScanLimiter::new(None, Some(10)); // each row is 3 bytes
        let mut c = KeyValueCursor::new(
            &tx,
            b"k".to_vec(),
            b"l".to_vec(),
            false,
            false,
            limiter,
            &Continuation::Start,
        )
        .unwrap();
        let (items, reason, _) = c.collect_remaining().unwrap();
        assert_eq!(reason, NoNextReason::ByteLimitReached);
        assert!(items.len() < 20);
    }

    #[test]
    fn list_cursor_with_continuation() {
        let items = vec![1, 2, 3, 4, 5];
        let mut c = ListCursor::new(items.clone(), &Continuation::Start).unwrap();
        let r1 = c.next().unwrap();
        let r2 = c.next().unwrap();
        assert_eq!(r1.value(), Some(&1));
        assert_eq!(r2.value(), Some(&2));
        let mut resumed = ListCursor::new(items, r2.continuation()).unwrap();
        assert_eq!(resumed.next().unwrap().value(), Some(&3));
    }

    #[test]
    fn map_filter_take_combinators() {
        let items: Vec<i32> = (0..10).collect();
        let base = ListCursor::new(items, &Continuation::Start).unwrap();
        let mapped = MapCursor::new(base, |v| Ok(v * 2));
        let filtered = FilterCursor::new(mapped, |v| Ok(v % 4 == 0));
        let mut limited = TakeCursor::new(filtered, 3);
        let (vals, reason, _) = limited.collect_remaining().unwrap();
        assert_eq!(vals, vec![0, 4, 8]);
        assert_eq!(reason, NoNextReason::ReturnLimitReached);
    }

    #[test]
    fn take_cursor_reports_source_exhaustion_when_shorter() {
        let base = ListCursor::new(vec![1, 2], &Continuation::Start).unwrap();
        let mut limited = TakeCursor::new(base, 10);
        let (vals, reason, _) = limited.collect_remaining().unwrap();
        assert_eq!(vals, vec![1, 2]);
        assert_eq!(reason, NoNextReason::SourceExhausted);
    }

    #[test]
    fn shared_limiter_bounds_total_work() {
        let limiter = ScanLimiter::new(Some(5), None);
        assert!(limiter.try_record_scan(1).is_none());
        for _ in 0..4 {
            limiter.try_record_scan(1);
        }
        assert_eq!(
            limiter.try_record_scan(1),
            Some(NoNextReason::ScanLimitReached)
        );
        // A clone shares the same budget.
        let clone = limiter.clone();
        assert_eq!(
            clone.try_record_scan(1),
            Some(NoNextReason::ScanLimitReached)
        );
    }
}
