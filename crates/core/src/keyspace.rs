//! The KeySpace API (§4): a filesystem-like logical directory tree over
//! the global keyspace. A path through the tree compiles to a tuple that
//! becomes a row-key prefix, and sibling directories are guaranteed
//! logically isolated and non-overlapping. Directory names can be mapped
//! to small integers via the directory layer.

use std::collections::BTreeMap;
use std::sync::Arc;

use rl_fdb::directory::DirectoryLayer;
use rl_fdb::subspace::Subspace;
use rl_fdb::tuple::{Tuple, TupleElement};
use rl_fdb::Transaction;

use crate::error::{Error, Result};

/// What values a directory level admits.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyType {
    /// The directory name itself is the key element (a constant).
    Constant,
    /// A caller-supplied string (e.g. a user id).
    String,
    /// A caller-supplied integer.
    Long,
    /// The directory name is translated to a small integer through the
    /// directory layer (§2), shrinking every key below it.
    DirectoryLayer,
}

/// One level of the logical directory tree.
#[derive(Debug, Clone)]
pub struct KeySpaceDirectory {
    pub name: String,
    pub key_type: KeyType,
    children: BTreeMap<String, Arc<KeySpaceDirectory>>,
}

impl KeySpaceDirectory {
    pub fn new(name: impl Into<String>, key_type: KeyType) -> Self {
        KeySpaceDirectory {
            name: name.into(),
            key_type,
            children: BTreeMap::new(),
        }
    }

    /// Attach a child directory, which must be uniquely named among its
    /// siblings (the isolation guarantee).
    pub fn child(mut self, child: KeySpaceDirectory) -> Self {
        self.children.insert(child.name.clone(), Arc::new(child));
        self
    }
}

/// The root of a key space: a set of named top-level directories.
#[derive(Debug, Clone)]
pub struct KeySpace {
    roots: BTreeMap<String, Arc<KeySpaceDirectory>>,
    directory_layer: DirectoryLayer,
}

impl KeySpace {
    pub fn new(top: KeySpaceDirectory) -> Self {
        KeySpace::with_roots(vec![top])
    }

    pub fn with_roots(tops: Vec<KeySpaceDirectory>) -> Self {
        KeySpace {
            roots: tops
                .into_iter()
                .map(|d| (d.name.clone(), Arc::new(d)))
                .collect(),
            directory_layer: DirectoryLayer::new(),
        }
    }

    /// Begin a path at a top-level directory.
    pub fn path(&self, name: &str) -> Result<KeySpacePath> {
        let dir = self
            .roots
            .get(name)
            .ok_or_else(|| Error::MetaData(format!("no directory {name} under key space root")))?
            .clone();
        let path = KeySpacePath {
            keyspace: self.clone(),
            segments: vec![(dir, None)],
        };
        Ok(path)
    }
}

/// A concrete path through the directory tree, with values bound for
/// String/Long levels.
#[derive(Debug, Clone)]
pub struct KeySpacePath {
    keyspace: KeySpace,
    segments: Vec<(Arc<KeySpaceDirectory>, Option<TupleElement>)>,
}

impl KeySpacePath {
    /// Bind a value for the current level (String/Long key types).
    pub fn value(mut self, value: impl Into<TupleElement>) -> Result<Self> {
        let (dir, slot) = self
            .segments
            .last_mut()
            .expect("path always has at least one segment");
        let value = value.into();
        match (&dir.key_type, &value) {
            (KeyType::String, TupleElement::String(_)) | (KeyType::Long, TupleElement::Int(_)) => {
                *slot = Some(value);
                Ok(self)
            }
            (kt, v) => Err(Error::MetaData(format!(
                "directory {} of type {kt:?} cannot hold value {v:?}",
                dir.name
            ))),
        }
    }

    /// Descend into a named child directory.
    #[allow(clippy::should_implement_trait)] // KeySpacePath API name from the paper
    pub fn add(mut self, name: &str) -> Result<Self> {
        let (current, _) = self.segments.last().unwrap();
        let child = current
            .children
            .get(name)
            .ok_or_else(|| Error::MetaData(format!("no directory {name} under {}", current.name)))?
            .clone();
        self.segments.push((child, None));
        Ok(self)
    }

    /// Descend and bind in one step.
    pub fn add_value(self, name: &str, value: impl Into<TupleElement>) -> Result<Self> {
        self.add(name)?.value(value)
    }

    /// Compile the path to its tuple form, resolving DirectoryLayer levels
    /// to small integers (allocating on first use).
    pub fn to_tuple(&self, tx: &Transaction) -> Result<Tuple> {
        let mut t = Tuple::new();
        for (dir, value) in &self.segments {
            match dir.key_type {
                KeyType::Constant => t.add(dir.name.as_str()),
                KeyType::DirectoryLayer => {
                    let sub = self
                        .keyspace
                        .directory_layer
                        .create_or_open(tx, &[dir.name.as_str()])
                        .map_err(Error::Fdb)?;
                    // The directory layer's subspace prefix is a packed
                    // small integer; splice its element into the tuple.
                    let inner = Tuple::unpack(sub.prefix()).map_err(Error::Fdb)?;
                    t.add(inner.get(0).cloned().unwrap_or(TupleElement::Null));
                }
                KeyType::String | KeyType::Long => {
                    let v = value.clone().ok_or_else(|| {
                        Error::MetaData(format!("directory {} has no bound value", dir.name))
                    })?;
                    t.add(v);
                }
            }
        }
        Ok(t)
    }

    /// Compile to the subspace rooted at this path.
    pub fn to_subspace(&self, tx: &Transaction) -> Result<Subspace> {
        Ok(Subspace::from_tuple(&self.to_tuple(tx)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_fdb::Database;

    fn cloudkit_keyspace() -> KeySpace {
        // The Figure 3 layout: cloudkit / user / application / (data…).
        KeySpace::new(
            KeySpaceDirectory::new("cloudkit", KeyType::DirectoryLayer).child(
                KeySpaceDirectory::new("user", KeyType::Long)
                    .child(KeySpaceDirectory::new("application", KeyType::String)),
            ),
        )
    }

    #[test]
    fn paths_compile_to_tuples() {
        let db = Database::new();
        let ks = cloudkit_keyspace();
        let t = db
            .run(|tx| {
                let path = ks
                    .path("cloudkit")
                    .unwrap()
                    .add_value("user", 42i64)
                    .unwrap()
                    .add_value("application", "notes")
                    .unwrap();
                path.to_tuple(tx).map_err(|_| rl_fdb::Error::NotCommitted)
            })
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1), Some(&TupleElement::Int(42)));
        assert_eq!(t.get(2), Some(&TupleElement::String("notes".into())));
    }

    #[test]
    fn sibling_paths_are_disjoint() {
        let db = Database::new();
        let ks = cloudkit_keyspace();
        let (a, b) = db
            .run(|tx| {
                let mk = |user: i64, app: &str| {
                    ks.path("cloudkit")
                        .unwrap()
                        .add_value("user", user)
                        .unwrap()
                        .add_value("application", app)
                        .unwrap()
                        .to_subspace(tx)
                        .map_err(|_| rl_fdb::Error::NotCommitted)
                };
                Ok((mk(1, "notes")?, mk(2, "notes")?))
            })
            .unwrap();
        assert_ne!(a, b);
        assert!(!a.contains(b.prefix()));
        assert!(!b.contains(a.prefix()));
    }

    #[test]
    fn directory_layer_levels_are_stable_and_small() {
        let db = Database::new();
        let ks = cloudkit_keyspace();
        let mk = || {
            db.run(|tx| {
                ks.path("cloudkit")
                    .unwrap()
                    .add_value("user", 1i64)
                    .unwrap()
                    .to_tuple(tx)
                    .map_err(|_| rl_fdb::Error::NotCommitted)
            })
            .unwrap()
        };
        let first = mk();
        let second = mk();
        // Same path resolves to the same small integer both times.
        assert_eq!(first, second);
        assert!(matches!(first.get(0), Some(TupleElement::Int(_))));
    }

    #[test]
    fn unbound_value_rejected() {
        let db = Database::new();
        let ks = cloudkit_keyspace();
        let err = db
            .run(|tx| {
                let path = ks.path("cloudkit").unwrap().add("user").unwrap();
                match path.to_tuple(tx) {
                    Err(_) => Ok(true),
                    Ok(_) => Ok(false),
                }
            })
            .unwrap();
        assert!(err);
    }

    #[test]
    fn type_mismatch_rejected() {
        let ks = cloudkit_keyspace();
        let path = ks.path("cloudkit").unwrap().add("user").unwrap();
        assert!(path.value("not-an-int").is_err());
    }

    #[test]
    fn unknown_child_rejected() {
        let ks = cloudkit_keyspace();
        assert!(ks.path("nope").is_err());
        assert!(ks.path("cloudkit").unwrap().add("nope").is_err());
    }
}
