//! Crash-recovery tests for the paged engine: drop the process state on
//! the floor (no clean shutdown), reopen from the files alone, and verify
//! that exactly the committed batches are readable and the tree is
//! structurally consistent.

use std::path::{Path, PathBuf};

use rl_storage::{EvictionPolicy, IoCounters, PagedEngine, StorageEngine};

fn dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rl-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(d: &Path) -> PagedEngine {
    PagedEngine::open(d, 16, EvictionPolicy::Lru, IoCounters::new_shared()).unwrap()
}

#[test]
fn committed_batches_survive_a_crash() {
    let d = dir("committed");
    {
        let mut e = open(&d);
        for batch in 0..10u64 {
            for i in 0..20u32 {
                e.write(
                    format!("b{batch:02}-k{i:02}").into_bytes(),
                    Some(format!("v{batch}-{i}").into_bytes()),
                    batch * 10 + 10,
                );
            }
            e.commit_batch();
        }
        e.simulate_crash();
    }

    let mut e = open(&d);
    assert_eq!(e.check_consistency().unwrap(), 200);
    for batch in 0..10u64 {
        for i in (0..20u32).step_by(7) {
            let key = format!("b{batch:02}-k{i:02}").into_bytes();
            assert_eq!(
                e.get(&key, 1_000),
                Some(format!("v{batch}-{i}").into_bytes()),
                "batch {batch} key {i}"
            );
        }
    }
    assert_eq!(e.live_key_count(1_000), 200);
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn uncommitted_tail_vanishes_on_crash() {
    let d = dir("uncommitted");
    {
        let mut e = open(&d);
        e.write(b"durable".to_vec(), Some(b"1".to_vec()), 10);
        e.commit_batch();
        // Applied to the in-memory tree, buffered for the WAL, but the
        // commit frame never lands: must not survive.
        e.write(b"lost".to_vec(), Some(b"2".to_vec()), 20);
        e.clear_range(b"durable", b"durablf", 20);
        e.simulate_crash();
    }

    let mut e = open(&d);
    assert_eq!(
        e.get(b"durable", 100),
        Some(b"1".to_vec()),
        "committed data intact"
    );
    assert_eq!(e.get(b"lost", 100), None, "uncommitted write discarded");
    e.check_consistency().unwrap();
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn reopen_mid_log_after_checkpoint() {
    // Crash with a WAL that is only partially covered by the checkpoint:
    // recovery must replay the tail past the checkpoint LSN, not the whole
    // log and not nothing.
    let d = dir("midlog");
    {
        let mut e = open(&d);
        e.write(b"pre".to_vec(), Some(b"checkpointed".to_vec()), 10);
        e.commit_batch();
        e.flush(); // checkpoint + WAL truncation
        e.write(b"post-a".to_vec(), Some(b"replayed".to_vec()), 20);
        e.commit_batch();
        e.write(b"post-b".to_vec(), None, 30); // tombstone in the tail
        e.write(b"pre".to_vec(), Some(b"rewritten".to_vec()), 30);
        e.commit_batch();
        e.simulate_crash();
    }

    let mut e = open(&d);
    assert_eq!(e.get(b"pre", 15), Some(b"checkpointed".to_vec()));
    assert_eq!(e.get(b"pre", 35), Some(b"rewritten".to_vec()));
    assert_eq!(e.get(b"post-a", 35), Some(b"replayed".to_vec()));
    assert_eq!(e.get(b"post-b", 35), None);
    assert_eq!(e.check_consistency().unwrap(), 3);
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn torn_wal_tail_is_discarded() {
    let d = dir("torn");
    {
        let mut e = open(&d);
        e.write(b"good".to_vec(), Some(b"1".to_vec()), 10);
        e.commit_batch();
        e.simulate_crash();
    }
    // Simulate a torn append: garbage bytes at the end of the log.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(d.join("wal.log"))
            .unwrap();
        f.write_all(&[0xBA, 0xD0, 0xF0, 0x0D, 0x01]).unwrap();
    }

    let mut e = open(&d);
    assert_eq!(e.get(b"good", 100), Some(b"1".to_vec()));
    e.check_consistency().unwrap();
    // The engine keeps working after truncating the torn tail.
    e.write(b"after".to_vec(), Some(b"2".to_vec()), 20);
    e.commit_batch();
    drop(e);
    let mut e = open(&d);
    assert_eq!(e.get(b"after", 100), Some(b"2".to_vec()));
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn repeated_crashes_are_idempotent() {
    // Recovery itself checkpoints; crashing immediately after recovery and
    // reopening again must converge to the same state every time.
    let d = dir("repeat");
    {
        let mut e = open(&d);
        for i in 0..50u32 {
            e.write(format!("k{i:02}").into_bytes(), Some(vec![i as u8]), 10);
        }
        e.commit_batch();
        e.simulate_crash();
    }
    for _ in 0..3 {
        let mut e = open(&d);
        assert_eq!(e.check_consistency().unwrap(), 50);
        assert_eq!(e.get(b"k25", 100), Some(vec![25]));
        e.simulate_crash();
    }
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn mvcc_versions_preserved_across_recovery() {
    // Version chains (not just latest values) must survive: a reader at an
    // old read version sees the old value after recovery.
    let d = dir("mvcc");
    {
        let mut e = open(&d);
        e.write(b"k".to_vec(), Some(b"old".to_vec()), 10);
        e.commit_batch();
        e.write(b"k".to_vec(), Some(b"new".to_vec()), 20);
        e.write(b"k2".to_vec(), Some(b"x".to_vec()), 20);
        e.commit_batch();
        e.clear_range(b"k2", b"k3", 30);
        e.commit_batch();
        e.simulate_crash();
    }

    let mut e = open(&d);
    assert_eq!(e.get(b"k", 10), Some(b"old".to_vec()));
    assert_eq!(e.get(b"k", 25), Some(b"new".to_vec()));
    assert_eq!(e.get(b"k2", 25), Some(b"x".to_vec()));
    assert_eq!(e.get(b"k2", 35), None);
    assert_eq!(e.total_version_entries(), 4);
    let _ = std::fs::remove_dir_all(&d);
}
