//! Append-only write-ahead log segment.
//!
//! Ops buffer in memory until [`Wal::commit`], which appends one checksummed
//! *batch frame* — so a torn tail never exposes half a committed batch, and
//! ops the engine applied but never committed simply vanish on crash
//! (matching the database's transaction semantics).
//!
//! ```text
//! frame := [payload_len u32][checksum u32][payload]
//! payload := op*          (one committed batch)
//! op := 0x01 version u64 klen u32 key vlen u32 value      -- set
//!     | 0x02 version u64 klen u32 key                     -- clear (tombstone)
//!     | 0x03 version u64 blen u32 begin elen u32 end      -- clear_range
//! ```
//!
//! Recovery reads frames from the checkpoint offset until end-of-file or
//! the first frame that fails to parse (a torn append), then truncates the
//! torn tail so new appends extend a valid log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::page::checksum;
use crate::SharedIoCounters;

/// One logical storage operation, as logged and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    Write {
        key: Vec<u8>,
        value: Option<Vec<u8>>,
        version: u64,
    },
    ClearRange {
        begin: Vec<u8>,
        end: Vec<u8>,
        version: u64,
    },
}

/// Append-only log with batch framing.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Length of the valid, committed prefix.
    len: u64,
    /// Encoded ops awaiting the next commit frame.
    pending: Vec<u8>,
}

impl Wal {
    pub fn open(path: &Path) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            len,
            pending: Vec::new(),
        })
    }

    /// Length of the committed log in bytes (the next frame's offset).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer an op for the next commit frame.
    pub fn buffer(&mut self, op: &WalOp) {
        encode_op(op, &mut self.pending);
    }

    /// Whether any ops are buffered but not yet committed.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Append the buffered batch as one framed, checksummed record.
    pub fn commit(&mut self, counters: &SharedIoCounters) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let _t = rl_obs::Timer::start("wal_append");
        let payload = std::mem::take(&mut self.pending);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        counters
            .log_appends
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Discard any uncommitted buffered ops (crash simulation support).
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Truncate the log to zero length (after a checkpoint has superseded
    /// its contents and the meta generation recording lsn=0 is in place).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        Ok(())
    }

    /// Read every committed batch starting at byte offset `lsn`, stopping
    /// at end-of-file or the first torn/corrupt frame, which is truncated
    /// away so subsequent appends extend a valid log. An `lsn` at or past
    /// the end of the file yields no batches (the checkpoint superseded a
    /// truncation that never got its meta update).
    pub fn replay_from(&mut self, lsn: u64) -> io::Result<Vec<Vec<WalOp>>> {
        if lsn >= self.len {
            return Ok(Vec::new());
        }
        let mut raw = Vec::new();
        self.file.seek(SeekFrom::Start(lsn))?;
        self.file.read_to_end(&mut raw)?;
        let mut batches = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= raw.len() {
            let plen = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            let stored = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
            let Some(payload) = raw.get(pos + 8..pos + 8 + plen) else {
                break; // torn tail
            };
            if checksum(payload) != stored {
                break; // corrupt frame: stop replay here
            }
            let Some(ops) = decode_batch(payload) else {
                break;
            };
            batches.push(ops);
            pos += 8 + plen;
        }
        // Drop any torn tail so future appends start at a valid offset.
        let valid = lsn + pos as u64;
        if valid < self.len {
            self.file.set_len(valid)?;
            self.len = valid;
        }
        Ok(batches)
    }
}

fn encode_op(op: &WalOp, out: &mut Vec<u8>) {
    match op {
        WalOp::Write {
            key,
            value: Some(v),
            version,
        } => {
            out.push(0x01);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        WalOp::Write {
            key,
            value: None,
            version,
        } => {
            out.push(0x02);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
        }
        WalOp::ClearRange {
            begin,
            end,
            version,
        } => {
            out.push(0x03);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(begin.len() as u32).to_le_bytes());
            out.extend_from_slice(begin);
            out.extend_from_slice(&(end.len() as u32).to_le_bytes());
            out.extend_from_slice(end);
        }
    }
}

fn decode_batch(mut p: &[u8]) -> Option<Vec<WalOp>> {
    fn take<'a>(p: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if p.len() < n {
            return None;
        }
        let (head, tail) = p.split_at(n);
        *p = tail;
        Some(head)
    }
    fn take_u32(p: &mut &[u8]) -> Option<usize> {
        take(p, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
    }
    fn take_u64(p: &mut &[u8]) -> Option<u64> {
        take(p, 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    let mut ops = Vec::new();
    while !p.is_empty() {
        let tag = take(&mut p, 1)?[0];
        let version = take_u64(&mut p)?;
        let op = match tag {
            0x01 => {
                let klen = take_u32(&mut p)?;
                let key = take(&mut p, klen)?.to_vec();
                let vlen = take_u32(&mut p)?;
                let value = take(&mut p, vlen)?.to_vec();
                WalOp::Write {
                    key,
                    value: Some(value),
                    version,
                }
            }
            0x02 => {
                let klen = take_u32(&mut p)?;
                let key = take(&mut p, klen)?.to_vec();
                WalOp::Write {
                    key,
                    value: None,
                    version,
                }
            }
            0x03 => {
                let blen = take_u32(&mut p)?;
                let begin = take(&mut p, blen)?.to_vec();
                let elen = take_u32(&mut p)?;
                let end = take(&mut p, elen)?.to_vec();
                WalOp::ClearRange {
                    begin,
                    end,
                    version,
                }
            }
            _ => return None,
        };
        ops.push(op);
    }
    Some(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoCounters;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rl-storage-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn w(key: &[u8], value: Option<&[u8]>, version: u64) -> WalOp {
        WalOp::Write {
            key: key.to_vec(),
            value: value.map(<[u8]>::to_vec),
            version,
        }
    }

    #[test]
    fn batches_roundtrip() {
        let path = tmp("roundtrip");
        let counters = IoCounters::new_shared();
        let mut wal = Wal::open(&path).unwrap();
        wal.buffer(&w(b"a", Some(b"1"), 10));
        wal.buffer(&w(b"b", None, 10));
        wal.commit(&counters).unwrap();
        wal.buffer(&WalOp::ClearRange {
            begin: b"a".to_vec(),
            end: b"z".to_vec(),
            version: 20,
        });
        wal.commit(&counters).unwrap();
        drop(wal);

        let mut wal = Wal::open(&path).unwrap();
        let batches = wal.replay_from(0).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], vec![w(b"a", Some(b"1"), 10), w(b"b", None, 10)]);
        assert_eq!(counters.snapshot().log_appends, 2);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn uncommitted_ops_are_not_durable() {
        let path = tmp("uncommitted");
        let counters = IoCounters::new_shared();
        let mut wal = Wal::open(&path).unwrap();
        wal.buffer(&w(b"a", Some(b"1"), 10));
        wal.commit(&counters).unwrap();
        wal.buffer(&w(b"b", Some(b"2"), 20)); // never committed
        drop(wal);

        let mut wal = Wal::open(&path).unwrap();
        let batches = wal.replay_from(0).unwrap();
        assert_eq!(batches.len(), 1);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let counters = IoCounters::new_shared();
        let mut wal = Wal::open(&path).unwrap();
        wal.buffer(&w(b"a", Some(b"1"), 10));
        wal.commit(&counters).unwrap();
        let good_len = wal.len();
        // Simulate a torn append: garbage half-frame at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert!(wal.len() > good_len);
        let batches = wal.replay_from(0).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(wal.len(), good_len, "torn tail truncated");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn lsn_past_end_replays_nothing() {
        let path = tmp("past-end");
        let mut wal = Wal::open(&path).unwrap();
        assert!(wal.replay_from(1_000_000).unwrap().is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
