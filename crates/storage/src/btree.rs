//! Copy-on-write disk B-tree keyed on raw (tuple-encoded) bytes.
//!
//! Leaf entries map a key to its *version chain* — the same
//! `Vec<(version, Option<value>)>` the in-memory engine keeps — so MVCC
//! visibility is resolved identically in both engines. Keys and chains are
//! stored as [`Blob`]s: inline in the node payload when small, spilled to a
//! chain of overflow pages otherwise (FDB permits 10 kB keys and 100 kB
//! values, both far beyond one 4 kB page).
//!
//! All structural updates go through [`BufferPool::write_cow`], so the tree
//! rooted at the last checkpoint's meta slot is never damaged in place:
//! an update copies the modified leaf and its ancestor path to fresh pages
//! and moves the in-memory root. There is no rebalancing on delete — keys
//! only disappear during MVCC compaction, and empty leaves are simply
//! skipped by cursors (the next compaction-triggered split/merge churn is
//! accepted; the simulator favours simplicity over tail-packing).
//!
//! Internal separators use shortest-prefix truncation, so even pathological
//! shared-prefix keys keep internal nodes wide.

use std::cmp::Ordering;
use std::io;

use crate::page::{PageId, MAX_PAYLOAD, NO_PAGE};
use crate::pool::BufferPool;

/// A key's version chain, ascending by version. `None` is a tombstone.
pub type Chain = Vec<(u64, Option<Vec<u8>>)>;

/// The newest chain entry visible at `read_version`, if any.
pub fn chain_visible_at(chain: &[(u64, Option<Vec<u8>>)], read_version: u64) -> Option<&[u8]> {
    chain
        .iter()
        .rev()
        .find(|(v, _)| *v <= read_version)
        .and_then(|(_, val)| val.as_deref())
}

/// Apply one write to a chain (versions arrive in nondecreasing order).
pub fn chain_push(chain: &mut Chain, version: u64, value: Option<Vec<u8>>) {
    debug_assert!(chain.last().is_none_or(|(v, _)| *v <= version));
    if let Some(last) = chain.last_mut() {
        if last.0 == version {
            last.1 = value;
            return;
        }
    }
    chain.push((version, value));
}

/// Prune a chain at the MVCC horizon: drop entries shadowed at
/// `oldest_version`. Returns `None` when the whole entry is dead (only a
/// tombstone at or below the horizon remains).
pub fn chain_prune(chain: &[(u64, Option<Vec<u8>>)], oldest_version: u64) -> Option<Chain> {
    let split = chain
        .iter()
        .rposition(|(v, _)| *v <= oldest_version)
        .unwrap_or(0);
    let pruned: Chain = chain[split..].to_vec();
    if pruned.len() == 1 && pruned[0].1.is_none() && pruned[0].0 <= oldest_version {
        return None;
    }
    Some(pruned)
}

// ------------------------------------------------------------------ blobs

/// Keys over this length are spilled to overflow pages.
const INLINE_KEY_MAX: usize = 128;
/// Chains over this encoded length are spilled to overflow pages.
const INLINE_CHAIN_MAX: usize = 512;
/// Overflow page payload: type byte + next pointer + length prefix.
const OVERFLOW_HEADER: usize = 1 + 4 + 2;
const OVERFLOW_CAP: usize = MAX_PAYLOAD - OVERFLOW_HEADER;

const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;
const TAG_OVERFLOW: u8 = 3;

/// Bytes stored either inline in a node or in an overflow page chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blob {
    Inline(Vec<u8>),
    Overflow { head: PageId, len: u32 },
}

impl Blob {
    fn encoded_len(&self) -> usize {
        match self {
            Blob::Inline(b) => 1 + 4 + b.len(),
            Blob::Overflow { .. } => 1 + 4 + 4,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Blob::Inline(b) => {
                out.push(0);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Blob::Overflow { head, len } => {
                out.push(1);
                out.extend_from_slice(&head.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
    }
}

/// Store `bytes` as a blob, spilling to overflow pages beyond `inline_max`.
fn make_blob(pool: &mut BufferPool, bytes: &[u8], inline_max: usize) -> io::Result<Blob> {
    if bytes.len() <= inline_max {
        return Ok(Blob::Inline(bytes.to_vec()));
    }
    // Build the chain back to front so each page knows its successor.
    let mut next = NO_PAGE;
    let chunks: Vec<&[u8]> = bytes.chunks(OVERFLOW_CAP).collect();
    for chunk in chunks.iter().rev() {
        let mut payload = Vec::with_capacity(OVERFLOW_HEADER + chunk.len());
        payload.push(TAG_OVERFLOW);
        payload.extend_from_slice(&next.to_le_bytes());
        payload.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
        payload.extend_from_slice(chunk);
        next = pool.allocate(payload)?;
    }
    Ok(Blob::Overflow {
        head: next,
        len: bytes.len() as u32,
    })
}

/// Materialize a blob's bytes.
fn blob_bytes(pool: &mut BufferPool, blob: &Blob) -> io::Result<Vec<u8>> {
    match blob {
        Blob::Inline(b) => Ok(b.clone()),
        Blob::Overflow { head, len } => {
            let mut out = Vec::with_capacity(*len as usize);
            let mut id = *head;
            while id != NO_PAGE {
                let payload = pool.read(id)?;
                let (next, data) = decode_overflow(payload, id)?;
                out.extend_from_slice(data);
                id = next;
            }
            if out.len() != *len as usize {
                return Err(corrupt(format!(
                    "overflow chain at page {head}: expected {len} bytes, got {}",
                    out.len()
                )));
            }
            Ok(out)
        }
    }
}

/// Release a blob's overflow pages (no-op for inline).
fn free_blob(pool: &mut BufferPool, blob: &Blob) -> io::Result<()> {
    if let Blob::Overflow { head, .. } = blob {
        let mut id = *head;
        while id != NO_PAGE {
            let payload = pool.read(id)?;
            let (next, _) = decode_overflow(payload, id)?;
            pool.free(id);
            id = next;
        }
    }
    Ok(())
}

/// Compare a stored key blob against a probe key.
fn blob_cmp(pool: &mut BufferPool, blob: &Blob, key: &[u8]) -> io::Result<Ordering> {
    match blob {
        Blob::Inline(b) => Ok(b.as_slice().cmp(key)),
        Blob::Overflow { .. } => Ok(blob_bytes(pool, blob)?.as_slice().cmp(key)),
    }
}

fn decode_overflow(payload: &[u8], id: PageId) -> io::Result<(PageId, &[u8])> {
    if payload.len() < OVERFLOW_HEADER || payload[0] != TAG_OVERFLOW {
        return Err(corrupt(format!("page {id} is not an overflow page")));
    }
    let next = u32::from_le_bytes(payload[1..5].try_into().unwrap());
    let len = u16::from_le_bytes(payload[5..7].try_into().unwrap()) as usize;
    payload
        .get(OVERFLOW_HEADER..OVERFLOW_HEADER + len)
        .map(|d| (next, d))
        .ok_or_else(|| corrupt(format!("overflow page {id} truncated")))
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ------------------------------------------------------------------ nodes

#[derive(Debug, Clone)]
enum Node {
    /// `children.len() == seps.len() + 1`; child `i` holds keys in
    /// `[seps[i-1], seps[i])` (with open outer bounds).
    Internal {
        seps: Vec<Blob>,
        children: Vec<PageId>,
    },
    /// Sorted `(key, encoded chain)` entries.
    Leaf { entries: Vec<(Blob, Blob)> },
}

fn encode_node(node: &Node) -> Vec<u8> {
    let mut out = Vec::with_capacity(node_size(node));
    match node {
        Node::Internal { seps, children } => {
            out.push(TAG_INTERNAL);
            out.extend_from_slice(&(seps.len() as u16).to_le_bytes());
            out.extend_from_slice(&children[0].to_le_bytes());
            for (sep, child) in seps.iter().zip(&children[1..]) {
                sep.encode(&mut out);
                out.extend_from_slice(&child.to_le_bytes());
            }
        }
        Node::Leaf { entries } => {
            out.push(TAG_LEAF);
            out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
            for (key, chain) in entries {
                key.encode(&mut out);
                chain.encode(&mut out);
            }
        }
    }
    out
}

fn node_size(node: &Node) -> usize {
    match node {
        Node::Internal { seps, children } => {
            1 + 2 + 4 * children.len() + seps.iter().map(Blob::encoded_len).sum::<usize>()
        }
        Node::Leaf { entries } => {
            1 + 2
                + entries
                    .iter()
                    .map(|(k, c)| k.encoded_len() + c.encoded_len())
                    .sum::<usize>()
        }
    }
}

fn decode_node(payload: &[u8], id: PageId) -> io::Result<Node> {
    let mut p = payload;
    let tag = *take(&mut p, 1, id)?.first().unwrap();
    let count = u16::from_le_bytes(take(&mut p, 2, id)?.try_into().unwrap()) as usize;
    match tag {
        TAG_INTERNAL => {
            let mut children = Vec::with_capacity(count + 1);
            let mut seps = Vec::with_capacity(count);
            children.push(u32::from_le_bytes(take(&mut p, 4, id)?.try_into().unwrap()));
            for _ in 0..count {
                seps.push(decode_blob(&mut p, id)?);
                children.push(u32::from_le_bytes(take(&mut p, 4, id)?.try_into().unwrap()));
            }
            Ok(Node::Internal { seps, children })
        }
        TAG_LEAF => {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let key = decode_blob(&mut p, id)?;
                let chain = decode_blob(&mut p, id)?;
                entries.push((key, chain));
            }
            Ok(Node::Leaf { entries })
        }
        other => Err(corrupt(format!("page {id}: unknown node tag {other}"))),
    }
}

fn decode_blob(p: &mut &[u8], id: PageId) -> io::Result<Blob> {
    let flag = *take(p, 1, id)?.first().unwrap();
    match flag {
        0 => {
            let len = u32::from_le_bytes(take(p, 4, id)?.try_into().unwrap()) as usize;
            Ok(Blob::Inline(take(p, len, id)?.to_vec()))
        }
        1 => {
            let head = u32::from_le_bytes(take(p, 4, id)?.try_into().unwrap());
            let len = u32::from_le_bytes(take(p, 4, id)?.try_into().unwrap());
            Ok(Blob::Overflow { head, len })
        }
        other => Err(corrupt(format!("page {id}: unknown blob flag {other}"))),
    }
}

fn take<'a>(p: &mut &'a [u8], n: usize, id: PageId) -> io::Result<&'a [u8]> {
    if p.len() < n {
        return Err(corrupt(format!("page {id}: truncated node")));
    }
    let (head, tail) = p.split_at(n);
    *p = tail;
    Ok(head)
}

fn read_node(pool: &mut BufferPool, id: PageId) -> io::Result<Node> {
    let payload = pool.read(id)?.to_vec();
    decode_node(&payload, id)
}

// ------------------------------------------------------------ chain codec

pub fn encode_chain(chain: &[(u64, Option<Vec<u8>>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(chain.len() as u32).to_le_bytes());
    for (version, value) in chain {
        out.extend_from_slice(&version.to_le_bytes());
        match value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }
    out
}

pub fn decode_chain(mut p: &[u8]) -> io::Result<Chain> {
    let err = || corrupt("truncated version chain".to_string());
    if p.len() < 4 {
        return Err(err());
    }
    let count = u32::from_le_bytes(p[0..4].try_into().unwrap()) as usize;
    p = &p[4..];
    let mut chain = Vec::with_capacity(count);
    for _ in 0..count {
        if p.len() < 9 {
            return Err(err());
        }
        let version = u64::from_le_bytes(p[0..8].try_into().unwrap());
        let flag = p[8];
        p = &p[9..];
        let value = if flag == 1 {
            if p.len() < 4 {
                return Err(err());
            }
            let len = u32::from_le_bytes(p[0..4].try_into().unwrap()) as usize;
            if p.len() < 4 + len {
                return Err(err());
            }
            let v = p[4..4 + len].to_vec();
            p = &p[4 + len..];
            Some(v)
        } else {
            None
        };
        chain.push((version, value));
    }
    Ok(chain)
}

// -------------------------------------------------------------- mutations

/// The shortest separator `s` with `left_max < s <= right_min`.
fn shortest_separator(left_max: &[u8], right_min: &[u8]) -> Vec<u8> {
    debug_assert!(left_max < right_min);
    for i in 0..right_min.len() {
        if i >= left_max.len() || right_min[i] != left_max[i] {
            return right_min[..=i].to_vec();
        }
    }
    right_min.to_vec()
}

/// Routing: the child index for `key` (`#(seps <= key)`).
fn child_index(pool: &mut BufferPool, seps: &[Blob], key: &[u8]) -> io::Result<usize> {
    let (mut lo, mut hi) = (0usize, seps.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if blob_cmp(pool, &seps[mid], key)? == Ordering::Greater {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Binary search a leaf's entries: `Ok(i)` exact match, `Err(i)` insertion.
fn search_entries(
    pool: &mut BufferPool,
    entries: &[(Blob, Blob)],
    key: &[u8],
) -> io::Result<Result<usize, usize>> {
    let (mut lo, mut hi) = (0usize, entries.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        match blob_cmp(pool, &entries[mid].0, key)? {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => return Ok(Ok(mid)),
        }
    }
    Ok(Err(lo))
}

/// Read the version chain stored under `key`, if any.
pub fn get_chain(pool: &mut BufferPool, key: &[u8]) -> io::Result<Option<Chain>> {
    let mut id = pool.root();
    if id == NO_PAGE {
        return Ok(None);
    }
    loop {
        match read_node(pool, id)? {
            Node::Internal { seps, children } => {
                id = children[child_index(pool, &seps, key)?];
            }
            Node::Leaf { entries } => {
                return match search_entries(pool, &entries, key)? {
                    Ok(i) => {
                        let bytes = blob_bytes(pool, &entries[i].1)?;
                        Ok(Some(decode_chain(&bytes)?))
                    }
                    Err(_) => Ok(None),
                };
            }
        }
    }
}

/// Insert or replace the chain stored under `key`.
pub fn put_chain(
    pool: &mut BufferPool,
    key: &[u8],
    chain: &[(u64, Option<Vec<u8>>)],
) -> io::Result<()> {
    let root = pool.root();
    if root == NO_PAGE {
        let key_blob = make_blob(pool, key, INLINE_KEY_MAX)?;
        let chain_blob = make_blob(pool, &encode_chain(chain), INLINE_CHAIN_MAX)?;
        let id = pool.allocate(encode_node(&Node::Leaf {
            entries: vec![(key_blob, chain_blob)],
        }))?;
        pool.set_root(id);
        return Ok(());
    }
    let (new_root, split) = put_rec(pool, root, key, chain)?;
    let final_root = match split {
        None => new_root,
        Some((sep, right)) => pool.allocate(encode_node(&Node::Internal {
            seps: vec![sep],
            children: vec![new_root, right],
        }))?,
    };
    pool.set_root(final_root);
    Ok(())
}

/// Recursive insert; returns the node's (possibly new) page id plus a
/// `(separator, right sibling)` when the node split.
fn put_rec(
    pool: &mut BufferPool,
    id: PageId,
    key: &[u8],
    chain: &[(u64, Option<Vec<u8>>)],
) -> io::Result<(PageId, Option<(Blob, PageId)>)> {
    match read_node(pool, id)? {
        Node::Leaf { mut entries } => {
            let chain_blob = make_blob(pool, &encode_chain(chain), INLINE_CHAIN_MAX)?;
            match search_entries(pool, &entries, key)? {
                Ok(i) => {
                    let old = std::mem::replace(&mut entries[i].1, chain_blob);
                    free_blob(pool, &old)?;
                }
                Err(i) => {
                    let key_blob = make_blob(pool, key, INLINE_KEY_MAX)?;
                    entries.insert(i, (key_blob, chain_blob));
                }
            }
            write_leaf(pool, id, entries)
        }
        Node::Internal {
            mut seps,
            mut children,
        } => {
            let idx = child_index(pool, &seps, key)?;
            let (new_child, split) = put_rec(pool, children[idx], key, chain)?;
            children[idx] = new_child;
            if let Some((sep, right)) = split {
                seps.insert(idx, sep);
                children.insert(idx + 1, right);
            }
            write_internal(pool, id, seps, children)
        }
    }
}

/// Write a leaf back (CoW), splitting by byte weight when oversized.
fn write_leaf(
    pool: &mut BufferPool,
    id: PageId,
    entries: Vec<(Blob, Blob)>,
) -> io::Result<(PageId, Option<(Blob, PageId)>)> {
    let node = Node::Leaf { entries };
    if node_size(&node) <= MAX_PAYLOAD {
        let new_id = pool.write_cow(id, encode_node(&node))?;
        return Ok((new_id, None));
    }
    let Node::Leaf { entries } = node else {
        unreachable!()
    };
    // Split at the byte-weight midpoint, keeping both sides non-empty.
    let total: usize = entries
        .iter()
        .map(|(k, c)| k.encoded_len() + c.encoded_len())
        .sum();
    let mut acc = 0usize;
    let mut cut = entries.len() - 1;
    for (i, (k, c)) in entries.iter().enumerate() {
        acc += k.encoded_len() + c.encoded_len();
        if acc >= total / 2 && i + 1 < entries.len() {
            cut = i + 1;
            break;
        }
    }
    let cut = cut.max(1);
    let mut left = entries;
    let right = left.split_off(cut);
    let left_max = blob_bytes(pool, &left.last().unwrap().0)?;
    let right_min = blob_bytes(pool, &right.first().unwrap().0)?;
    let sep_bytes = shortest_separator(&left_max, &right_min);
    let sep = make_blob(pool, &sep_bytes, INLINE_KEY_MAX)?;
    let left_id = pool.write_cow(id, encode_node(&Node::Leaf { entries: left }))?;
    let right_id = pool.allocate(encode_node(&Node::Leaf { entries: right }))?;
    Ok((left_id, Some((sep, right_id))))
}

/// Write an internal node back (CoW), splitting when oversized.
fn write_internal(
    pool: &mut BufferPool,
    id: PageId,
    seps: Vec<Blob>,
    children: Vec<PageId>,
) -> io::Result<(PageId, Option<(Blob, PageId)>)> {
    let node = Node::Internal { seps, children };
    if node_size(&node) <= MAX_PAYLOAD {
        let new_id = pool.write_cow(id, encode_node(&node))?;
        return Ok((new_id, None));
    }
    let Node::Internal { mut seps, children } = node else {
        unreachable!()
    };
    // Promote the middle separator; each side keeps >= 1 separator.
    let mid = (seps.len() / 2).clamp(1, seps.len() - 2).max(1);
    let right_seps = seps.split_off(mid + 1);
    let promoted = seps.pop().unwrap();
    let mut left_children = children;
    let right_children = left_children.split_off(mid + 1);
    let left_id = pool.write_cow(
        id,
        encode_node(&Node::Internal {
            seps,
            children: left_children,
        }),
    )?;
    let right_id = pool.allocate(encode_node(&Node::Internal {
        seps: right_seps,
        children: right_children,
    }))?;
    Ok((left_id, Some((promoted, right_id))))
}

/// Remove `key` and its chain entirely (MVCC compaction of a dead entry).
/// Leaves are not rebalanced; an emptied leaf stays in place and cursors
/// skip it. Returns whether the key existed.
pub fn remove_key(pool: &mut BufferPool, key: &[u8]) -> io::Result<bool> {
    let root = pool.root();
    if root == NO_PAGE {
        return Ok(false);
    }
    let (new_root, removed) = remove_rec(pool, root, key)?;
    pool.set_root(new_root);
    Ok(removed)
}

fn remove_rec(pool: &mut BufferPool, id: PageId, key: &[u8]) -> io::Result<(PageId, bool)> {
    match read_node(pool, id)? {
        Node::Leaf { mut entries } => match search_entries(pool, &entries, key)? {
            Ok(i) => {
                let (key_blob, chain_blob) = entries.remove(i);
                free_blob(pool, &key_blob)?;
                free_blob(pool, &chain_blob)?;
                let new_id = pool.write_cow(id, encode_node(&Node::Leaf { entries }))?;
                Ok((new_id, true))
            }
            Err(_) => Ok((id, false)),
        },
        Node::Internal { seps, mut children } => {
            let idx = child_index(pool, &seps, key)?;
            let (new_child, removed) = remove_rec(pool, children[idx], key)?;
            if !removed {
                return Ok((id, false));
            }
            children[idx] = new_child;
            let new_id = pool.write_cow(id, encode_node(&Node::Internal { seps, children }))?;
            Ok((new_id, true))
        }
    }
}

// ---------------------------------------------------------------- cursors

/// A streaming tree cursor (forward or backward). Valid only while no
/// mutation runs — exactly the discipline the engine's `&mut self` methods
/// already enforce.
#[derive(Debug)]
pub struct Cursor {
    /// Internal-node trail: (page id, child index descended into).
    stack: Vec<(PageId, usize)>,
    /// Current leaf's entries with keys materialized.
    leaf: Vec<(Vec<u8>, Blob)>,
    /// Forward: next index to yield. Backward: one past the next index.
    pos: usize,
    forward: bool,
    done: bool,
}

impl Cursor {
    /// Position a forward cursor at the first key `>= begin`.
    pub fn forward_from(pool: &mut BufferPool, begin: &[u8]) -> io::Result<Cursor> {
        let mut cursor = Cursor {
            stack: Vec::new(),
            leaf: Vec::new(),
            pos: 0,
            forward: true,
            done: false,
        };
        let mut id = pool.root();
        if id == NO_PAGE {
            cursor.done = true;
            return Ok(cursor);
        }
        loop {
            match read_node(pool, id)? {
                Node::Internal { seps, children } => {
                    let idx = child_index(pool, &seps, begin)?;
                    cursor.stack.push((id, idx));
                    id = children[idx];
                }
                Node::Leaf { entries } => {
                    cursor.load_leaf(pool, entries)?;
                    cursor.pos = cursor.leaf.partition_point(|(k, _)| k.as_slice() < begin);
                    return Ok(cursor);
                }
            }
        }
    }

    /// Position a backward cursor just past the last key `< end`.
    pub fn backward_from(pool: &mut BufferPool, end: &[u8]) -> io::Result<Cursor> {
        let mut cursor = Cursor {
            stack: Vec::new(),
            leaf: Vec::new(),
            pos: 0,
            forward: false,
            done: false,
        };
        let mut id = pool.root();
        if id == NO_PAGE {
            cursor.done = true;
            return Ok(cursor);
        }
        loop {
            match read_node(pool, id)? {
                Node::Internal { seps, children } => {
                    let idx = child_index(pool, &seps, end)?;
                    cursor.stack.push((id, idx));
                    id = children[idx];
                }
                Node::Leaf { entries } => {
                    cursor.load_leaf(pool, entries)?;
                    cursor.pos = cursor.leaf.partition_point(|(k, _)| k.as_slice() < end);
                    return Ok(cursor);
                }
            }
        }
    }

    fn load_leaf(&mut self, pool: &mut BufferPool, entries: Vec<(Blob, Blob)>) -> io::Result<()> {
        self.leaf.clear();
        for (key, chain) in entries {
            self.leaf.push((blob_bytes(pool, &key)?, chain));
        }
        Ok(())
    }

    /// Yield the next `(key, chain)` in cursor direction, or `None`.
    pub fn next(&mut self, pool: &mut BufferPool) -> io::Result<Option<(Vec<u8>, Chain)>> {
        loop {
            if self.done {
                return Ok(None);
            }
            if self.forward {
                if self.pos < self.leaf.len() {
                    let (key, chain_blob) =
                        (self.leaf[self.pos].0.clone(), self.leaf[self.pos].1.clone());
                    self.pos += 1;
                    let bytes = blob_bytes(pool, &chain_blob)?;
                    return Ok(Some((key, decode_chain(&bytes)?)));
                }
                if !self.advance_leaf(pool)? {
                    self.done = true;
                }
            } else {
                if self.pos > 0 {
                    self.pos -= 1;
                    let (key, chain_blob) =
                        (self.leaf[self.pos].0.clone(), self.leaf[self.pos].1.clone());
                    let bytes = blob_bytes(pool, &chain_blob)?;
                    return Ok(Some((key, decode_chain(&bytes)?)));
                }
                if !self.retreat_leaf(pool)? {
                    self.done = true;
                }
            }
        }
    }

    /// Move to the leftmost leaf of the next subtree to the right.
    fn advance_leaf(&mut self, pool: &mut BufferPool) -> io::Result<bool> {
        while let Some((pid, idx)) = self.stack.pop() {
            let Node::Internal { children, .. } = read_node(pool, pid)? else {
                return Err(corrupt(format!(
                    "page {pid}: cursor stack expected internal"
                )));
            };
            if idx + 1 < children.len() {
                self.stack.push((pid, idx + 1));
                let mut id = children[idx + 1];
                loop {
                    match read_node(pool, id)? {
                        Node::Internal { children, .. } => {
                            self.stack.push((id, 0));
                            id = children[0];
                        }
                        Node::Leaf { entries } => {
                            self.load_leaf(pool, entries)?;
                            self.pos = 0;
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    /// Move to the rightmost leaf of the next subtree to the left.
    fn retreat_leaf(&mut self, pool: &mut BufferPool) -> io::Result<bool> {
        while let Some((pid, idx)) = self.stack.pop() {
            let Node::Internal { children, .. } = read_node(pool, pid)? else {
                return Err(corrupt(format!(
                    "page {pid}: cursor stack expected internal"
                )));
            };
            if idx > 0 {
                self.stack.push((pid, idx - 1));
                let mut id = children[idx - 1];
                loop {
                    match read_node(pool, id)? {
                        Node::Internal { children, .. } => {
                            let last = children.len() - 1;
                            self.stack.push((id, last));
                            id = children[last];
                        }
                        Node::Leaf { entries } => {
                            self.load_leaf(pool, entries)?;
                            self.pos = self.leaf.len();
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }
}

// ------------------------------------------------------------ diagnostics

/// Walk the whole tree verifying structure: child counts, separator and
/// key ordering, bounds implied by separators, blob/chain decodability,
/// and ascending versions within chains. Returns the number of keys.
pub fn check_consistency(pool: &mut BufferPool) -> io::Result<usize> {
    let root = pool.root();
    if root == NO_PAGE {
        return Ok(0);
    }
    check_rec(pool, root, None, None)
}

fn check_rec(
    pool: &mut BufferPool,
    id: PageId,
    lower: Option<&[u8]>,
    upper: Option<&[u8]>,
) -> io::Result<usize> {
    match read_node(pool, id)? {
        Node::Leaf { entries } => {
            let mut prev: Option<Vec<u8>> = None;
            for (key_blob, chain_blob) in &entries {
                let key = blob_bytes(pool, key_blob)?;
                if let Some(lo) = lower {
                    if key.as_slice() < lo {
                        return Err(corrupt(format!("leaf {id}: key below lower bound")));
                    }
                }
                if let Some(hi) = upper {
                    if key.as_slice() >= hi {
                        return Err(corrupt(format!("leaf {id}: key above upper bound")));
                    }
                }
                if let Some(p) = &prev {
                    if p >= &key {
                        return Err(corrupt(format!("leaf {id}: keys out of order")));
                    }
                }
                let chain = decode_chain(&blob_bytes(pool, chain_blob)?)?;
                if chain.windows(2).any(|w| w[0].0 > w[1].0) {
                    return Err(corrupt(format!("leaf {id}: chain versions out of order")));
                }
                prev = Some(key);
            }
            Ok(entries.len())
        }
        Node::Internal { seps, children } => {
            if children.len() != seps.len() + 1 {
                return Err(corrupt(format!("internal {id}: child/separator mismatch")));
            }
            let sep_bytes: Vec<Vec<u8>> = seps
                .iter()
                .map(|s| blob_bytes(pool, s))
                .collect::<io::Result<_>>()?;
            if sep_bytes.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt(format!("internal {id}: separators out of order")));
            }
            let mut count = 0usize;
            for (i, &child) in children.iter().enumerate() {
                let lo = if i == 0 {
                    lower
                } else {
                    Some(sep_bytes[i - 1].as_slice())
                };
                let hi = if i == children.len() - 1 {
                    upper
                } else {
                    Some(sep_bytes[i].as_slice())
                };
                count += check_rec(pool, child, lo, hi)?;
            }
            Ok(count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvictionPolicy;
    use crate::IoCounters;

    fn pool(name: &str, pages: usize) -> (BufferPool, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("rl-storage-btree-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = BufferPool::open(
            &dir.join("pages.db"),
            pages,
            EvictionPolicy::Lru,
            IoCounters::new_shared(),
        )
        .unwrap();
        (p, dir)
    }

    fn chain_of(version: u64, value: &[u8]) -> Chain {
        vec![(version, Some(value.to_vec()))]
    }

    #[test]
    fn put_get_many_keys_with_splits() {
        let (mut pool, dir) = pool("splits", 64);
        // Insert in a shuffled-ish order to exercise splits on both sides.
        let mut keys: Vec<u32> = (0..500).collect();
        keys.reverse();
        for &i in &keys {
            let key = format!("key-{i:05}").into_bytes();
            put_chain(
                &mut pool,
                &key,
                &chain_of(10, format!("val-{i}").as_bytes()),
            )
            .unwrap();
        }
        assert_eq!(check_consistency(&mut pool).unwrap(), 500);
        for i in (0..500).step_by(17) {
            let key = format!("key-{i:05}").into_bytes();
            let chain = get_chain(&mut pool, &key).unwrap().unwrap();
            assert_eq!(
                chain_visible_at(&chain, 10),
                Some(format!("val-{i}").as_bytes())
            );
        }
        assert!(get_chain(&mut pool, b"missing").unwrap().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn big_values_spill_to_overflow() {
        let (mut pool, dir) = pool("overflow", 64);
        let big = vec![0x5A; 90_000]; // ~22 overflow pages
        put_chain(&mut pool, b"big", &chain_of(5, &big)).unwrap();
        put_chain(&mut pool, b"small", &chain_of(5, b"x")).unwrap();
        let chain = get_chain(&mut pool, b"big").unwrap().unwrap();
        assert_eq!(chain_visible_at(&chain, 9), Some(&big[..]));
        // Replacing the big chain frees the old overflow pages for reuse.
        put_chain(&mut pool, b"big", &chain_of(6, b"tiny-now")).unwrap();
        let chain = get_chain(&mut pool, b"big").unwrap().unwrap();
        assert_eq!(chain_visible_at(&chain, 9), Some(b"tiny-now".as_slice()));
        assert_eq!(check_consistency(&mut pool).unwrap(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn long_keys_spill_to_overflow() {
        let (mut pool, dir) = pool("longkeys", 64);
        let mut long_a = vec![b'a'; 9_000];
        long_a.push(1);
        let mut long_b = vec![b'a'; 9_000]; // shares a 9000-byte prefix
        long_b.push(2);
        put_chain(&mut pool, &long_a, &chain_of(5, b"A")).unwrap();
        put_chain(&mut pool, &long_b, &chain_of(5, b"B")).unwrap();
        put_chain(&mut pool, b"zz", &chain_of(5, b"Z")).unwrap();
        let c = get_chain(&mut pool, &long_a).unwrap().unwrap();
        assert_eq!(chain_visible_at(&c, 9), Some(b"A".as_slice()));
        let c = get_chain(&mut pool, &long_b).unwrap().unwrap();
        assert_eq!(chain_visible_at(&c, 9), Some(b"B".as_slice()));
        assert_eq!(check_consistency(&mut pool).unwrap(), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cursors_stream_both_directions() {
        let (mut pool, dir) = pool("cursors", 64);
        for i in 0..200u32 {
            let key = format!("k{i:04}").into_bytes();
            put_chain(&mut pool, &key, &chain_of(10, &i.to_le_bytes())).unwrap();
        }
        let mut cursor = Cursor::forward_from(&mut pool, b"k0050").unwrap();
        let mut seen = Vec::new();
        while let Some((key, _)) = cursor.next(&mut pool).unwrap() {
            if key.as_slice() >= b"k0060".as_slice() {
                break;
            }
            seen.push(key);
        }
        let want: Vec<Vec<u8>> = (50..60).map(|i| format!("k{i:04}").into_bytes()).collect();
        assert_eq!(seen, want);

        let mut cursor = Cursor::backward_from(&mut pool, b"k0010").unwrap();
        let mut seen = Vec::new();
        while let Some((key, _)) = cursor.next(&mut pool).unwrap() {
            seen.push(key);
        }
        let want: Vec<Vec<u8>> = (0..10)
            .rev()
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        assert_eq!(seen, want);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_key_drops_entries() {
        let (mut pool, dir) = pool("remove", 64);
        for i in 0..100u32 {
            put_chain(
                &mut pool,
                format!("k{i:03}").as_bytes(),
                &chain_of(10, b"v"),
            )
            .unwrap();
        }
        for i in (0..100u32).step_by(2) {
            assert!(remove_key(&mut pool, format!("k{i:03}").as_bytes()).unwrap());
        }
        assert!(!remove_key(&mut pool, b"k000").unwrap());
        assert_eq!(check_consistency(&mut pool).unwrap(), 50);
        assert!(get_chain(&mut pool, b"k001").unwrap().is_some());
        assert!(get_chain(&mut pool, b"k002").unwrap().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tiny_pool_still_correct() {
        // A 4-frame pool forces constant eviction under every operation.
        let (mut pool, dir) = pool("tiny", 4);
        for i in 0..300u32 {
            let key = format!("k{i:04}").into_bytes();
            put_chain(&mut pool, &key, &chain_of(10, format!("v{i}").as_bytes())).unwrap();
        }
        assert_eq!(check_consistency(&mut pool).unwrap(), 300);
        for i in (0..300).step_by(23) {
            let chain = get_chain(&mut pool, format!("k{i:04}").as_bytes())
                .unwrap()
                .unwrap();
            assert_eq!(
                chain_visible_at(&chain, 10),
                Some(format!("v{i}").as_bytes())
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
