//! The [`StorageEngine`] trait: the MVCC storage contract the simulator's
//! commit pipeline and read paths are written against.
//!
//! The method set is exactly the API the original in-memory `VersionedStore`
//! grew inside `rl_fdb`, so both engines are drop-in replacements for each
//! other. All methods take `&mut self`: the database serializes access
//! behind its store lock, and the paged engine mutates buffer-pool state
//! even on reads. Engines whose reads are genuinely side-effect-free can
//! additionally expose a [`SharedRead`] view via
//! [`StorageEngine::as_shared_read`], letting the database run MVCC
//! snapshot reads under a shared lock, concurrently with each other.

use std::str::FromStr;

/// Which buffer-pool eviction policy a paged engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used page (exact recency order).
    #[default]
    Lru,
    /// Second-chance clock: a hand sweeps frames, clearing reference bits.
    Clock,
    /// SIEVE (NSDI'24): FIFO order with a lazily moving hand that spares
    /// visited pages; scan-resistant with less bookkeeping than LRU.
    Sieve,
}

impl EvictionPolicy {
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Clock,
        EvictionPolicy::Sieve,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::Sieve => "sieve",
        }
    }
}

impl FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(EvictionPolicy::Lru),
            "clock" => Ok(EvictionPolicy::Clock),
            "sieve" => Ok(EvictionPolicy::Sieve),
            other => Err(format!(
                "unknown eviction policy '{other}' (lru|clock|sieve)"
            )),
        }
    }
}

/// Ordered multi-version key-value storage, as required by the simulator.
///
/// Versions must be applied in nondecreasing order (the commit pipeline
/// guarantees this); reads at `read_version` observe, for each key, the
/// newest write with version `<= read_version`.
pub trait StorageEngine: Send + Sync + std::fmt::Debug {
    /// Record a write (set, or clear via `None`) at `version`.
    fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>, version: u64);

    /// Clear every key in `[begin, end)` at `version` by writing tombstones.
    fn clear_range(&mut self, begin: &[u8], end: &[u8], version: u64);

    /// Mark the end of a committed batch. A crash-safe engine makes every
    /// write since the previous `commit_batch` durable atomically; the
    /// in-memory engine ignores it.
    fn commit_batch(&mut self) {}

    /// Read the value of `key` visible at `read_version`.
    fn get(&mut self, key: &[u8], read_version: u64) -> Option<Vec<u8>>;

    /// Iterate keys in `[begin, end)` visible at `read_version`, in order.
    /// `reverse` walks from the end of the range backwards.
    fn range(
        &mut self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// The last key `< key` (or `<= key` with `or_equal`) visible at
    /// `read_version`. Used for key-selector resolution.
    fn last_less(&mut self, key: &[u8], or_equal: bool, read_version: u64) -> Option<Vec<u8>>;

    /// The `n`-th visible key strictly after `anchor` (n >= 1), if any.
    fn nth_after(&mut self, anchor: Option<&[u8]>, n: usize, read_version: u64) -> Option<Vec<u8>>;

    /// Drop versions that are no longer visible to any read version
    /// `>= oldest_version`, and entries that are entirely dead.
    fn compact(&mut self, oldest_version: u64);

    /// Force all buffered state to disk (checkpoint). No-op in memory.
    fn flush(&mut self) {}

    /// Number of live keys at `read_version` (test/diagnostic helper).
    fn live_key_count(&mut self, read_version: u64) -> usize;

    /// Total number of (key, version) entries retained (diagnostic).
    fn total_version_entries(&mut self) -> usize;

    /// Short human-readable engine description for diagnostics.
    fn describe(&self) -> String;

    /// A shared, side-effect-free view of this engine's read path, if it
    /// has one. The in-memory engine returns `Some` (its reads never
    /// mutate); the paged engine returns `None` because even a point read
    /// touches buffer-pool recency state, so its reads stay behind the
    /// exclusive lock.
    fn as_shared_read(&self) -> Option<&dyn SharedRead> {
        None
    }
}

/// Read-only MVCC access that is safe under a shared lock: many readers
/// (and no writer) at once. Semantics match the corresponding
/// [`StorageEngine`] methods exactly.
pub trait SharedRead: Sync {
    /// Read the value of `key` visible at `read_version`.
    fn get(&self, key: &[u8], read_version: u64) -> Option<Vec<u8>>;

    /// Iterate keys in `[begin, end)` visible at `read_version`, in order.
    fn range(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Number of live keys at `read_version`.
    fn live_key_count(&self, read_version: u64) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_policy_parses() {
        assert_eq!(
            "lru".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::Lru
        );
        assert_eq!(
            "Clock".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::Clock
        );
        assert_eq!(
            "SIEVE".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::Sieve
        );
        assert!("fifo".parse::<EvictionPolicy>().is_err());
    }
}
