//! The in-memory engine: an ordered multi-version map.
//!
//! This is the original `VersionedStore` from `rl_fdb`, moved here verbatim
//! (plus a streaming reverse-range fix) and kept as the differential-test
//! oracle for the disk-backed engine. Every committed write is recorded
//! under its commit version; reads at a read version `v` observe, for each
//! key, the newest write with version `<= v`. Old versions are
//! garbage-collected once they fall out of the MVCC window.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::engine::{SharedRead, StorageEngine};

/// One versioned write to a key: `None` is a tombstone (clear).
#[derive(Debug, Clone)]
struct VersionedValue {
    version: u64,
    value: Option<Vec<u8>>,
}

/// Ordered multi-version key-value storage in memory.
#[derive(Debug, Default)]
pub struct MemoryEngine {
    map: BTreeMap<Vec<u8>, Vec<VersionedValue>>,
}

impl MemoryEngine {
    pub fn new() -> Self {
        MemoryEngine {
            map: BTreeMap::new(),
        }
    }

    /// Record a write (set or clear) at `version`. Versions must be applied
    /// in nondecreasing order, which the commit pipeline guarantees.
    pub fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>, version: u64) {
        let versions = self.map.entry(key).or_default();
        debug_assert!(versions.last().is_none_or(|v| v.version <= version));
        if let Some(last) = versions.last_mut() {
            if last.version == version {
                last.value = value;
                return;
            }
        }
        versions.push(VersionedValue { version, value });
    }

    /// Clear every key in `[begin, end)` at `version` by writing tombstones.
    ///
    /// Tombstoning key-by-key (rather than tracking range tombstones) keeps
    /// reads simple; the cost is proportional to the number of live keys in
    /// the range, which matches FDB's own storage-server behaviour closely
    /// enough for the experiments in this repository.
    pub fn clear_range(&mut self, begin: &[u8], end: &[u8], version: u64) {
        let keys: Vec<Vec<u8>> = self
            .map
            .range::<[u8], _>((Bound::Included(begin), Bound::Excluded(end)))
            .filter(|(_, vs)| vs.last().is_some_and(|v| v.value.is_some()))
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            self.write(k, None, version);
        }
    }

    /// Read the value of `key` visible at `read_version`.
    pub fn get(&self, key: &[u8], read_version: u64) -> Option<Vec<u8>> {
        let versions = self.map.get(key)?;
        versions
            .iter()
            .rev()
            .find(|v| v.version <= read_version)
            .and_then(|v| v.value.clone())
    }

    /// Iterate keys in `[begin, end)` visible at `read_version`, in order.
    /// `reverse` walks from the end of the range backwards; both directions
    /// stream straight off the `BTreeMap` range iterator (the reverse path
    /// used to buffer the whole visible range and reverse it).
    pub fn range(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let iter = self
            .map
            .range::<[u8], _>((Bound::Included(begin), Bound::Excluded(end)));
        let visible = move |(k, versions): (&Vec<u8>, &Vec<VersionedValue>)| {
            versions
                .iter()
                .rev()
                .find(|v| v.version <= read_version)
                .and_then(|v| v.value.as_ref())
                .map(|val| (k.clone(), val.clone()))
        };
        if reverse {
            iter.rev().filter_map(visible).collect()
        } else {
            iter.filter_map(visible).collect()
        }
    }

    /// The last key `< key` (or `<= key` with `or_equal`) visible at
    /// `read_version`. Used for key-selector resolution.
    pub fn last_less(&self, key: &[u8], or_equal: bool, read_version: u64) -> Option<Vec<u8>> {
        let bound = if or_equal {
            Bound::Included(key)
        } else {
            Bound::Excluded(key)
        };
        self.map
            .range::<[u8], _>((Bound::Unbounded, bound))
            .rev()
            .find(|(_, versions)| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.version <= read_version)
                    .is_some_and(|v| v.value.is_some())
            })
            .map(|(k, _)| k.clone())
    }

    /// The `n`-th visible key strictly after `anchor` (n >= 1), if any.
    pub fn nth_after(&self, anchor: Option<&[u8]>, n: usize, read_version: u64) -> Option<Vec<u8>> {
        let lower = match anchor {
            Some(a) => Bound::Excluded(a),
            None => Bound::Unbounded,
        };
        self.map
            .range::<[u8], _>((lower, Bound::Unbounded))
            .filter(|(_, versions)| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.version <= read_version)
                    .is_some_and(|v| v.value.is_some())
            })
            .nth(n - 1)
            .map(|(k, _)| k.clone())
    }

    /// Drop versions that are no longer visible to any read version
    /// `>= oldest_version`, and empty entries.
    pub fn compact(&mut self, oldest_version: u64) {
        self.map.retain(|_, versions| {
            // Keep the newest version <= oldest_version (still the visible
            // base for readers at the horizon) plus everything newer.
            let split = versions
                .iter()
                .rposition(|v| v.version <= oldest_version)
                .unwrap_or(0);
            if split > 0 {
                versions.drain(..split);
            }
            // Entry can go entirely once only tombstones at/below the
            // horizon remain.
            !(versions.len() == 1
                && versions[0].value.is_none()
                && versions[0].version <= oldest_version)
        });
    }

    /// Number of live keys at `read_version` (test/diagnostic helper).
    pub fn live_key_count(&self, read_version: u64) -> usize {
        self.map
            .values()
            .filter(|versions| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.version <= read_version)
                    .is_some_and(|v| v.value.is_some())
            })
            .count()
    }

    /// Total number of (key, version) entries retained (diagnostic).
    pub fn total_version_entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }
}

impl StorageEngine for MemoryEngine {
    fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>, version: u64) {
        MemoryEngine::write(self, key, value, version);
    }

    fn clear_range(&mut self, begin: &[u8], end: &[u8], version: u64) {
        MemoryEngine::clear_range(self, begin, end, version);
    }

    fn get(&mut self, key: &[u8], read_version: u64) -> Option<Vec<u8>> {
        MemoryEngine::get(self, key, read_version)
    }

    fn range(
        &mut self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        MemoryEngine::range(self, begin, end, read_version, reverse)
    }

    fn last_less(&mut self, key: &[u8], or_equal: bool, read_version: u64) -> Option<Vec<u8>> {
        MemoryEngine::last_less(self, key, or_equal, read_version)
    }

    fn nth_after(&mut self, anchor: Option<&[u8]>, n: usize, read_version: u64) -> Option<Vec<u8>> {
        MemoryEngine::nth_after(self, anchor, n, read_version)
    }

    fn compact(&mut self, oldest_version: u64) {
        MemoryEngine::compact(self, oldest_version);
    }

    fn live_key_count(&mut self, read_version: u64) -> usize {
        MemoryEngine::live_key_count(self, read_version)
    }

    fn total_version_entries(&mut self) -> usize {
        MemoryEngine::total_version_entries(self)
    }

    fn describe(&self) -> String {
        format!("memory(keys={})", self.map.len())
    }

    fn as_shared_read(&self) -> Option<&dyn SharedRead> {
        Some(self)
    }
}

impl SharedRead for MemoryEngine {
    fn get(&self, key: &[u8], read_version: u64) -> Option<Vec<u8>> {
        MemoryEngine::get(self, key, read_version)
    }

    fn range(
        &self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        MemoryEngine::range(self, begin, end, read_version, reverse)
    }

    fn live_key_count(&self, read_version: u64) -> usize {
        MemoryEngine::live_key_count(self, read_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_version() {
        let mut s = MemoryEngine::new();
        s.write(b"k".to_vec(), Some(b"v1".to_vec()), 10);
        s.write(b"k".to_vec(), Some(b"v2".to_vec()), 20);
        assert_eq!(s.get(b"k", 5), None);
        assert_eq!(s.get(b"k", 10), Some(b"v1".to_vec()));
        assert_eq!(s.get(b"k", 15), Some(b"v1".to_vec()));
        assert_eq!(s.get(b"k", 20), Some(b"v2".to_vec()));
        assert_eq!(s.get(b"k", 100), Some(b"v2".to_vec()));
    }

    #[test]
    fn tombstones_hide_values() {
        let mut s = MemoryEngine::new();
        s.write(b"k".to_vec(), Some(b"v".to_vec()), 10);
        s.write(b"k".to_vec(), None, 20);
        assert_eq!(s.get(b"k", 15), Some(b"v".to_vec()));
        assert_eq!(s.get(b"k", 25), None);
    }

    #[test]
    fn range_respects_versions_and_order() {
        let mut s = MemoryEngine::new();
        s.write(b"a".to_vec(), Some(b"1".to_vec()), 10);
        s.write(b"b".to_vec(), Some(b"2".to_vec()), 20);
        s.write(b"c".to_vec(), Some(b"3".to_vec()), 10);
        let r = s.range(b"a", b"z", 15, false);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, b"a");
        assert_eq!(r[1].0, b"c");
        let r = s.range(b"a", b"z", 25, true);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].0, b"c");
        assert_eq!(r[2].0, b"a");
    }

    #[test]
    fn reverse_range_streams_same_results() {
        let mut s = MemoryEngine::new();
        for i in 0..100u32 {
            s.write(format!("k{i:03}").into_bytes(), Some(vec![i as u8]), 10);
        }
        s.write(b"k050".to_vec(), None, 20); // tombstone mid-range
        let mut fwd = s.range(b"k010", b"k090", 25, false);
        let rev = s.range(b"k010", b"k090", 25, true);
        fwd.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn clear_range_tombstones_only_inside() {
        let mut s = MemoryEngine::new();
        for k in [b"a", b"b", b"c", b"d"] {
            s.write(k.to_vec(), Some(b"v".to_vec()), 10);
        }
        s.clear_range(b"b", b"d", 20);
        let r = s.range(b"a", b"z", 25, false);
        let keys: Vec<_> = r.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"d".to_vec()]);
        // Old readers still see everything.
        assert_eq!(s.range(b"a", b"z", 15, false).len(), 4);
    }

    #[test]
    fn last_less_and_nth_after() {
        let mut s = MemoryEngine::new();
        for k in [b"b", b"d", b"f"] {
            s.write(k.to_vec(), Some(b"v".to_vec()), 10);
        }
        assert_eq!(s.last_less(b"d", false, 20), Some(b"b".to_vec()));
        assert_eq!(s.last_less(b"d", true, 20), Some(b"d".to_vec()));
        assert_eq!(s.last_less(b"a", false, 20), None);
        assert_eq!(s.nth_after(Some(b"b"), 1, 20), Some(b"d".to_vec()));
        assert_eq!(s.nth_after(Some(b"b"), 2, 20), Some(b"f".to_vec()));
        assert_eq!(s.nth_after(None, 1, 20), Some(b"b".to_vec()));
        assert_eq!(s.nth_after(Some(b"f"), 1, 20), None);
    }

    #[test]
    fn compact_drops_shadowed_versions() {
        let mut s = MemoryEngine::new();
        s.write(b"k".to_vec(), Some(b"v1".to_vec()), 10);
        s.write(b"k".to_vec(), Some(b"v2".to_vec()), 20);
        s.write(b"k".to_vec(), Some(b"v3".to_vec()), 30);
        assert_eq!(s.total_version_entries(), 3);
        s.compact(25);
        assert_eq!(s.total_version_entries(), 2);
        assert_eq!(s.get(b"k", 25), Some(b"v2".to_vec()));
        assert_eq!(s.get(b"k", 35), Some(b"v3".to_vec()));
    }

    #[test]
    fn compact_removes_dead_tombstones() {
        let mut s = MemoryEngine::new();
        s.write(b"k".to_vec(), Some(b"v".to_vec()), 10);
        s.write(b"k".to_vec(), None, 20);
        s.compact(30);
        assert_eq!(s.total_version_entries(), 0);
    }
}
