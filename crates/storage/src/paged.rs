//! The disk-backed engine: buffer pool + CoW B-tree + write-ahead log.
//!
//! ## Write path
//!
//! Each [`StorageEngine::write`]/[`StorageEngine::clear_range`] is buffered
//! into the WAL *and* applied to the tree immediately; nothing reaches the
//! log file until [`StorageEngine::commit_batch`] appends the buffered ops
//! as one checksummed frame. This is also the group-commit contract the
//! database's commit batcher relies on: it applies every transaction in a
//! batch, then seals them with a *single* `commit_batch`, so N concurrent
//! committers pay one WAL frame (one `log_appends` tick) instead of N.
//! The tree pages the batch dirtied stay in the
//! buffer pool (or get evicted to disk) without any ordering constraint,
//! because the on-disk meta root still points at the last checkpoint's
//! tree — shadow paging guarantees eviction can never damage it.
//!
//! ## Recovery
//!
//! Open loads the newest valid meta slot (tree root + WAL offset), then
//! replays committed WAL frames from that offset, truncating any torn
//! tail. A batch that never got its commit frame vanishes entirely, which
//! is exactly the transaction-atomicity contract the database expects.
//!
//! The simulator equates "crash" with "process stopped", so no fsync is
//! issued; the *ordering* points (checkpoint = flush pages, then meta,
//! then reuse old pages / truncate log) are where barriers would go in a
//! real deployment.

use std::io;
use std::path::{Path, PathBuf};

use crate::btree::{self, chain_prune, chain_push, chain_visible_at, Chain, Cursor};
use crate::engine::{EvictionPolicy, StorageEngine};
use crate::pool::BufferPool;
use crate::wal::{Wal, WalOp};
use crate::SharedIoCounters;

/// Checkpoint (and truncate the WAL) once it grows past this size.
const WAL_CHECKPOINT_BYTES: u64 = 1 << 20;

/// Disk-backed MVCC storage engine.
#[derive(Debug)]
pub struct PagedEngine {
    pool: BufferPool,
    wal: Wal,
    counters: SharedIoCounters,
    policy: EvictionPolicy,
    pool_pages: usize,
    dir: PathBuf,
}

impl PagedEngine {
    /// Open (or create) an engine rooted at directory `dir`, holding
    /// `pages.db` and `wal.log`. Replays any committed WAL tail past the
    /// last checkpoint before returning.
    pub fn open(
        dir: &Path,
        pool_pages: usize,
        policy: EvictionPolicy,
        counters: SharedIoCounters,
    ) -> io::Result<PagedEngine> {
        std::fs::create_dir_all(dir)?;
        let pool = BufferPool::open(&dir.join("pages.db"), pool_pages, policy, counters.clone())?;
        let wal = Wal::open(&dir.join("wal.log"))?;
        let mut engine = PagedEngine {
            pool,
            wal,
            counters,
            policy,
            pool_pages,
            dir: dir.to_path_buf(),
        };
        engine.recover()?;
        Ok(engine)
    }

    fn recover(&mut self) -> io::Result<()> {
        let lsn = self.pool.checkpoint_lsn();
        let batches = self.wal.replay_from(lsn)?;
        if batches.is_empty() {
            return Ok(());
        }
        for batch in batches {
            for op in batch {
                match op {
                    WalOp::Write {
                        key,
                        value,
                        version,
                    } => self.apply_write(&key, value, version)?,
                    WalOp::ClearRange {
                        begin,
                        end,
                        version,
                    } => self.apply_clear_range(&begin, &end, version)?,
                }
            }
        }
        // Fold the replayed tail into a fresh checkpoint so the next open
        // starts clean.
        self.pool.checkpoint(self.wal.len())
    }

    /// Tear down without running the destructor's checkpoint — the on-disk
    /// state is left exactly as a process kill would leave it. Buffered
    /// (uncommitted) WAL ops are lost, as they should be. The underlying
    /// file handles are deliberately leaked; the OS reclaims them.
    pub fn simulate_crash(self) {
        std::mem::forget(self);
    }

    /// Structural self-check; returns the number of keys in the tree.
    pub fn check_consistency(&mut self) -> io::Result<usize> {
        btree::check_consistency(&mut self.pool)
    }

    fn apply_write(&mut self, key: &[u8], value: Option<Vec<u8>>, version: u64) -> io::Result<()> {
        let mut chain = btree::get_chain(&mut self.pool, key)?.unwrap_or_default();
        chain_push(&mut chain, version, value);
        btree::put_chain(&mut self.pool, key, &chain)
    }

    fn apply_clear_range(&mut self, begin: &[u8], end: &[u8], version: u64) -> io::Result<()> {
        // Tombstone keys whose newest chain entry is a live value —
        // mirroring the in-memory engine exactly.
        let mut doomed: Vec<(Vec<u8>, Chain)> = Vec::new();
        let mut cursor = Cursor::forward_from(&mut self.pool, begin)?;
        while let Some((key, chain)) = cursor.next(&mut self.pool)? {
            if key.as_slice() >= end {
                break;
            }
            if chain.last().is_some_and(|(_, v)| v.is_some()) {
                doomed.push((key, chain));
            }
        }
        for (key, mut chain) in doomed {
            chain_push(&mut chain, version, None);
            btree::put_chain(&mut self.pool, &key, &chain)?;
        }
        Ok(())
    }

    fn try_commit_batch(&mut self) -> io::Result<()> {
        self.wal.commit(&self.counters)?;
        if self.wal.len() > WAL_CHECKPOINT_BYTES {
            self.try_flush()?;
        }
        Ok(())
    }

    /// Checkpoint the tree and truncate the superseded WAL.
    fn try_flush(&mut self) -> io::Result<()> {
        self.pool.checkpoint(self.wal.len())?;
        if !self.wal.is_empty() {
            // Order matters: truncate first, then record lsn=0. A crash in
            // between leaves meta pointing past the (empty) log, which
            // recovery treats as "nothing to replay".
            self.wal.truncate()?;
            self.pool.checkpoint(0)?;
        }
        Ok(())
    }

    fn try_get(&mut self, key: &[u8], read_version: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(btree::get_chain(&mut self.pool, key)?
            .and_then(|chain| chain_visible_at(&chain, read_version).map(<[u8]>::to_vec)))
    }

    fn try_range(
        &mut self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        if reverse {
            let mut cursor = Cursor::backward_from(&mut self.pool, end)?;
            while let Some((key, chain)) = cursor.next(&mut self.pool)? {
                if key.as_slice() < begin {
                    break;
                }
                if let Some(value) = chain_visible_at(&chain, read_version) {
                    out.push((key, value.to_vec()));
                }
            }
        } else {
            let mut cursor = Cursor::forward_from(&mut self.pool, begin)?;
            while let Some((key, chain)) = cursor.next(&mut self.pool)? {
                if key.as_slice() >= end {
                    break;
                }
                if let Some(value) = chain_visible_at(&chain, read_version) {
                    out.push((key, value.to_vec()));
                }
            }
        }
        Ok(out)
    }

    fn try_last_less(
        &mut self,
        key: &[u8],
        or_equal: bool,
        read_version: u64,
    ) -> io::Result<Option<Vec<u8>>> {
        // `<= key` is `< successor(key)`: appending 0x00 forms the smallest
        // key strictly greater, so the exclusive bound includes `key`.
        let bound: Vec<u8> = if or_equal {
            let mut b = key.to_vec();
            b.push(0);
            b
        } else {
            key.to_vec()
        };
        let mut cursor = Cursor::backward_from(&mut self.pool, &bound)?;
        while let Some((k, chain)) = cursor.next(&mut self.pool)? {
            if chain_visible_at(&chain, read_version).is_some() {
                return Ok(Some(k));
            }
        }
        Ok(None)
    }

    fn try_nth_after(
        &mut self,
        anchor: Option<&[u8]>,
        n: usize,
        read_version: u64,
    ) -> io::Result<Option<Vec<u8>>> {
        let begin: Vec<u8> = match anchor {
            Some(a) => {
                let mut b = a.to_vec();
                b.push(0); // strictly after the anchor
                b
            }
            None => Vec::new(),
        };
        let mut cursor = Cursor::forward_from(&mut self.pool, &begin)?;
        let mut remaining = n;
        while let Some((key, chain)) = cursor.next(&mut self.pool)? {
            if chain_visible_at(&chain, read_version).is_some() {
                remaining -= 1;
                if remaining == 0 {
                    return Ok(Some(key));
                }
            }
        }
        Ok(None)
    }

    fn try_compact(&mut self, oldest_version: u64) -> io::Result<()> {
        // Scan first, mutate after: the cursor must not race tree updates.
        // Compaction is deliberately NOT logged — replaying a WAL without
        // it yields the same visible state for every read version still in
        // the MVCC window.
        let mut removals: Vec<Vec<u8>> = Vec::new();
        let mut updates: Vec<(Vec<u8>, Chain)> = Vec::new();
        let mut cursor = Cursor::forward_from(&mut self.pool, b"")?;
        while let Some((key, chain)) = cursor.next(&mut self.pool)? {
            match chain_prune(&chain, oldest_version) {
                None => removals.push(key),
                Some(pruned) => {
                    if pruned.len() != chain.len() {
                        updates.push((key, pruned));
                    }
                }
            }
        }
        for (key, chain) in updates {
            btree::put_chain(&mut self.pool, &key, &chain)?;
        }
        for key in removals {
            btree::remove_key(&mut self.pool, &key)?;
        }
        Ok(())
    }

    fn scan_stats(&mut self) -> io::Result<(usize, usize)> {
        let mut keys = 0usize;
        let mut entries = 0usize;
        let mut cursor = Cursor::forward_from(&mut self.pool, b"")?;
        while let Some((_, chain)) = cursor.next(&mut self.pool)? {
            keys += 1;
            entries += chain.len();
        }
        Ok((keys, entries))
    }
}

impl Drop for PagedEngine {
    fn drop(&mut self) {
        if self.wal.has_pending() {
            // A batch was applied to the tree but never committed: persist
            // nothing new, so reopening replays only committed state —
            // identical to a crash at this instant.
            self.wal.discard_pending();
            return;
        }
        let _ = self.pool.checkpoint(self.wal.len());
    }
}

const IO_MSG: &str = "paged storage engine I/O error";

impl StorageEngine for PagedEngine {
    fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>, version: u64) {
        self.wal.buffer(&WalOp::Write {
            key: key.clone(),
            value: value.clone(),
            version,
        });
        self.apply_write(&key, value, version).expect(IO_MSG);
    }

    fn clear_range(&mut self, begin: &[u8], end: &[u8], version: u64) {
        self.wal.buffer(&WalOp::ClearRange {
            begin: begin.to_vec(),
            end: end.to_vec(),
            version,
        });
        self.apply_clear_range(begin, end, version).expect(IO_MSG);
    }

    fn commit_batch(&mut self) {
        self.try_commit_batch().expect(IO_MSG);
    }

    fn get(&mut self, key: &[u8], read_version: u64) -> Option<Vec<u8>> {
        self.try_get(key, read_version).expect(IO_MSG)
    }

    fn range(
        &mut self,
        begin: &[u8],
        end: &[u8],
        read_version: u64,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.try_range(begin, end, read_version, reverse)
            .expect(IO_MSG)
    }

    fn last_less(&mut self, key: &[u8], or_equal: bool, read_version: u64) -> Option<Vec<u8>> {
        self.try_last_less(key, or_equal, read_version)
            .expect(IO_MSG)
    }

    fn nth_after(&mut self, anchor: Option<&[u8]>, n: usize, read_version: u64) -> Option<Vec<u8>> {
        self.try_nth_after(anchor, n, read_version).expect(IO_MSG)
    }

    fn compact(&mut self, oldest_version: u64) {
        self.try_compact(oldest_version).expect(IO_MSG);
    }

    fn flush(&mut self) {
        self.try_flush().expect(IO_MSG);
    }

    fn live_key_count(&mut self, read_version: u64) -> usize {
        let mut count = 0usize;
        let mut cursor = Cursor::forward_from(&mut self.pool, b"").expect(IO_MSG);
        while let Some((_, chain)) = cursor.next(&mut self.pool).expect(IO_MSG) {
            if chain_visible_at(&chain, read_version).is_some() {
                count += 1;
            }
        }
        count
    }

    fn total_version_entries(&mut self) -> usize {
        self.scan_stats().expect(IO_MSG).1
    }

    fn describe(&self) -> String {
        format!(
            "paged(dir={}, pool_pages={}, eviction={}, file_pages={}, wal_bytes={})",
            self.dir.display(),
            self.pool_pages,
            self.policy.name(),
            self.pool.page_count(),
            self.wal.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoCounters;

    fn dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("rl-storage-paged-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(d: &Path, pages: usize) -> PagedEngine {
        PagedEngine::open(d, pages, EvictionPolicy::Lru, IoCounters::new_shared()).unwrap()
    }

    #[test]
    fn basic_mvcc_semantics() {
        let d = dir("basic");
        let mut e = open(&d, 32);
        e.write(b"a".to_vec(), Some(b"1".to_vec()), 10);
        e.write(b"b".to_vec(), Some(b"2".to_vec()), 20);
        e.commit_batch();
        assert_eq!(e.get(b"a", 15), Some(b"1".to_vec()));
        assert_eq!(e.get(b"b", 15), None);
        assert_eq!(e.get(b"b", 25), Some(b"2".to_vec()));
        e.clear_range(b"a", b"b", 30);
        e.commit_batch();
        assert_eq!(e.get(b"a", 35), None);
        assert_eq!(e.get(b"a", 25), Some(b"1".to_vec()));
        let r = e.range(b"", b"\xff", 35, false);
        assert_eq!(r, vec![(b"b".to_vec(), b"2".to_vec())]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn data_survives_clean_reopen() {
        let d = dir("reopen");
        {
            let mut e = open(&d, 32);
            for i in 0..200u32 {
                e.write(
                    format!("k{i:04}").into_bytes(),
                    Some(format!("v{i}").into_bytes()),
                    10,
                );
            }
            e.commit_batch();
        } // Drop checkpoints.
        let mut e = open(&d, 32);
        assert_eq!(e.check_consistency().unwrap(), 200);
        assert_eq!(e.get(b"k0123", 15), Some(b"v123".to_vec()));
        assert_eq!(e.live_key_count(15), 200);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn crash_preserves_committed_batches_only() {
        let d = dir("crash");
        {
            let mut e = open(&d, 32);
            e.write(b"committed".to_vec(), Some(b"yes".to_vec()), 10);
            e.commit_batch();
            e.write(b"uncommitted".to_vec(), Some(b"no".to_vec()), 20);
            // No commit_batch: the op is applied to the tree and buffered
            // for the WAL, but the frame never lands.
            e.simulate_crash();
        }
        let mut e = open(&d, 32);
        assert_eq!(e.get(b"committed", 30), Some(b"yes".to_vec()));
        assert_eq!(e.get(b"uncommitted", 30), None);
        e.check_consistency().unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn one_commit_batch_seals_many_transactions_in_one_frame() {
        // The group-commit contract: several transactions' writes (here,
        // at distinct versions) buffered between commit_batch calls land
        // as exactly one WAL frame — one log_appends tick for the batch.
        let d = dir("groupcommit");
        let counters = IoCounters::new_shared();
        let mut e = PagedEngine::open(&d, 32, EvictionPolicy::Lru, counters.clone()).unwrap();
        let before = counters.snapshot().log_appends;
        for t in 0..4u64 {
            for k in 0..8u32 {
                e.write(
                    format!("txn{t}-k{k}").into_bytes(),
                    Some(b"v".to_vec()),
                    10 + t,
                );
            }
        }
        e.commit_batch();
        assert_eq!(counters.snapshot().log_appends - before, 1);
        // And the whole batch is atomic across a crash+reopen.
        e.simulate_crash();
        let mut e = open(&d, 32);
        assert_eq!(e.live_key_count(100), 32);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn wal_growth_triggers_checkpoint_truncation() {
        let d = dir("walgrow");
        let mut e = open(&d, 32);
        let big = vec![0x42u8; 64 * 1024];
        for i in 0..20u32 {
            e.write(
                format!("k{i}").into_bytes(),
                Some(big.clone()),
                10 + u64::from(i),
            );
            e.commit_batch();
        }
        assert!(
            e.wal.len() < WAL_CHECKPOINT_BYTES,
            "WAL should have been truncated by a size-triggered checkpoint"
        );
        assert_eq!(e.get(b"k19", 100), Some(big));
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn compact_prunes_on_disk_chains() {
        let d = dir("compact");
        let mut e = open(&d, 32);
        for v in 1..=10u64 {
            e.write(b"k".to_vec(), Some(vec![v as u8]), v * 10);
        }
        e.write(b"dead".to_vec(), Some(b"x".to_vec()), 10);
        e.write(b"dead".to_vec(), None, 20);
        e.commit_batch();
        assert_eq!(e.total_version_entries(), 12);
        e.compact(95);
        assert_eq!(
            e.total_version_entries(),
            2,
            "versions 90,100 survive; dead key gone"
        );
        assert_eq!(e.get(b"k", 95), Some(vec![9]));
        assert_eq!(e.get(b"k", 200), Some(vec![10]));
        assert_eq!(e.get(b"dead", 200), None);
        e.check_consistency().unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }
}
