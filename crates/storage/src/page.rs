//! On-disk page format: fixed-size pages with a checksummed header.
//!
//! Every page is [`PAGE_SIZE`] bytes:
//!
//! ```text
//! +----------------+----------------+------------------------------+
//! | checksum (u32) | payload_len u32| payload ... (zero padded)    |
//! +----------------+----------------+------------------------------+
//! ```
//!
//! The checksum covers the payload length and the payload bytes (FNV-1a 64
//! folded to 32 bits — no external CRC dependency). Page *types* live in
//! the first payload byte and belong to the layers above (B-tree nodes,
//! overflow chains, meta slots); this module only frames and verifies.

use std::io;

/// Size of every page in the file, including the 8-byte header.
pub const PAGE_SIZE: usize = 4096;
/// Header: checksum (4) + payload length (4).
pub const HEADER_SIZE: usize = 8;
/// Maximum payload bytes a page can carry.
pub const MAX_PAYLOAD: usize = PAGE_SIZE - HEADER_SIZE;

/// Page identifier (byte offset = id * PAGE_SIZE). Id 0 and 1 are the two
/// meta slots; data pages start at 2. Id 0 therefore doubles as the "null"
/// page reference inside data structures.
pub type PageId = u32;

/// The null page reference (no child / no overflow / empty tree).
pub const NO_PAGE: PageId = 0;

/// FNV-1a 64 over `bytes`, folded to 32 bits.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Frame `payload` into a full page image.
///
/// Panics if the payload exceeds [`MAX_PAYLOAD`]; callers size their nodes
/// against that constant before serializing.
pub fn frame(payload: &[u8]) -> [u8; PAGE_SIZE] {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "page payload {} exceeds {}",
        payload.len(),
        MAX_PAYLOAD
    );
    let mut page = [0u8; PAGE_SIZE];
    page[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[HEADER_SIZE..HEADER_SIZE + payload.len()].copy_from_slice(payload);
    let sum = checksum(&page[4..HEADER_SIZE + payload.len()]);
    page[0..4].copy_from_slice(&sum.to_le_bytes());
    page
}

/// Verify a page image and return its payload slice.
pub fn unframe(page: &[u8]) -> io::Result<&[u8]> {
    if page.len() != PAGE_SIZE {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("short page: {} bytes", page.len()),
        ));
    }
    let stored = u32::from_le_bytes(page[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(page[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("page payload length {len} exceeds {MAX_PAYLOAD}"),
        ));
    }
    let sum = checksum(&page[4..HEADER_SIZE + len]);
    if sum != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("page checksum mismatch: stored {stored:#010x}, computed {sum:#010x}"),
        ));
    }
    Ok(&page[HEADER_SIZE..HEADER_SIZE + len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload = b"hello pages";
        let page = frame(payload);
        assert_eq!(unframe(&page).unwrap(), payload);
    }

    #[test]
    fn corruption_detected() {
        let mut page = frame(b"payload bytes");
        page[HEADER_SIZE + 3] ^= 0x40;
        assert!(unframe(&page).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let page = frame(b"");
        assert_eq!(unframe(&page).unwrap(), b"");
    }

    #[test]
    fn max_payload_fits() {
        let payload = vec![0xAB; MAX_PAYLOAD];
        let page = frame(&payload);
        assert_eq!(unframe(&page).unwrap(), &payload[..]);
    }
}
