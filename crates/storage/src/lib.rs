//! # rl-storage — pluggable storage engines for the FDB simulator
//!
//! The simulator's MVCC heart was a `BTreeMap<Vec<u8>, Vec<VersionedValue>>`
//! living inside `rl_fdb`; correct, but memory-bound and blind to I/O. This
//! crate extracts that API into a [`StorageEngine`] trait and provides two
//! implementations:
//!
//! * [`MemoryEngine`] — the original ordered in-memory map, retained as the
//!   test oracle and the default engine.
//! * [`PagedEngine`] — a disk-backed engine: a fixed-size-page file with
//!   checksummed headers and a free list ([`file`]), a buffer pool with
//!   pluggable eviction ([`pool`], [`replacer`]: LRU / Clock / SIEVE), a
//!   copy-on-write B-tree keyed on raw bytes whose leaf entries hold the
//!   per-key version chain ([`btree`]), and an append-only write-ahead log
//!   segment that makes committed batches crash-recoverable ([`wal`]).
//!
//! ## Crash-consistency model
//!
//! The paged engine uses *shadow paging*: pages referenced by the last
//! checkpoint are never rewritten in place. A page modified after a
//! checkpoint is copied to a freshly allocated page (its parent chain is
//! rewritten the same way, up to the root), so the on-disk checkpoint tree
//! stays intact no matter when the process dies. Committed write batches
//! are appended to the WAL *before* any tree page can reach disk; recovery
//! is therefore "load the checkpoint tree, replay the WAL tail". Within a
//! batch the WAL frame is written atomically (single framed append with a
//! checksum), so a torn tail never exposes half a commit.
//!
//! The engine never calls `fsync`: the simulator equates "crash" with
//! "process stopped", as exercised by the crash-recovery tests. A real
//! deployment would sync the WAL at each commit frame and the page file at
//! each checkpoint; the ordering points are already correct.
//!
//! ## Diagnostics
//!
//! All I/O-level counters (buffer-pool hits/misses/evictions, dirty-page
//! flushes, WAL appends) accumulate in a shared [`IoCounters`] handed in at
//! construction, which `rl_fdb`'s `MetricsSnapshot` surfaces alongside the
//! key-level counters.

pub mod btree;
pub mod engine;
pub mod file;
pub mod memory;
pub mod page;
pub mod paged;
pub mod pool;
pub mod replacer;
pub mod wal;

pub use engine::{EvictionPolicy, SharedRead, StorageEngine};
pub use memory::MemoryEngine;
pub use paged::PagedEngine;
pub use replacer::{ClockReplacer, LruReplacer, Replacer, SieveReplacer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic I/O counters shared between a paged engine and whoever wants
/// to observe it (the simulator's metrics block). The in-memory engine
/// leaves them at zero.
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Page requests satisfied from the buffer pool.
    pub page_hits: AtomicU64,
    /// Page requests that had to read the page file.
    pub page_misses: AtomicU64,
    /// Frames evicted to make room for another page.
    pub page_evictions: AtomicU64,
    /// Dirty pages written back to the page file (evictions + checkpoints).
    pub page_flushes: AtomicU64,
    /// Committed batch frames appended to the write-ahead log.
    pub log_appends: AtomicU64,
}

/// Shared handle to an [`IoCounters`] block.
pub type SharedIoCounters = Arc<IoCounters>;

impl IoCounters {
    pub fn new_shared() -> SharedIoCounters {
        Arc::new(IoCounters::default())
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            page_hits: self.page_hits.load(Ordering::Relaxed),
            page_misses: self.page_misses.load(Ordering::Relaxed),
            page_evictions: self.page_evictions.load(Ordering::Relaxed),
            page_flushes: self.page_flushes.load(Ordering::Relaxed),
            log_appends: self.log_appends.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.page_hits.store(0, Ordering::Relaxed);
        self.page_misses.store(0, Ordering::Relaxed);
        self.page_evictions.store(0, Ordering::Relaxed);
        self.page_flushes.store(0, Ordering::Relaxed);
        self.log_appends.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    pub page_hits: u64,
    pub page_misses: u64,
    pub page_evictions: u64,
    pub page_flushes: u64,
    pub log_appends: u64,
}

impl IoStats {
    /// Difference between two snapshots (self - earlier). Saturating, so
    /// a `reset()` racing a snapshot pair degrades to zeros instead of a
    /// debug-build underflow panic.
    pub fn delta(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            page_hits: self.page_hits.saturating_sub(earlier.page_hits),
            page_misses: self.page_misses.saturating_sub(earlier.page_misses),
            page_evictions: self.page_evictions.saturating_sub(earlier.page_evictions),
            page_flushes: self.page_flushes.saturating_sub(earlier.page_flushes),
            log_appends: self.log_appends.saturating_sub(earlier.log_appends),
        }
    }

    /// Fraction of pool requests served without touching the page file.
    pub fn hit_rate(&self) -> f64 {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            return 1.0;
        }
        self.page_hits as f64 / total as f64
    }
}
