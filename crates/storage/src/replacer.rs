//! Pluggable buffer-pool eviction: LRU, Clock (second chance), and SIEVE.
//!
//! Replacers track *frame indices* (slots in the buffer pool), not page
//! ids: the pool owns the page↔frame mapping and tells the replacer when a
//! frame is filled, touched, or dropped. `evict` both chooses a victim and
//! forgets it.

use std::collections::{BTreeMap, HashMap};

use crate::engine::EvictionPolicy;

/// Eviction strategy over pool frame indices.
pub trait Replacer: Send + Sync + std::fmt::Debug {
    /// A frame has been filled with a new page.
    fn insert(&mut self, frame: usize);
    /// A tracked frame has been accessed (hit).
    fn record_access(&mut self, frame: usize);
    /// Choose a victim frame and stop tracking it.
    fn evict(&mut self) -> Option<usize>;
    /// Stop tracking a frame (its page was freed or flushed away).
    fn remove(&mut self, frame: usize);
}

/// Construct the replacer for a policy, sized to `capacity` frames.
pub fn new_replacer(policy: EvictionPolicy, capacity: usize) -> Box<dyn Replacer> {
    match policy {
        EvictionPolicy::Lru => Box::new(LruReplacer::new()),
        EvictionPolicy::Clock => Box::new(ClockReplacer::new(capacity)),
        EvictionPolicy::Sieve => Box::new(SieveReplacer::new(capacity)),
    }
}

// ------------------------------------------------------------------- LRU

/// Exact least-recently-used order via a logical access clock.
#[derive(Debug, Default)]
pub struct LruReplacer {
    tick: u64,
    by_frame: HashMap<usize, u64>,
    by_tick: BTreeMap<u64, usize>,
}

impl LruReplacer {
    pub fn new() -> Self {
        LruReplacer::default()
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        if let Some(old) = self.by_frame.insert(frame, self.tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.tick, frame);
    }
}

impl Replacer for LruReplacer {
    fn insert(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn record_access(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn evict(&mut self) -> Option<usize> {
        let (&tick, &frame) = self.by_tick.iter().next()?;
        self.by_tick.remove(&tick);
        self.by_frame.remove(&frame);
        Some(frame)
    }

    fn remove(&mut self, frame: usize) {
        if let Some(tick) = self.by_frame.remove(&frame) {
            self.by_tick.remove(&tick);
        }
    }
}

// ----------------------------------------------------------------- Clock

/// Second-chance clock: a hand sweeps the frame array; referenced frames
/// get their bit cleared and are spared one sweep.
#[derive(Debug)]
pub struct ClockReplacer {
    present: Vec<bool>,
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockReplacer {
    pub fn new(capacity: usize) -> Self {
        ClockReplacer {
            present: vec![false; capacity.max(1)],
            referenced: vec![false; capacity.max(1)],
            hand: 0,
        }
    }
}

impl Replacer for ClockReplacer {
    fn insert(&mut self, frame: usize) {
        self.present[frame] = true;
        self.referenced[frame] = true;
    }

    fn record_access(&mut self, frame: usize) {
        if self.present[frame] {
            self.referenced[frame] = true;
        }
    }

    fn evict(&mut self) -> Option<usize> {
        if !self.present.iter().any(|&p| p) {
            return None;
        }
        // Two full sweeps suffice: the first clears every reference bit.
        for _ in 0..2 * self.present.len() {
            let f = self.hand;
            self.hand = (self.hand + 1) % self.present.len();
            if !self.present[f] {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                self.present[f] = false;
                return Some(f);
            }
        }
        None
    }

    fn remove(&mut self, frame: usize) {
        self.present[frame] = false;
        self.referenced[frame] = false;
    }
}

// ----------------------------------------------------------------- SIEVE

/// SIEVE: FIFO insertion order with a lazily retreating hand that spares
/// visited frames in place (no reordering on hit, unlike LRU; no promotion
/// to the head, unlike second chance).
#[derive(Debug)]
pub struct SieveReplacer {
    nodes: Vec<SieveNode>,
    /// Most recently inserted frame.
    head: Option<usize>,
    /// Oldest frame.
    tail: Option<usize>,
    /// Next eviction candidate; `None` restarts from the tail.
    hand: Option<usize>,
    len: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct SieveNode {
    prev: Option<usize>, // toward head (newer)
    next: Option<usize>, // toward tail (older)
    visited: bool,
    present: bool,
}

impl SieveReplacer {
    pub fn new(capacity: usize) -> Self {
        SieveReplacer {
            nodes: vec![SieveNode::default(); capacity.max(1)],
            head: None,
            tail: None,
            hand: None,
            len: 0,
        }
    }

    fn unlink(&mut self, frame: usize) {
        let node = self.nodes[frame];
        match node.prev {
            Some(p) => self.nodes[p].next = node.next,
            None => self.head = node.next,
        }
        match node.next {
            Some(n) => self.nodes[n].prev = node.prev,
            None => self.tail = node.prev,
        }
        if self.hand == Some(frame) {
            self.hand = node.prev;
        }
        self.nodes[frame] = SieveNode::default();
        self.len -= 1;
    }
}

impl Replacer for SieveReplacer {
    fn insert(&mut self, frame: usize) {
        debug_assert!(!self.nodes[frame].present);
        self.nodes[frame] = SieveNode {
            prev: None,
            next: self.head,
            visited: false,
            present: true,
        };
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(frame);
        }
        self.head = Some(frame);
        if self.tail.is_none() {
            self.tail = Some(frame);
        }
        self.len += 1;
    }

    fn record_access(&mut self, frame: usize) {
        if self.nodes[frame].present {
            self.nodes[frame].visited = true;
        }
    }

    fn evict(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // The hand retreats from tail toward head, clearing visited bits;
        // it wraps back to the tail at the head. Bounded by 2·len steps.
        let mut cur = self.hand.or(self.tail)?;
        for _ in 0..2 * self.len + 1 {
            if self.nodes[cur].visited {
                self.nodes[cur].visited = false;
                cur = match self.nodes[cur].prev {
                    Some(p) => p,
                    None => self.tail.unwrap(),
                };
            } else {
                self.hand = self.nodes[cur].prev;
                self.unlink(cur);
                return Some(cur);
            }
        }
        None
    }

    fn remove(&mut self, frame: usize) {
        if self.nodes[frame].present {
            self.unlink(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut r = LruReplacer::new();
        r.insert(0);
        r.insert(1);
        r.insert(2);
        r.record_access(0);
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(0));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut r = ClockReplacer::new(3);
        r.insert(0);
        r.insert(1);
        r.insert(2);
        // First sweep clears all bits; second evicts frame 0 first.
        assert_eq!(r.evict(), Some(0));
        r.record_access(1); // re-reference 1
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(1));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn sieve_spares_visited_in_place() {
        let mut r = SieveReplacer::new(4);
        r.insert(0); // oldest
        r.insert(1);
        r.insert(2); // newest
        r.record_access(0);
        // Hand starts at tail (0): visited -> cleared, move to 1: evict.
        assert_eq!(r.evict(), Some(1));
        // The hand kept moving toward the head, so 2 goes before the
        // cleared-but-spared 0 comes around again.
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), Some(0));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn remove_mid_structure_is_safe() {
        for policy in EvictionPolicy::ALL {
            let mut r = new_replacer(policy, 4);
            r.insert(0);
            r.insert(1);
            r.insert(2);
            r.remove(1);
            let mut evicted = Vec::new();
            while let Some(f) = r.evict() {
                evicted.push(f);
            }
            evicted.sort_unstable();
            assert_eq!(evicted, vec![0, 2], "{policy:?}");
        }
    }
}
